"""The drift comparator: every failure mode is a distinct, actionable
error — tolerance-band pass/fail, exact-field mismatch, missing/extra
metric keys, schema-version mismatch, table drift."""

import pytest

from repro.scenarios import (
    SCHEMA,
    SCHEMA_VERSION,
    DriftPolicy,
    ExactMismatch,
    ExtraMetric,
    MissingMetric,
    SchemaVersionMismatch,
    TableMismatch,
    ToleranceExceeded,
    compare_records,
)


def record(metrics=None, table=None, schema=SCHEMA, version=SCHEMA_VERSION):
    return {
        "schema": schema,
        "schema_version": version,
        "scenario": "EX",
        "tier": "ci",
        "metrics": dict(metrics or {}),
        "table": table,
    }


class TestToleranceBands:
    POLICY = DriftPolicy(band={"goodput_ratio": 2.0})

    def test_within_band_passes(self):
        rep = compare_records(
            record({"goodput_ratio": 5.0}),
            record({"goodput_ratio": 9.9}),
            self.POLICY,
        )
        assert rep.ok

    def test_band_is_symmetric(self):
        rep = compare_records(
            record({"goodput_ratio": 9.9}),
            record({"goodput_ratio": 5.0}),
            self.POLICY,
        )
        assert rep.ok

    def test_outside_band_fails_with_tolerance_error(self):
        rep = compare_records(
            record({"goodput_ratio": 5.0}),
            record({"goodput_ratio": 10.1}),
            self.POLICY,
        )
        assert not rep.ok
        assert [i.kind for i in rep.issues] == ["tolerance-exceeded"]
        assert rep.issues[0].path == "metrics.goodput_ratio"
        with pytest.raises(ToleranceExceeded):
            rep.raise_first()

    def test_zero_only_matches_zero(self):
        rep = compare_records(
            record({"goodput_ratio": 0.0}),
            record({"goodput_ratio": 0.5}),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["tolerance-exceeded"]
        assert compare_records(
            record({"goodput_ratio": 0.0}),
            record({"goodput_ratio": 0.0}),
            self.POLICY,
        ).ok


class TestExactFields:
    POLICY = DriftPolicy(exact=("trajectory_identical", "errors_total"))

    def test_equal_passes(self):
        rep = compare_records(
            record({"trajectory_identical": True, "errors_total": 0}),
            record({"trajectory_identical": True, "errors_total": 0}),
            self.POLICY,
        )
        assert rep.ok

    def test_mismatch_is_exact_error(self):
        rep = compare_records(
            record({"trajectory_identical": True, "errors_total": 0}),
            record({"trajectory_identical": False, "errors_total": 0}),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["exact-mismatch"]
        assert "trajectory_identical" in rep.issues[0].path
        with pytest.raises(ExactMismatch):
            rep.raise_first()

    def test_float_jitter_within_1e9_tolerated(self):
        rep = compare_records(
            record({"trajectory_identical": 1.0, "errors_total": 0}),
            record({"trajectory_identical": 1.0 + 1e-12, "errors_total": 0}),
            self.POLICY,
        )
        assert rep.ok

    def test_none_only_equals_none(self):
        policy = DriftPolicy(exact=("planted",))
        assert compare_records(
            record({"planted": None}), record({"planted": None}), policy
        ).ok
        rep = compare_records(
            record({"planted": None}), record({"planted": 1.0}), policy
        )
        assert [i.kind for i in rep.issues] == ["exact-mismatch"]

    def test_bool_does_not_equal_int_shaped_float(self):
        policy = DriftPolicy(exact=("flag",))
        rep = compare_records(
            record({"flag": True}), record({"flag": 2}), policy
        )
        assert not rep.ok


class TestKeySetDrift:
    POLICY = DriftPolicy(exact=("a",))

    def test_missing_metric_distinct_error(self):
        rep = compare_records(
            record({"a": 1, "gone": 2}), record({"a": 1}), self.POLICY
        )
        assert [i.kind for i in rep.issues] == ["missing-metric"]
        assert rep.issues[0].path == "metrics.gone"
        assert "re-record" in rep.issues[0].message
        with pytest.raises(MissingMetric):
            rep.raise_first()

    def test_extra_metric_distinct_error(self):
        rep = compare_records(
            record({"a": 1}), record({"a": 1, "new": 2}), self.POLICY
        )
        assert [i.kind for i in rep.issues] == ["extra-metric"]
        assert rep.issues[0].path == "metrics.new"
        with pytest.raises(ExtraMetric):
            rep.raise_first()

    def test_informational_keys_checked_for_presence_not_value(self):
        rep = compare_records(
            record({"a": 1, "info": 123}),
            record({"a": 1, "info": 456}),
            self.POLICY,
        )
        assert rep.ok  # value differs but the key is informational


class TestSchemaVersion:
    POLICY = DriftPolicy(exact=("a",))

    def test_version_mismatch_short_circuits(self):
        rep = compare_records(
            record({"a": 1}, version=SCHEMA_VERSION + 1),
            record({"a": 2}),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["schema-version-mismatch"]
        assert "regenerate" in rep.issues[0].message
        with pytest.raises(SchemaVersionMismatch):
            rep.raise_first()

    def test_fresh_side_checked_too(self):
        rep = compare_records(
            record({"a": 1}),
            record({"a": 1}, schema="something.else"),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["schema-version-mismatch"]


class TestTableDrift:
    POLICY = DriftPolicy(table_exact_columns=("family", "within"))

    def table(self, rows):
        return {"columns": ["family", "time (ms)", "within"], "rows": rows}

    def test_identical_cells_pass_timing_column_free(self):
        rep = compare_records(
            record(table=self.table([["tight", 1.0, True]])),
            record(table=self.table([["tight", 99.0, True]])),
            self.POLICY,
        )
        assert rep.ok  # "time (ms)" is not a gated column

    def test_cell_change_is_table_mismatch(self):
        rep = compare_records(
            record(table=self.table([["tight", 1.0, True]])),
            record(table=self.table([["tight", 1.0, False]])),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["table-mismatch"]
        assert rep.issues[0].path == "table[0].within"
        with pytest.raises(TableMismatch):
            rep.raise_first()

    def test_column_change_is_shape_drift(self):
        fresh = record(table={"columns": ["family", "within"],
                              "rows": [["tight", True]]})
        rep = compare_records(
            record(table=self.table([["tight", 1.0, True]])), fresh,
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["table-shape"]

    def test_row_count_change_is_shape_drift(self):
        rep = compare_records(
            record(table=self.table([["tight", 1.0, True]])),
            record(table=self.table([["tight", 1.0, True],
                                     ["random", 2.0, True]])),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["table-shape"]

    def test_vanished_table_is_shape_drift(self):
        rep = compare_records(
            record(table=self.table([["tight", 1.0, True]])),
            record(table=None),
            self.POLICY,
        )
        assert [i.kind for i in rep.issues] == ["table-shape"]


class TestReportRendering:
    def test_report_names_every_issue(self):
        policy = DriftPolicy(exact=("a",), band={"b": 2.0})
        rep = compare_records(
            record({"a": 1, "b": 1.0, "gone": 0}),
            record({"a": 2, "b": 9.0, "new": 0}),
            policy,
            scenario_id="E99",
            tier="ci",
        )
        kinds = sorted(i.kind for i in rep.issues)
        assert kinds == ["exact-mismatch", "extra-metric", "missing-metric",
                        "tolerance-exceeded"]
        text = rep.render()
        assert "E99" in text and "4 drift issue(s)" in text
        as_dict = rep.as_dict()
        assert as_dict["ok"] is False and len(as_dict["issues"]) == 4
