"""Catalog registry invariants, tier resolution, record IO, and the
acceptance-check DSL."""

import json

import pytest

from repro.analysis.ablations import ALL_ABLATIONS
from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.scenarios import (
    BENCH_RUNNERS,
    CATALOG,
    SCHEMA,
    SCHEMA_VERSION,
    Check,
    RecordError,
    Scenario,
    TIERS,
    TrafficAxis,
    TransportAxis,
    WorkloadAxis,
    get_scenario,
    load_record,
    record_path,
    scenario_ids,
    write_record,
)
from repro.service.loadgen import CALIBRATIONS


class TestRegistry:
    def test_every_experiment_and_ablation_has_a_scenario(self):
        tables = {s.table for s in CATALOG.values() if s.table}
        assert set(ALL_EXPERIMENTS) - {"E18"} <= tables | {"E18"}
        missing = (set(ALL_EXPERIMENTS) | set(ALL_ABLATIONS)) - tables
        # E18 is bench-only: its scale run has no analysis-registry table.
        assert missing == {"E18"} or missing == set()
        assert {"E18"} <= set(CATALOG)

    def test_table_keys_resolve_in_analysis_registry(self):
        registry = {**ALL_EXPERIMENTS, **ALL_ABLATIONS}
        for scenario in CATALOG.values():
            if scenario.table is not None:
                assert scenario.table in registry, scenario.scenario_id

    def test_bench_keys_resolve_in_bench_runners(self):
        for scenario in CATALOG.values():
            if scenario.bench is not None:
                assert scenario.bench in BENCH_RUNNERS, scenario.scenario_id

    def test_calibration_names_resolve(self):
        for scenario in CATALOG.values():
            calibration = scenario.workload.calibration
            if calibration is not None:
                assert calibration in CALIBRATIONS, scenario.scenario_id

    def test_unknown_id_lists_valid_set(self):
        with pytest.raises(KeyError) as err:
            get_scenario("E99")
        message = str(err.value)
        for scenario_id in scenario_ids():
            assert scenario_id in message

    def test_lookup_is_case_insensitive(self):
        assert get_scenario("e14").scenario_id == "E14"

    def test_drift_metrics_are_disjoint(self):
        for scenario in CATALOG.values():
            overlap = set(scenario.drift.exact) & set(scenario.drift.band)
            assert not overlap, (
                f"{scenario.scenario_id}: {overlap} both exact and banded"
            )

    def test_acceptance_ops_valid_and_described(self):
        for scenario in CATALOG.values():
            for check in scenario.acceptance:
                assert check.describe()


class TestSpec:
    def axes(self):
        return dict(
            workload=WorkloadAxis(family="random"),
            traffic=TrafficAxis(),
            transport=TransportAxis(),
        )

    def test_scenario_needs_table_or_bench(self):
        with pytest.raises(ValueError):
            Scenario(scenario_id="X", title="t", **self.axes())

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            Scenario(scenario_id="X", title="t", table="E1",
                     tiers={"nightly": {}}, **self.axes())

    def test_tier_resolution_layers_base_tier_overrides(self):
        scenario = Scenario(
            scenario_id="X", title="t", table="E1",
            params={"table": {"trials": 5, "seed": 1}},
            tiers={"ci": {"table": {"trials": 2}}},
            **self.axes(),
        )
        assert scenario.resolve("ci") == {
            "table": {"trials": 2, "seed": 1}, "bench": {},
        }
        assert scenario.resolve("full") == {
            "table": {"trials": 5, "seed": 1}, "bench": {},
        }
        merged = scenario.resolve("ci", {"table": {"seed": 9}})
        assert merged["table"] == {"trials": 2, "seed": 9}

    def test_resolve_rejects_unknown_tier_and_namespace(self):
        scenario = Scenario(scenario_id="X", title="t", table="E1",
                            **self.axes())
        with pytest.raises(ValueError):
            scenario.resolve("nightly")
        with pytest.raises(ValueError):
            scenario.resolve("ci", {"wrong": {}})

    def test_check_ops(self):
        metrics = {"r": 2.5, "flag": True, "n": 0}
        assert Check("r", ">=", 2.0).evaluate(metrics, None) == (True, 2.5)
        assert Check("r", "<", 2.0).evaluate(metrics, None) == (False, 2.5)
        assert Check("flag", "truthy").evaluate(metrics, None) == (True, True)
        assert Check("n", "==", 0).evaluate(metrics, None) == (True, 0)
        ok, got = Check("absent", ">=", 1).evaluate(metrics, None)
        assert not ok and got is None
        with pytest.raises(ValueError):
            Check("r", "~=", 1)

    def test_check_table_quantifiers(self):
        table = {"columns": ["name", "ok"],
                 "rows": [["a", True], ["b", False]]}
        assert Check("table.all:ok", "truthy").evaluate({}, table) == \
            (False, False)
        assert Check("table.any:ok", "truthy").evaluate({}, table) == \
            (True, True)
        ok, _ = Check("table.all:missing", "truthy").evaluate({}, table)
        assert not ok


class TestRecords:
    def test_roundtrip_and_nan_to_null(self, tmp_path):
        payload = {
            "schema": SCHEMA, "schema_version": SCHEMA_VERSION,
            "scenario": "EX", "tier": "ci",
            "metrics": {"nan": float("nan"), "inf": float("inf"), "x": 1},
        }
        path = write_record(payload, tmp_path, "ci", "EX")
        assert path == record_path(tmp_path, "ci", "EX")
        loaded = load_record(path)
        assert loaded["metrics"] == {"nan": None, "inf": None, "x": 1}

    def test_missing_record_error_is_actionable(self, tmp_path):
        with pytest.raises(RecordError) as err:
            load_record(record_path(tmp_path, "ci", "E14"))
        assert "reproduce --scenario E14" in str(err.value)
        assert "--tier ci" in str(err.value)

    def test_corrupt_record_rejected(self, tmp_path):
        path = tmp_path / "ci" / "EX.json"
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        with pytest.raises(RecordError):
            load_record(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(RecordError):
            load_record(path)

    def test_tiers_constant(self):
        assert TIERS == ("ci", "full")
