"""Tests for admission control and the dynamic micro-batcher."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import telemetry
from repro.core import make_instance
from repro.core.engine import snapshot_fingerprint
from repro.service import AdmissionQueue, BatchConfig, MicroBatcher


def _instance(seed: int = 0):
    rng = np.random.default_rng(seed)
    return make_instance(
        sizes=rng.uniform(1.0, 9.0, 12),
        initial=rng.integers(0, 3, 12),
        num_processors=3,
    )


def _request(
    loop,
    *,
    shard: str = "default",
    k: int = 2,
    instance=None,
    deadline: float | None = None,
):
    from repro.service.admission import PendingRequest

    instance = _instance() if instance is None else instance
    return PendingRequest(
        shard=shard,
        k=k,
        instance=instance,
        fingerprint=snapshot_fingerprint(instance),
        enqueued_at=loop.time(),
        deadline=deadline,
        future=loop.create_future(),
    )


def run(coro_fn):
    """Run an async test body on a fresh loop."""
    return asyncio.run(coro_fn())


class TestAdmissionQueue:
    def test_rejects_beyond_max_depth(self):
        async def go():
            loop = asyncio.get_running_loop()
            metrics = telemetry.Collector()
            queue = AdmissionQueue(2, metrics)
            assert queue.try_submit(_request(loop))
            assert queue.try_submit(_request(loop))
            assert not queue.try_submit(_request(loop))
            assert metrics.counters["service.admitted"] == 2
            assert metrics.counters["service.rejected"] == 1
            assert queue.depth == 2

        run(go)

    def test_rejects_zero_depth_config(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0, telemetry.Collector())

    def test_retry_after_scales_with_backlog(self):
        async def go():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(64, telemetry.Collector())
            assert queue.retry_after_ms() == queue.min_retry_after_ms
            queue.note_service_time(0.050)
            for _ in range(10):
                queue.try_submit(_request(loop))
            # 10 queued requests at an EWMA near 50ms/request.
            assert queue.retry_after_ms() > 100.0

        run(go)

    def test_ewma_tracks_service_time(self):
        queue = AdmissionQueue(4, telemetry.Collector())
        for _ in range(50):
            queue.note_service_time(0.2)
        assert queue._service_time_ewma == pytest.approx(0.2, rel=0.05)

    def test_negative_service_time_sample_is_clamped(self):
        """Regression: a backwards clock adjustment hands the queue a
        negative duration; averaging it in raw would drag the EWMA
        below zero and collapse every retry_after_ms hint to the
        floor.  The sample must be clamped to zero, not trusted."""
        queue = AdmissionQueue(4, telemetry.Collector())
        for _ in range(50):
            queue.note_service_time(0.2)
        settled = queue._service_time_ewma
        queue.note_service_time(-60.0)
        # A -60s sample averaged in raw would leave the EWMA at about
        # -11.8s; clamped to a 0s sample it decays by one EWMA step.
        assert queue._service_time_ewma == pytest.approx(0.8 * settled)
        queue.note_service_time(-1e9)
        assert queue._service_time_ewma > 0.0

    def test_shed_expired_resolves_only_stale_requests(self):
        async def go():
            loop = asyncio.get_running_loop()
            metrics = telemetry.Collector()
            queue = AdmissionQueue(8, metrics)
            stale = _request(loop, deadline=loop.time() - 0.1)
            fresh = _request(loop, deadline=loop.time() + 10.0)
            unbounded = _request(loop, deadline=None)
            now = loop.time()
            alive = queue.shed_expired([stale, fresh, unbounded], now)
            assert alive == [fresh, unbounded]
            assert stale.future.done()
            response = stale.future.result()
            assert response["ok"] is False
            assert response["error"] == "deadline exceeded"
            assert response["queued_ms"] >= 0.0
            assert not fresh.future.done()
            assert metrics.counters["service.shed"] == 1

        run(go)

    def test_drain_nowait_empties_fifo(self):
        async def go():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(8, telemetry.Collector())
            requests = [_request(loop) for _ in range(3)]
            for request in requests:
                queue.try_submit(request)
            assert queue.drain_nowait() == requests
            assert queue.depth == 0

        run(go)

    def test_stats_snapshot(self):
        async def go():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(8, telemetry.Collector())
            queue.try_submit(_request(loop))
            stats = queue.stats()
            assert stats["depth"] == 1
            assert stats["max_depth"] == 8
            assert stats["retry_after_ms"] >= queue.min_retry_after_ms

        run(go)


class TestBatchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatchConfig(max_wait_ms=-1.0)


class TestMicroBatcher:
    def _batcher(self, max_depth=64, **config):
        metrics = telemetry.Collector()
        queue = AdmissionQueue(max_depth, metrics)
        return MicroBatcher(queue, BatchConfig(**config), metrics), queue

    def test_batch_closes_at_max_batch(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, queue = self._batcher(max_batch=3, max_wait_ms=1000.0)
            for _ in range(5):
                queue.try_submit(_request(loop))
            batch = await batcher.next_batch()
            assert len(batch) == 3
            assert queue.depth == 2

        run(go)

    def test_batch_closes_at_window(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, queue = self._batcher(max_batch=64, max_wait_ms=10.0)
            queue.try_submit(_request(loop))
            start = loop.time()
            batch = await batcher.next_batch()
            assert len(batch) == 1
            assert loop.time() - start < 5.0  # closed by window, not hang

        run(go)

    def test_max_batch_one_skips_window(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, queue = self._batcher(max_batch=1, max_wait_ms=1000.0)
            queue.try_submit(_request(loop))
            batch = await batcher.next_batch()
            assert len(batch) == 1

        run(go)

    def test_plan_dedupes_identical_snapshots(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, _ = self._batcher()
            shared = _instance(seed=1)
            other = _instance(seed=2)
            batch = [
                _request(loop, instance=shared),
                _request(loop, instance=shared),
                _request(loop, instance=other),
            ]
            lanes = batcher.plan(batch)
            assert len(lanes) == 1
            solves = lanes[0].solves
            assert [len(s.requests) for s in solves] == [2, 1]
            assert batcher.metrics.counters["service.deduped"] == 1

        run(go)

    def test_plan_does_not_dedupe_across_k(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, _ = self._batcher()
            shared = _instance(seed=1)
            lanes = batcher.plan([
                _request(loop, instance=shared, k=2),
                _request(loop, instance=shared, k=3),
            ])
            assert len(lanes[0].solves) == 2

        run(go)

    def test_plan_without_dedupe_keeps_every_request(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, _ = self._batcher(dedupe=False)
            shared = _instance(seed=1)
            lanes = batcher.plan([
                _request(loop, instance=shared),
                _request(loop, instance=shared),
            ])
            assert [len(s.requests) for s in lanes[0].solves] == [1, 1]

        run(go)

    def test_plan_splits_lanes_by_shard_preserving_order(self):
        async def go():
            loop = asyncio.get_running_loop()
            batcher, _ = self._batcher()
            a1 = _request(loop, shard="a", instance=_instance(seed=1))
            b1 = _request(loop, shard="b", instance=_instance(seed=2))
            a2 = _request(loop, shard="a", instance=_instance(seed=3))
            lanes = {lane.shard: lane for lane in batcher.plan([a1, b1, a2])}
            assert set(lanes) == {"a", "b"}
            assert [s.requests[0] for s in lanes["a"].solves] == [a1, a2]
            assert [s.requests[0] for s in lanes["b"].solves] == [b1]

        run(go)
