"""Client retry behavior: transport backoff, overload hints, reset.

Pins the retry bugfixes: transport failures back off with jittered
exponential delays (capped at the client timeout) instead of spinning
through reconnect attempts, the :class:`Overloaded` raised after the
final attempt carries *that* attempt's ``retry_after_ms`` hint, and
the async client's ``reset`` exists and drops the local delta base.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import make_instance
from repro.service import (
    AsyncServiceClient,
    Overloaded,
    ServerConfig,
    ServiceClient,
    error_response,
    read_frame_sync,
    start_background,
    write_frame_sync,
)
from repro.service.client import _BACKOFF_BASE_S, _transport_backoff_s


def _dead_port() -> int:
    """A port that was just bound and released: connecting is refused."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _instance(seed: int = 3):
    rng = np.random.default_rng(seed)
    return make_instance(
        sizes=rng.uniform(1.0, 9.0, 16),
        initial=rng.integers(0, 4, 16),
        num_processors=4,
    )


class _OverloadedServer:
    """A server whose every answer is ``overloaded``, with a scripted
    ``retry_after_ms`` per response — exposes which attempt's hint the
    client ends up raising."""

    def __init__(self, hints: list[float]) -> None:
        self.hints = list(hints)
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self._sock.accept()
            with conn:
                for hint in self.hints:
                    if read_frame_sync(conn) is None:
                        return
                    write_frame_sync(
                        conn,
                        error_response("overloaded", retry_after_ms=hint),
                    )
        except OSError:  # pragma: no cover - teardown race
            pass

    def close(self) -> None:
        self._sock.close()
        self._thread.join(timeout=5.0)


class TestTransportBackoff:
    def test_delay_grows_and_jitters_within_bounds(self):
        for attempt in range(8):
            nominal = _BACKOFF_BASE_S * (2.0 ** attempt)
            for _ in range(20):
                delay = _transport_backoff_s(attempt, timeout=30.0)
                assert 0.5 * nominal <= delay <= nominal

    def test_delay_capped_at_timeout(self):
        for attempt in range(12):
            assert _transport_backoff_s(attempt, timeout=0.2) <= 0.2

    def test_negative_timeout_never_sleeps_backwards(self):
        assert _transport_backoff_s(5, timeout=-1.0) == 0.0

    def test_sync_client_backs_off_instead_of_spinning(self):
        client = ServiceClient("127.0.0.1", _dead_port(), retries=3)
        start = time.perf_counter()
        with pytest.raises(OSError):
            client.ping()
        elapsed = time.perf_counter() - start
        assert client.transport_retries == 3
        # Minimum jitter is half the nominal 50/100/200ms ladder.
        assert client.backoff_slept_s >= 0.5 * (0.05 + 0.10 + 0.20)
        assert client.backoff_slept_s <= 0.05 + 0.10 + 0.20
        assert elapsed >= client.backoff_slept_s

    def test_async_client_backs_off_instead_of_spinning(self):
        async def go():
            client = AsyncServiceClient("127.0.0.1", _dead_port(), retries=3)
            start = time.perf_counter()
            with pytest.raises(OSError):
                await client.ping()
            elapsed = time.perf_counter() - start
            assert client.transport_retries == 3
            assert client.backoff_slept_s >= 0.5 * (0.05 + 0.10 + 0.20)
            assert elapsed >= client.backoff_slept_s
            await client.close()

        asyncio.run(go())

    def test_backoff_capped_by_small_timeout(self):
        client = ServiceClient(
            "127.0.0.1", _dead_port(), retries=3, timeout=0.02
        )
        with pytest.raises(OSError):
            client.ping()
        assert client.transport_retries == 3
        assert client.backoff_slept_s <= 3 * 0.02


class TestOverloadedHint:
    def test_sync_final_raise_carries_last_hint(self):
        server = _OverloadedServer([7.0, 11.0, 2.5])
        try:
            client = ServiceClient("127.0.0.1", server.port, retries=2)
            with pytest.raises(Overloaded) as excinfo:
                client.call({"op": "ping"})
            assert excinfo.value.retry_after_ms == 2.5
            client.close()
        finally:
            server.close()

    def test_async_final_raise_carries_last_hint(self):
        server = _OverloadedServer([7.0, 11.0, 2.5])

        async def go():
            client = AsyncServiceClient("127.0.0.1", server.port, retries=2)
            with pytest.raises(Overloaded) as excinfo:
                await client.call({"op": "ping"})
            assert excinfo.value.retry_after_ms == 2.5
            await client.close()

        try:
            asyncio.run(go())
        finally:
            server.close()

    def test_zero_retries_still_raises_with_hint(self):
        server = _OverloadedServer([42.0])
        try:
            client = ServiceClient("127.0.0.1", server.port, retries=0)
            with pytest.raises(Overloaded) as excinfo:
                client.call({"op": "ping"})
            assert excinfo.value.retry_after_ms == 42.0
            client.close()
        finally:
            server.close()


class TestAsyncReset:
    def test_reset_clears_server_shard_and_local_base(self):
        async def go(host, port):
            async with AsyncServiceClient(
                host, port, protocol="binary", delta=True
            ) as client:
                await client.rebalance(_instance(), 2, shard="ar")
                assert "ar" in client._wire.bases
                reset = await client.reset("ar")
                assert reset == ["ar"]
                assert "ar" not in client._wire.bases
                status = await client.status()
                assert status["shards"]["ar"]["decisions"] == 0
                # The next solve must go out full, not name a base the
                # server forgot.
                await client.rebalance(_instance(), 2, shard="ar")
                assert client.fulls_sent == 2

        with start_background(ServerConfig()) as handle:
            asyncio.run(go(handle.host, handle.port))
