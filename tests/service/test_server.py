"""Integration tests: server + client over real sockets.

Every test spins up a fresh in-process server (random port via
``port=0``) through :func:`repro.service.start_background` and talks
to it with the blocking or async client.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import m_partition_rebalance, make_instance
from repro.service import (
    AsyncServiceClient,
    Overloaded,
    ServerConfig,
    ServiceClient,
    ServiceError,
    start_background,
)
from repro.service.protocol import read_frame_sync, write_frame_sync


def _instance(seed: int = 0, n: int = 30, m: int = 4):
    rng = np.random.default_rng(seed)
    return make_instance(
        sizes=rng.uniform(1.0, 9.0, n),
        initial=rng.integers(0, m, n),
        num_processors=m,
    )


def _same_decision(result, scratch):
    assert np.array_equal(
        result.assignment.mapping, scratch.assignment.mapping
    )
    assert result.guessed_opt == scratch.guessed_opt
    assert result.planned_moves == scratch.planned_moves


@pytest.fixture()
def server():
    with start_background(ServerConfig()) as handle:
        yield handle


class TestRebalanceOp:
    def test_roundtrip_matches_scratch_solver(self, server):
        inst = _instance()
        k = 3
        with ServiceClient(server.host, server.port) as client:
            result = client.rebalance(inst, k)
        _same_decision(result, m_partition_rebalance(inst, k))
        assert result.meta["service"]["latency_s"] > 0.0
        assert result.meta["service"]["batch"]["size"] >= 1

    def test_sequential_stream_matches_scratch(self, server):
        rng = np.random.default_rng(3)
        sizes = rng.uniform(1.0, 9.0, 40)
        initial = rng.integers(0, 4, 40)
        k = 2
        with ServiceClient(server.host, server.port) as client:
            for _ in range(6):
                inst = make_instance(
                    sizes=sizes, initial=initial, num_processors=4
                )
                result = client.rebalance(inst, k)
                _same_decision(result, m_partition_rebalance(inst, k))
                initial = result.assignment.mapping
                sizes = sizes * rng.uniform(0.9, 1.1, sizes.size)

    def test_naive_config_matches_scratch(self):
        inst = _instance(seed=5)
        with start_background(ServerConfig.naive()) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                result = client.rebalance(inst, 2)
        _same_decision(result, m_partition_rebalance(inst, 2))

    def test_concurrent_identical_requests_deduped(self, server):
        """Duplicate snapshots in flight together collapse into one
        solve: every response is identical and at least one batch
        reports fewer unique solves than its size."""
        inst = _instance(seed=7)
        scratch = m_partition_rebalance(inst, 2)

        async def go():
            clients = [
                AsyncServiceClient(server.host, server.port)
                for _ in range(8)
            ]
            try:
                return await asyncio.gather(
                    *(c.rebalance(inst, 2) for c in clients)
                )
            finally:
                for c in clients:
                    await c.close()

        results = asyncio.run(go())
        for result in results:
            _same_decision(result, scratch)
        batches = [r.meta["service"]["batch"] for r in results]
        assert any(b["unique"] < b["size"] for b in batches)

    def test_expired_deadline_is_shed(self, server):
        with ServiceClient(server.host, server.port, retries=0) as client:
            with pytest.raises(ServiceError, match="deadline exceeded"):
                client.rebalance(_instance(), 2, deadline_ms=0.0)

    def test_bad_request_missing_instance(self, server):
        with ServiceClient(server.host, server.port, retries=0) as client:
            response = client.call({"op": "rebalance", "k": 2})
            assert response["ok"] is False
            assert response["error"] == "bad request"

    def test_bad_request_negative_k(self, server):
        inst = _instance()
        with ServiceClient(server.host, server.port, retries=0) as client:
            response = client.call(
                {"op": "rebalance", "k": -1, "instance": inst.to_dict()}
            )
            assert response["ok"] is False
            assert response["error"] == "bad request"

    def test_bad_request_non_numeric_deadline(self, server):
        """Regression: a string deadline used to raise ``TypeError``
        outside the bad-request guard, killing the connection instead
        of answering it."""
        inst = _instance()
        with ServiceClient(server.host, server.port, retries=0) as client:
            for deadline in ("50", True, [50]):
                response = client.call({
                    "op": "rebalance", "k": 2, "instance": inst.to_dict(),
                    "deadline_ms": deadline,
                })
                assert response["ok"] is False
                assert response["error"] == "bad request"
            # The connection survived every malformed request.
            assert client.call({"op": "ping"})["ok"] is True

    def test_bad_request_nonfinite_deadline(self, server):
        # Python's json module happily emits bare NaN, so it arrives.
        inst = _instance()
        with ServiceClient(server.host, server.port, retries=0) as client:
            response = client.call({
                "op": "rebalance", "k": 2, "instance": inst.to_dict(),
                "deadline_ms": float("nan"),
            })
            assert response["ok"] is False
            assert response["error"] == "bad request"

    def test_bad_request_nonfinite_snapshot(self, server):
        """Regression: NaN/inf sizes or costs ride through v1 JSON
        unharmed and used to reach the solver; instance validation must
        bounce them as bad requests."""
        inst = _instance()
        nan_sizes = inst.to_dict()
        nan_sizes["sizes"][0] = float("nan")
        inf_costs = inst.to_dict()
        inf_costs["costs"][0] = float("inf")
        with ServiceClient(server.host, server.port, retries=0) as client:
            for body in (nan_sizes, inf_costs):
                response = client.call(
                    {"op": "rebalance", "k": 2, "instance": body}
                )
                assert response["ok"] is False
                assert response["error"] == "bad request"
                assert "finite" in response["message"]
            assert client.call({"op": "ping"})["ok"] is True

    def test_admission_rejects_when_queue_full(self):
        """naive server, queue depth 1: while a slow solve occupies the
        solver, the queue holds one follow-up and the rest bounce with
        ``overloaded`` + a retry hint."""
        rng = np.random.default_rng(9)
        big = make_instance(
            sizes=rng.uniform(1.0, 9.0, 8000),
            initial=rng.integers(0, 32, 8000),
            num_processors=32,
        )
        config = ServerConfig.naive(max_queue=1)

        async def go(host, port):
            clients = [
                AsyncServiceClient(host, port, retries=0) for _ in range(4)
            ]
            try:
                slow = asyncio.ensure_future(clients[0].rebalance(big, 4))
                # let the batcher drain the slow request into the solver
                await asyncio.sleep(0.05)
                rest = await asyncio.gather(
                    *(c.rebalance(big, 4) for c in clients[1:]),
                    return_exceptions=True,
                )
                return await slow, rest
            finally:
                for c in clients:
                    await c.close()

        with start_background(config) as handle:
            first, rest = asyncio.run(go(handle.host, handle.port))
        _same_decision(first, m_partition_rebalance(big, 4))
        rejections = [r for r in rest if isinstance(r, Overloaded)]
        served = [r for r in rest if not isinstance(r, Exception)]
        assert rejections, rest
        assert all(r.retry_after_ms > 0 for r in rejections)
        for result in served:
            _same_decision(result, m_partition_rebalance(big, 4))


class TestControlOps:
    def test_ping(self, server):
        with ServiceClient(server.host, server.port) as client:
            assert client.ping()

    def test_status_reports_config_queue_and_shards(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.rebalance(_instance(), 2, shard="alpha")
            status = client.status()
        assert status["config"]["max_batch"] == 16
        assert status["queue"]["depth"] == 0
        assert status["shards"]["alpha"]["decisions"] == 1
        assert status["metrics"]["counters"]["service.ok"] == 1
        assert status["uptime_s"] > 0.0

    def test_reset_clears_named_shard(self, server):
        inst = _instance()
        with ServiceClient(server.host, server.port) as client:
            client.rebalance(inst, 2, shard="alpha")
            client.rebalance(inst, 2, shard="beta")
            assert client.reset("alpha") == ["alpha"]
            status = client.status()
            assert status["shards"]["alpha"]["decisions"] == 0
            assert status["shards"]["beta"]["decisions"] == 1
            assert sorted(client.reset()) == ["alpha", "beta"]

    def test_reset_decisions_unchanged_after_reset(self, server):
        """Engine contract: a reset shard re-derives identical
        decisions from scratch."""
        inst = _instance(seed=11)
        with ServiceClient(server.host, server.port) as client:
            before = client.rebalance(inst, 2)
            client.reset()
            after = client.rebalance(inst, 2)
        assert np.array_equal(
            before.assignment.mapping, after.assignment.mapping
        )

    def test_unknown_op(self, server):
        with ServiceClient(server.host, server.port, retries=0) as client:
            response = client.call({"op": "defragment"})
            assert response["ok"] is False
            assert response["error"] == "unknown op"

    def test_status_snapshots_shards_on_solve_thread(self, server):
        """Regression: thread-mode status used to iterate the shards
        dict on the event loop while the solve thread inserts new
        shards mid-batch — "dictionary changed size during iteration"
        under load.  The snapshot must run on the solve thread, where
        it serializes against in-flight batches."""
        import threading

        seen: list[str] = []

        class Recording(dict):
            def items(self):
                seen.append(threading.current_thread().name)
                return super().items()

        server.server.shards = Recording(server.server.shards)
        with ServiceClient(server.host, server.port) as client:
            client.rebalance(_instance(), 2)
            client.status()
        assert seen
        assert all(name.startswith("repro-solve") for name in seen)

    def test_shard_k_change_rebuilds_engine(self, server):
        inst = _instance()
        with ServiceClient(server.host, server.port) as client:
            client.rebalance(inst, 2, shard="s")
            result = client.rebalance(inst, 3, shard="s")
            _same_decision(result, m_partition_rebalance(inst, 3))
            status = client.status()
        counters = status["metrics"]["counters"]
        assert counters["service.shard_rebuilds"] == 1


class TestTransport:
    def test_malformed_frame_gets_error_then_close(self, server):
        import socket

        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(b"\x00\x00\x00\x03not-json!")
            response = read_frame_sync(sock)
            assert response["ok"] is False
            # server closes the poisoned connection afterwards
            assert read_frame_sync(sock) is None

    def test_raw_status_op(self, server):
        import socket

        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            write_frame_sync(sock, {"op": "ping"})
            assert read_frame_sync(sock)["ok"] is True

    def test_client_reconnects_after_server_side_close(self, server):
        with ServiceClient(server.host, server.port, retries=2) as client:
            assert client.ping()
            # Poison the connection server-side with a bad frame: the
            # server answers it with an error frame and closes.  The
            # next call reads that stale error (ping -> False), and the
            # one after hits the closed socket and reconnects cleanly.
            client._connection(client.port).sendall(b"\x00\x00\x00\x02{]")
            assert not client.ping()
            assert client.ping()


class TestLifecycle:
    def test_stop_is_idempotent(self):
        handle = start_background(ServerConfig())
        with ServiceClient(handle.host, handle.port) as client:
            assert client.ping()
        handle.stop()
        handle.stop()

    def test_two_servers_coexist(self):
        with start_background(ServerConfig()) as one:
            with start_background(ServerConfig()) as two:
                assert one.port != two.port
                with ServiceClient(one.host, one.port) as c1, \
                        ServiceClient(two.host, two.port) as c2:
                    assert c1.ping() and c2.ping()


@pytest.fixture(scope="class")
def process_server():
    """One process-executor server shared by the class (spawn is slow)."""
    config = ServerConfig(executor="process", process_workers=2)
    with start_background(config) as handle:
        yield handle


class TestProcessExecutor:
    def test_decisions_match_scratch_across_shards(self, process_server):
        insts = [_instance(seed=s) for s in (1, 2, 3)]
        with ServiceClient(process_server.host, process_server.port) as client:
            for i, inst in enumerate(insts):
                result = client.rebalance(inst, 3, shard=f"shard-{i}")
                _same_decision(result, m_partition_rebalance(inst, 3))

    def test_warm_engine_state_survives_across_batches(self):
        # Memo off so the repeat actually reaches the worker: the
        # byte-identical snapshot must hit the worker's warm decision
        # cache — proof the shard stayed in one process.
        config = ServerConfig(
            executor="process", process_workers=2, decision_cache_size=0
        )
        inst = _instance(seed=9)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.rebalance(inst, 2, shard="warm")
                client.rebalance(inst, 2, shard="warm")
                status = client.status()
        assert status["shards"]["warm"]["engine"]["cache_hits"] >= 1

    def test_repeated_snapshot_hits_server_decision_memo(
        self, process_server
    ):
        """A repeated (shard, k, fingerprint) answers from the server's
        decision memo without another worker round trip — and with the
        same decision the worker gave the first time."""
        inst = _instance(seed=29)
        with ServiceClient(process_server.host, process_server.port) as client:
            first = client.rebalance(inst, 2, shard="memo")
            before = client.status()["metrics"]["counters"]
            again = client.rebalance(inst, 2, shard="memo")
            after = client.status()["metrics"]["counters"]
        _same_decision(again, m_partition_rebalance(inst, 2))
        assert np.array_equal(
            again.assignment.mapping, first.assignment.mapping
        )
        assert after.get("service.decision_hits", 0) > before.get(
            "service.decision_hits", 0
        )
        # The memo hit must not have crossed the worker pipe.
        assert after["service.ipc_bytes_out"] == before["service.ipc_bytes_out"]

    def test_status_merges_worker_stats(self, process_server):
        with ServiceClient(process_server.host, process_server.port) as client:
            client.rebalance(_instance(seed=4), 2, shard="stats-a")
            client.rebalance(_instance(seed=5), 2, shard="stats-b")
            status = client.status()
        assert status["config"]["executor"] == "process"
        assert status["shards"]["stats-a"]["decisions"] >= 1
        assert status["shards"]["stats-b"]["decisions"] >= 1

    def test_reset_spans_workers(self, process_server):
        with ServiceClient(process_server.host, process_server.port) as client:
            client.rebalance(_instance(seed=6), 2, shard="reset-a")
            client.rebalance(_instance(seed=7), 2, shard="reset-b")
            reset = client.reset()
            status = client.status()
        assert {"reset-a", "reset-b"} <= set(reset)
        assert status["shards"]["reset-a"]["decisions"] == 0
        assert status["shards"]["reset-b"]["decisions"] == 0

    def test_k_change_rebuilds_worker_engine(self, process_server):
        inst = _instance(seed=8)
        with ServiceClient(process_server.host, process_server.port) as client:
            client.rebalance(inst, 2, shard="kchange")
            result = client.rebalance(inst, 4, shard="kchange")
        _same_decision(result, m_partition_rebalance(inst, 4))

    def test_invalid_executor_config_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(executor="fiber")
        with pytest.raises(ValueError):
            ServerConfig(executor="process", process_workers=0)


class TestBinaryAndDelta:
    def test_binary_client_matches_scratch(self, server):
        inst = _instance(seed=20)
        with ServiceClient(
            server.host, server.port, protocol="binary"
        ) as client:
            result = client.rebalance(inst, 3)
        _same_decision(result, m_partition_rebalance(inst, 3))

    def test_delta_stream_counters_and_decisions(self, server):
        from repro.core.instance import Instance

        base = _instance(seed=21, n=40)
        sizes = base.sizes.copy()
        sizes[3] *= 2.0
        changed = Instance(
            sizes=sizes, costs=base.costs,
            num_processors=base.num_processors, initial=base.initial,
        )
        with ServiceClient(
            server.host, server.port, protocol="binary", delta=True
        ) as client:
            first = client.rebalance(base, 2, shard="d")
            second = client.rebalance(changed, 2, shard="d")
            assert client.fulls_sent == 1
            assert client.deltas_sent == 1
        _same_decision(first, m_partition_rebalance(base, 2))
        _same_decision(second, m_partition_rebalance(changed, 2))

    def test_ok_response_carries_fingerprint(self, server):
        from repro.core.engine import snapshot_fingerprint

        inst = _instance(seed=22)
        with ServiceClient(server.host, server.port, retries=0) as client:
            response = client.call({
                "op": "rebalance", "shard": "fp", "k": 2,
                "instance": inst.to_dict(),
            })
        assert response["ok"] is True
        assert response["fingerprint"] == snapshot_fingerprint(inst).hex()

    def test_unknown_base_raw_error(self, server):
        with ServiceClient(
            server.host, server.port, retries=0, protocol="binary"
        ) as client:
            response = client.call({
                "op": "rebalance", "shard": "nb", "k": 2,
                "delta": {"base": "ff" * 16, "idx": [], "sizes": [],
                          "costs": [], "initial": []},
            })
        assert response["ok"] is False
        assert response["error"] == "unknown base"

    def test_client_falls_back_to_full_on_unknown_base(self, server):
        inst = _instance(seed=23, n=40)
        with ServiceClient(
            server.host, server.port, protocol="binary", delta=True
        ) as client, ServiceClient(server.host, server.port) as probe:
            client.rebalance(inst, 2, shard="fb")
            # Server-side reset evicts the delta bases; the client
            # still believes its base is current.
            probe.reset("fb")
            result = client.rebalance(inst, 2, shard="fb")
            assert client.deltas_sent == 1   # the attempt that bounced
            assert client.fulls_sent == 2    # initial + fallback
        _same_decision(result, m_partition_rebalance(inst, 2))

    def test_delta_requires_binary_protocol(self, server):
        with pytest.raises(ValueError):
            ServiceClient(server.host, server.port, delta=True)

    def test_delta_base_evicted_by_lru_falls_back_to_full(self):
        """Distinct snapshots streaming through a shard push older
        delta bases out of the bounded LRU; a delta against an evicted
        base bounces as ``unknown base`` and the client transparently
        re-sends the full snapshot."""
        from repro.core.instance import Instance

        config = ServerConfig(base_cache_size=2)
        inst = _instance(seed=30, n=40)
        sizes = inst.sizes.copy()
        sizes[5] *= 1.5
        changed = Instance(
            sizes=sizes, costs=inst.costs,
            num_processors=inst.num_processors, initial=inst.initial,
        )
        with start_background(config) as handle:
            with ServiceClient(
                handle.host, handle.port, protocol="binary", delta=True
            ) as client, ServiceClient(handle.host, handle.port) as probe:
                client.rebalance(inst, 2, shard="ev")
                # Two more distinct snapshots through the same shard
                # evict the delta client's base from the size-2 LRU.
                probe.rebalance(_instance(seed=31, n=40), 2, shard="ev")
                probe.rebalance(_instance(seed=32, n=40), 2, shard="ev")
                result = client.rebalance(changed, 2, shard="ev")
                assert client.deltas_sent == 1  # the bounced attempt
                assert client.fulls_sent == 2   # initial + fallback
                counters = probe.status()["metrics"]["counters"]
                assert counters.get("service.delta_misses", 0) >= 1
        _same_decision(result, m_partition_rebalance(changed, 2))

    def test_malformed_delta_is_bad_request(self, server):
        inst = _instance(seed=24)
        with ServiceClient(
            server.host, server.port, retries=0, protocol="binary"
        ) as client:
            ok = client.call({
                "op": "rebalance", "shard": "md", "k": 2,
                "instance": inst.to_dict(),
            })
            response = client.call({
                "op": "rebalance", "shard": "md", "k": 2,
                "delta": {"base": ok["fingerprint"],
                          "idx": [0, 99999], "sizes": [1.0, 1.0],
                          "costs": [1.0, 1.0], "initial": [0, 0]},
            })
        assert response["ok"] is False
        assert response["error"] == "bad request"
