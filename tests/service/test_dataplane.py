"""Sharded router data plane: shard-affine workers, moved redirects,
zero-materialization relay, worker respawn, and the differential proof
that N worker processes answer byte-identically to the single-process
router.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core import make_instance
from repro.core.partition import m_partition_rebalance
from repro.service import (
    BackendSpec,
    ProtocolError,
    RouterConfig,
    ServerConfig,
    ServiceClient,
    ServiceError,
    default_router_workers,
    start_background,
    start_router_background,
    start_sharded_router,
    worker_for,
)

WORKERS = 2


def _instance(seed: int = 11, n: int = 48, m: int = 4):
    rng = np.random.default_rng(seed)
    return make_instance(
        sizes=rng.uniform(1.0, 9.0, n),
        initial=rng.integers(0, m, n),
        num_processors=m,
    )


def _shards_by_worker(count: int, per_worker: int) -> dict[int, list[str]]:
    """Deterministic shard names bucketed by owning worker index."""
    out: dict[int, list[str]] = {w: [] for w in range(count)}
    i = 0
    while any(len(v) < per_worker for v in out.values()):
        name = f"shard-{i}"
        bucket = out[worker_for(name, count)]
        if len(bucket) < per_worker:
            bucket.append(name)
        i += 1
    return out


class TestWorkerFor:
    def test_deterministic_and_bounded(self):
        for count in (1, 2, 3, 4, 7):
            for i in range(64):
                w = worker_for(f"s{i}", count)
                assert 0 <= w < count
                assert w == worker_for(f"s{i}", count)

    def test_single_worker_owns_everything(self):
        assert all(worker_for(f"s{i}", 1) == 0 for i in range(16))
        assert worker_for("anything", 0) == 0

    def test_spreads_across_workers(self):
        owners = {worker_for(f"shard-{i}", WORKERS) for i in range(64)}
        assert owners == set(range(WORKERS))

    def test_default_worker_count_bounds(self):
        assert 1 <= default_router_workers() <= 4


@pytest.fixture()
def sharded_cluster():
    """A 2-worker sharded router over two in-process backends."""
    with start_background(ServerConfig()) as b0, \
            start_background(ServerConfig()) as b1:
        config = RouterConfig(backends=(
            BackendSpec("backend-0", b0.host, b0.port),
            BackendSpec("backend-1", b1.host, b1.port),
        ))
        with start_sharded_router(config, WORKERS) as sharded:
            yield sharded


class TestShardedRouterIntegration:
    def test_ping_and_merged_status(self, sharded_cluster):
        sharded = sharded_cluster
        with ServiceClient(sharded.host, sharded.port) as client:
            assert client.ping()
            status = client.status()
        router = status["router"]
        assert router["live"] == ["backend-0", "backend-1"]
        workers = router["workers"]
        assert len(workers) == WORKERS
        pids = {int(info["pid"]) for info in workers.values()}
        assert pids == set(sharded.worker_pids().values())

    def test_moved_redirects_are_cached_per_shard(self, sharded_cluster):
        """One connection to the shared port lands on exactly one
        worker; every shard owned by the *other* worker redirects once
        (``moved`` carries the owner's direct port), then goes direct."""
        sharded = sharded_cluster
        shards = _shards_by_worker(WORKERS, 2)
        all_shards = [s for group in shards.values() for s in group]
        with ServiceClient(
            sharded.host, sharded.port, protocol="binary", retries=4
        ) as client:
            for round_idx in range(2):
                for shard in all_shards:
                    instance = _instance(seed=7 + round_idx)
                    want = m_partition_rebalance(instance, 2)
                    got = client.rebalance(instance, 2, shard=shard)
                    np.testing.assert_array_equal(
                        got.assignment.mapping, want.assignment.mapping
                    )
            # Exactly the foreign worker's shards redirected — once
            # each; the cached direct ports absorbed round two.
            assert client.moved_redirects == 2
            status = client.status()
        counters = status["router"]["metrics"]["counters"]
        assert counters.get("router.moved", 0) == 2
        assert set(status["router"]["residents"]) == set(all_shards)

    def test_reset_fans_across_workers(self, sharded_cluster):
        sharded = sharded_cluster
        shards = _shards_by_worker(WORKERS, 1)
        with ServiceClient(
            sharded.host, sharded.port, protocol="binary", retries=4
        ) as client:
            for group in shards.values():
                for shard in group:
                    client.rebalance(_instance(seed=3), 2, shard=shard)
            assert set(client.status()["router"]["residents"]) == {
                s for g in shards.values() for s in g
            }
            client.reset()
            status = client.status()
            assert status["router"]["residents"] == {}
            assert status["router"]["shards"] == 0


class TestDifferentialTrajectories:
    """Two sync clients driving disjoint shards through the 2-worker
    data plane must produce trajectories byte-identical to the
    single-process router (the sharding is invisible to decisions)."""

    EPOCHS = 5

    def _drive(self, host: str, port: int, shards: list[str]):
        """Interleave delta streams for ``shards``, one sync client
        each; returns per-shard (mapping bytes, per-epoch mappings)."""
        clients = [
            ServiceClient(host, port, protocol="binary", delta=True,
                          retries=4)
            for _ in shards
        ]
        trajectories: dict[str, list[bytes]] = {s: [] for s in shards}
        try:
            for epoch in range(self.EPOCHS):
                for shard, client in zip(shards, clients):
                    rng = np.random.default_rng([hash(shard) % 2**32, epoch])
                    base = _instance(seed=29, n=64)
                    sizes = base.sizes.copy()
                    touched = rng.choice(64, size=4, replace=False)
                    sizes[touched] *= rng.uniform(0.5, 2.0, 4)
                    instance = make_instance(
                        sizes=sizes, initial=base.initial,
                        num_processors=base.num_processors,
                    )
                    got = client.rebalance(instance, 3, shard=shard)
                    trajectories[shard].append(
                        np.asarray(got.assignment.mapping,
                                   dtype=np.int64).tobytes()
                    )
        finally:
            for client in clients:
                client.close()
        return trajectories

    def test_sharded_matches_single_process_router(self):
        shards_by_worker = _shards_by_worker(WORKERS, 1)
        shards = [g[0] for g in shards_by_worker.values()]
        assert {worker_for(s, WORKERS) for s in shards} == {0, 1}

        def fresh_config():
            b0 = start_background(ServerConfig())
            b1 = start_background(ServerConfig())
            return b0, b1, RouterConfig(backends=(
                BackendSpec("backend-0", b0.host, b0.port),
                BackendSpec("backend-1", b1.host, b1.port),
            ))

        b0, b1, config = fresh_config()
        try:
            with start_router_background(config) as router:
                want = self._drive(router.host, router.port, shards)
        finally:
            b0.stop()
            b1.stop()

        b0, b1, config = fresh_config()
        try:
            with start_sharded_router(config, WORKERS) as sharded:
                got = self._drive(sharded.host, sharded.port, shards)
        finally:
            b0.stop()
            b1.stop()

        assert got == want  # byte-identical, every shard, every epoch


class TestWorkerKillRespawn:
    def test_kill9_worker_respawns_and_stream_recovers(self, sharded_cluster):
        """SIGKILL the worker that owns the driven shard: the control
        plane respawns it, peers answer backpressure meanwhile, and the
        client's retry budget rides out the gap — answers stay correct."""
        sharded = sharded_cluster
        shard = _shards_by_worker(WORKERS, 1)[0][0]
        victim_index = worker_for(shard, WORKERS)
        with ServiceClient(
            sharded.host, sharded.port, protocol="binary", delta=True,
            retries=8,
        ) as client:
            first = _instance(seed=2)
            client.rebalance(first, 2, shard=shard)
            victim_pid = sharded.worker_pids()[victim_index]
            os.kill(victim_pid, signal.SIGKILL)
            instance = _instance(seed=4)
            want = m_partition_rebalance(instance, 2)
            deadline = time.monotonic() + 30.0
            while True:
                try:
                    got = client.rebalance(instance, 2, shard=shard)
                    break
                except (ServiceError, ProtocolError, OSError):
                    assert time.monotonic() < deadline, \
                        "stream never recovered from the worker kill"
                    time.sleep(0.1)
            np.testing.assert_array_equal(
                got.assignment.mapping, want.assignment.mapping
            )
        deadline = time.monotonic() + 30.0
        while sharded.worker_pids()[victim_index] in (None, victim_pid):
            assert time.monotonic() < deadline, "worker never respawned"
            time.sleep(0.05)
        assert sharded.respawns == 1


class TestInheritedFdFallback:
    def test_reuse_port_disabled_still_serves(self):
        """Without SO_REUSEPORT the parent binds once and workers
        inherit the listening socket over the spawn pipe."""
        with start_background(ServerConfig()) as b0:
            config = RouterConfig(backends=(
                BackendSpec("backend-0", b0.host, b0.port),
            ))
            with start_sharded_router(
                config, WORKERS, reuse_port=False
            ) as sharded:
                instance = _instance(seed=21)
                want = m_partition_rebalance(instance, 2)
                with ServiceClient(
                    sharded.host, sharded.port, protocol="binary",
                    retries=4,
                ) as client:
                    got = client.rebalance(instance, 2, shard="fb")
                np.testing.assert_array_equal(
                    got.assignment.mapping, want.assignment.mapping
                )
