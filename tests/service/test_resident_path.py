"""The O(churn) request path: resident deltas, moves-only responses,
shm ring growth, and the churn-stream load generator.

Every differential test holds the same invariant the rest of the suite
does: no fast path may ever change a decision.  A delta stream applied
onto the server's resident arrays — whatever mix of churn sizes,
response shapes, and engine fallbacks it crosses — must answer exactly
what a from-scratch solve of the materialized snapshot answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_instance
from repro.core.partition import m_partition_rebalance
from repro.service import (
    ChurnStreamConfig,
    ServerConfig,
    ServiceClient,
    run_churn_stream,
    start_background,
)
from repro.service.resident import ResidentShard


@pytest.fixture()
def server():
    with start_background(ServerConfig()) as handle:
        yield handle


def _mapping_from(response: dict, initial: np.ndarray) -> np.ndarray:
    """Reconstruct the full mapping from either response shape."""
    if "mapping" in response:
        return np.asarray(response["mapping"], dtype=np.int64)
    mapping = np.array(initial, dtype=np.int64)
    idx = np.asarray(response["moves_idx"], dtype=np.int64)
    if idx.shape[0]:
        mapping[idx] = np.asarray(response["moves_to"], dtype=np.int64)
    return mapping


def _send_full(client, res, shard, k, moves_only):
    return client.call({
        "op": "rebalance", "shard": shard, "k": k,
        "moves_only": moves_only,
        "instance": res.export_instance().to_wire(),
    })


def _step_delta(res, rng, churn, moves_idx, moves_to):
    """One churn-stream epoch step on a client-side resident: mutate
    ``churn`` site sizes, fold in last epoch's moves, commit, and
    return the wire delta (exactly what the loadgen's churn-stream
    mode builds)."""
    n = res.num_jobs
    c_idx = np.sort(rng.choice(n, size=churn, replace=False))
    c_sizes = np.maximum(
        res.sizes[c_idx] * rng.uniform(0.6, 1.8, churn), 1e-9
    )
    idx = np.union1d(c_idx, moves_idx)
    new_sizes = res.sizes[idx].copy()
    new_costs = res.costs[idx].copy()
    new_initial = res.initial[idx].copy()
    new_sizes[np.searchsorted(idx, c_idx)] = c_sizes
    if moves_idx.shape[0]:
        new_initial[np.searchsorted(idx, moves_idx)] = moves_to
    delta = {
        "base": res.fp_hex, "idx": idx, "sizes": new_sizes,
        "costs": new_costs, "initial": new_initial,
    }
    frame, fp = res.preview(delta)
    res.commit(frame, fp)
    return delta


class TestResidentDifferential:
    def test_delta_stream_matches_scratch_both_shapes(self, server):
        """A churn delta stream through the resident path — response
        shape alternating between moves-only and full mapping — decides
        identically to from-scratch solves of the materialized
        snapshots, and the engine actually ran incrementally."""
        k = 3
        n, m, churn = 80, 5, 6
        rng = np.random.default_rng(21)
        inst = make_instance(
            sizes=rng.uniform(1.0, 9.0, n),
            initial=rng.integers(0, m, n),
            num_processors=m,
        )
        res = ResidentShard(inst)
        with ServiceClient(
            server.host, server.port, protocol="binary"
        ) as client:
            response = _send_full(client, res, "diff", k, True)
            assert response["ok"]
            mapping = _mapping_from(response, res.initial)
            want = m_partition_rebalance(res.export_instance(), k)
            np.testing.assert_array_equal(
                mapping, want.assignment.mapping
            )
            moves_idx = np.flatnonzero(mapping != res.initial)
            moves_to = mapping[moves_idx]
            for epoch in range(8):
                delta = _step_delta(res, rng, churn, moves_idx, moves_to)
                response = client.call({
                    "op": "rebalance", "shard": "diff", "k": k,
                    "moves_only": epoch % 2 == 0, "delta": delta,
                })
                assert response["ok"]
                assert response["fingerprint"] == res.fp_hex
                mapping = _mapping_from(response, res.initial)
                want = m_partition_rebalance(res.export_instance(), k)
                np.testing.assert_array_equal(
                    mapping, want.assignment.mapping
                )
                moves_idx = np.flatnonzero(mapping != res.initial)
                moves_to = mapping[moves_idx]
            status = client.status()
        counters = status["metrics"]["counters"]
        assert counters.get("service.resident_deltas", 0) >= 8
        engine = status["shards"]["diff"]["engine"]
        assert engine["incremental_decides"] >= 1

    def test_fallback_threshold_crossing_still_exact(self, server):
        """A delta touching nearly every site crosses the engine's
        churn-limit fallback (full table rebuild instead of the
        incremental scan); the decision must not change, and the
        stream must continue incrementally afterwards."""
        k = 2
        n, m = 64, 4
        rng = np.random.default_rng(33)
        inst = make_instance(
            sizes=rng.uniform(1.0, 9.0, n),
            initial=rng.integers(0, m, n),
            num_processors=m,
        )
        res = ResidentShard(inst)
        empty = np.empty(0, dtype=np.int64)
        with ServiceClient(
            server.host, server.port, protocol="binary"
        ) as client:
            assert _send_full(client, res, "fb", k, True)["ok"]
            # Small churn, then a delta rewriting all n sites (far past
            # any churn limit), then small churn again.
            for churn in (4, n - 1, 4):
                delta = _step_delta(res, rng, churn, empty, empty)
                response = client.call({
                    "op": "rebalance", "shard": "fb", "k": k,
                    "moves_only": True, "delta": delta,
                })
                assert response["ok"]
                assert response["fingerprint"] == res.fp_hex
                mapping = _mapping_from(response, res.initial)
                want = m_partition_rebalance(res.export_instance(), k)
                np.testing.assert_array_equal(
                    mapping, want.assignment.mapping
                )

    def test_unknown_base_on_resident_tip_mismatch(self, server):
        """A delta whose base is not the resident tip answers
        ``unknown base`` (the client's cue to resend full) and leaves
        the tip untouched."""
        k = 2
        inst = make_instance(
            sizes=[3.0, 2.0, 5.0, 1.0], initial=[0, 0, 1, 1],
            num_processors=2,
        )
        res = ResidentShard(inst)
        with ServiceClient(
            server.host, server.port, protocol="binary"
        ) as client:
            assert _send_full(client, res, "ub", k, True)["ok"]
            response = client.call({
                "op": "rebalance", "shard": "ub", "k": k,
                "delta": {
                    "base": "00" * 16, "idx": np.array([1]),
                    "sizes": np.array([4.0]), "costs": np.array([1.0]),
                    "initial": np.array([0]),
                },
            })
            assert not response["ok"]
            assert response["error"] == "unknown base"
            # The stream recovers with a full resend of the same tip.
            response = _send_full(client, res, "ub", k, True)
            assert response["ok"]
            assert response["fingerprint"] == res.fp_hex


class TestShmRingGrowth:
    def test_oversize_snapshot_grows_ring_not_inline(self):
        """A snapshot too big for the configured slot grows the ring
        (slot size doubles, workers re-attach) instead of silently
        demoting the shard to the inline codec; decisions stay exact
        before and after the growth."""
        config = ServerConfig(
            executor="process", process_workers=2,
            shm_slots=8, shm_slot_bytes=512,
        )
        n, m, k = 200, 6, 3  # needs ~4.8KiB per slot, 512B configured
        rng = np.random.default_rng(7)
        with start_background(config) as handle:
            with ServiceClient(
                handle.host, handle.port, protocol="binary"
            ) as client:
                for seed in range(3):
                    inst = make_instance(
                        sizes=rng.uniform(1.0, 9.0, n),
                        initial=rng.integers(0, m, n),
                        num_processors=m,
                    )
                    want = m_partition_rebalance(inst, k)
                    got = client.rebalance(inst, k, shard=f"g{seed}")
                    np.testing.assert_array_equal(
                        got.assignment.mapping, want.assignment.mapping
                    )
                status = client.status()
        counters = status["metrics"]["counters"]
        assert counters.get("service.shm_grows", 0) >= 1
        assert counters.get("service.shm_writes", 0) >= 1
        assert status["shm"]["epoch"] >= 1
        assert status["shm"]["slot_bytes"] > 512

    def test_beyond_cap_falls_back_inline(self):
        """Past ``shm_max_slot_bytes`` the ring cannot grow; the
        snapshot falls back to the inline codec path and still decides
        exactly."""
        config = ServerConfig(
            executor="process", process_workers=1,
            shm_slots=4, shm_slot_bytes=512, shm_max_slot_bytes=1024,
        )
        n, m, k = 200, 6, 3
        rng = np.random.default_rng(9)
        inst = make_instance(
            sizes=rng.uniform(1.0, 9.0, n),
            initial=rng.integers(0, m, n),
            num_processors=m,
        )
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                want = m_partition_rebalance(inst, k)
                got = client.rebalance(inst, k)
                np.testing.assert_array_equal(
                    got.assignment.mapping, want.assignment.mapping
                )
                status = client.status()
        counters = status["metrics"]["counters"]
        assert counters.get("service.shm_grow_failed", 0) >= 1
        assert counters.get("service.shm_oversize", 0) >= 1


class TestChurnStreamLoadgen:
    def test_runs_clean_and_byte_identical(self, server):
        """Two churn-stream runs with the same config against the same
        server: zero errors, zero tip mismatches, every post-seed
        epoch shipped as a delta, and byte-identical per-shard
        trajectories (the E18 determinism check)."""
        config = ChurnStreamConfig(
            shards=2, num_sites=400, num_servers=8, k=8,
            churn=8, epochs=10, warmup_epochs=2, seed=5,
        )
        first = run_churn_stream(server.host, server.port, config)
        second = run_churn_stream(server.host, server.port, config)
        for report in (first, second):
            assert report.errors == 0
            assert report.fp_mismatches == 0
            assert report.completed == config.shards * config.epochs
            assert report.deltas_sent == config.shards * (config.epochs - 1)
            assert report.fulls_sent == config.shards
        assert first.trajectories == second.trajectories
        assert len(first.trajectories) == config.shards

    def test_paced_stream_same_trajectory_as_closed_loop(self, server):
        """``epoch_interval_ms`` changes *when* epochs fire, never what
        they contain: a paced run must produce the exact trajectory of
        the closed-loop run with the same seed."""
        base = dict(
            shards=2, num_sites=400, num_servers=8, k=8,
            churn=8, epochs=8, warmup_epochs=2, seed=5,
        )
        closed = run_churn_stream(
            server.host, server.port, ChurnStreamConfig(**base)
        )
        paced = run_churn_stream(
            server.host, server.port,
            ChurnStreamConfig(**base, epoch_interval_ms=20.0),
        )
        assert paced.errors == 0
        assert paced.completed == closed.completed
        assert paced.trajectories == closed.trajectories

    def test_epoch_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="epoch_interval_ms"):
            ChurnStreamConfig(num_sites=100, epoch_interval_ms=0.0)
