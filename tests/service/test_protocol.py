"""Tests for the wire protocol: v1 JSON and v2 binary framing."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.instance import Instance, apply_delta, compute_delta, make_instance
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    pack_payload,
    read_frame,
    read_frame_sync,
    read_frame_sync_versioned,
    read_frame_versioned,
    unpack_payload,
    write_frame_sync,
)


def _read_async(data: bytes):
    """Feed raw bytes to an asyncio StreamReader and read one frame."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "rebalance", "k": 3, "nested": {"a": [1, 2.5]}}
        assert _read_async(encode_frame(message)) == message

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"x": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_compact_encoding(self):
        assert b", " not in encode_frame({"a": 1, "b": 2})

    def test_multiple_frames_stream(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"i": 1}) + encode_frame({"i": 2}))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader), \
                await read_frame(reader)

        first, second, third = asyncio.run(go())
        assert (first, second) == ({"i": 1}, {"i": 2})
        assert third is None  # clean EOF at a frame boundary

    def test_clean_eof_returns_none(self):
        assert _read_async(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError):
            _read_async(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(ProtocolError):
            _read_async(frame[:-2])

    def test_oversized_frame_rejected_without_reading_body(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            _read_async(header)

    def test_bad_json_raises(self):
        body = b"{not json"
        with pytest.raises(ProtocolError):
            _read_async(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_raises(self):
        body = b"[1, 2, 3]"
        with pytest.raises(ProtocolError):
            _read_async(struct.pack(">I", len(body)) + body)

    def test_encode_rejects_oversized(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})


class TestSyncFraming:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"op": "ping", "payload": list(range(10))}

            def serve():
                received = read_frame_sync(right)
                write_frame_sync(right, {"echo": received})

            thread = threading.Thread(target=serve)
            thread.start()
            write_frame_sync(left, message)
            reply = read_frame_sync(left)
            thread.join()
            assert reply == {"echo": message}
        finally:
            left.close()
            right.close()

    def test_clean_close_returns_none(self):
        left, right = socket.socketpair()
        right.close()
        try:
            assert read_frame_sync(left) is None
        finally:
            left.close()

    def test_close_mid_frame_raises(self):
        left, right = socket.socketpair()
        frame = encode_frame({"x": 1})
        right.sendall(frame[:-1])
        right.close()
        try:
            with pytest.raises(ProtocolError):
                read_frame_sync(left)
        finally:
            left.close()


def _read_versioned_async(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame_versioned(reader)

    return asyncio.run(go())


def _read_versioned_sync(data: bytes):
    left, right = socket.socketpair()
    try:
        right.sendall(data)
        right.close()
        return read_frame_sync_versioned(left)
    finally:
        left.close()


def _sync_error_message(data: bytes) -> str:
    left, right = socket.socketpair()
    try:
        right.sendall(data)
        right.close()
        with pytest.raises(ProtocolError) as excinfo:
            read_frame_sync_versioned(left)
        return str(excinfo.value)
    finally:
        left.close()


def _async_error_message(data: bytes) -> str:
    with pytest.raises(ProtocolError) as excinfo:
        _read_versioned_async(data)
    return str(excinfo.value)


class TestBinaryFraming:
    def _message(self):
        return {
            "op": "rebalance",
            "shard": "web",
            "k": 4,
            "instance": {
                "sizes": np.array([1.5, 2.0, 0.25]),
                "costs": np.array([1.0, 1.0, 1.0]),
                "initial": np.array([0, 1, 1], dtype=np.int64),
                "num_processors": 2,
            },
        }

    def test_pack_unpack_roundtrip_bit_exact(self):
        message = self._message()
        out = unpack_payload(pack_payload(message))
        inst = out["instance"]
        assert out["op"] == "rebalance" and out["k"] == 4
        assert inst["sizes"].dtype == np.float64
        assert inst["initial"].dtype == np.int64
        np.testing.assert_array_equal(inst["sizes"], message["instance"]["sizes"])
        np.testing.assert_array_equal(inst["initial"], message["instance"]["initial"])

    def test_v2_frame_roundtrip_async_and_sync(self):
        frame = encode_frame(self._message(), version=PROTOCOL_V2)
        message, version = _read_versioned_async(frame)
        assert version == PROTOCOL_V2
        np.testing.assert_array_equal(
            message["instance"]["sizes"], self._message()["instance"]["sizes"]
        )
        message, version = _read_versioned_sync(frame)
        assert version == PROTOCOL_V2

    def test_v2_magic_and_little_endian_length(self):
        frame = encode_frame({"x": 1}, version=PROTOCOL_V2)
        assert frame[:2] == b"RB"
        assert frame[2] == PROTOCOL_V2
        (length,) = struct.unpack("<I", frame[4:8])
        assert length == len(frame) - 8

    def test_empty_arrays_survive(self):
        message = {"idx": np.array([], dtype=np.int64)}
        out = unpack_payload(pack_payload(message))
        assert out["idx"].shape == (0,)
        assert out["idx"].dtype == np.int64

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ProtocolError):
            pack_payload({"bad": np.array(["a", "b"])})

    def test_truncated_array_section_rejected(self):
        body = pack_payload({"a": np.arange(8, dtype=np.int64)})
        with pytest.raises(ProtocolError):
            unpack_payload(body[:-16])

    def test_non_object_meta_rejected(self):
        meta = b"[1,2]"
        body = struct.pack("<I", len(meta)) + meta
        with pytest.raises(ProtocolError):
            unpack_payload(body)

    def test_unknown_version_byte_rejected(self):
        frame = bytearray(encode_frame({"x": 1}, version=PROTOCOL_V2))
        frame[2] = 9
        with pytest.raises(ProtocolError, match="version"):
            _read_versioned_async(bytes(frame))
        with pytest.raises(ProtocolError, match="version"):
            _read_versioned_sync(bytes(frame))

    def test_encode_unknown_version_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"x": 1}, version=3)


class TestVersionNegotiation:
    def test_v1_frames_report_v1(self):
        message, version = _read_versioned_async(encode_frame({"x": 1}))
        assert (message, version) == ({"x": 1}, PROTOCOL_V1)
        message, version = _read_versioned_sync(encode_frame({"x": 1}))
        assert (message, version) == ({"x": 1}, PROTOCOL_V1)

    def test_mixed_version_stream_async(self):
        data = (
            encode_frame({"i": 1})
            + encode_frame({"i": 2}, version=PROTOCOL_V2)
            + encode_frame({"i": 3})
        )

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            frames = []
            while True:
                frame = await read_frame_versioned(reader)
                if frame is None:
                    return frames
                frames.append(frame)

        frames = asyncio.run(go())
        assert [(m["i"], v) for m, v in frames] == [
            (1, PROTOCOL_V1), (2, PROTOCOL_V2), (3, PROTOCOL_V1),
        ]

    def test_mixed_version_stream_sync(self):
        left, right = socket.socketpair()
        try:
            right.sendall(
                encode_frame({"i": 1}, version=PROTOCOL_V2)
                + encode_frame({"i": 2})
            )
            right.close()
            assert read_frame_sync_versioned(left) == ({"i": 1}, PROTOCOL_V2)
            assert read_frame_sync_versioned(left) == ({"i": 2}, PROTOCOL_V1)
            assert read_frame_sync_versioned(left) is None
        finally:
            left.close()

    def test_oversized_declared_length_rejected_both_versions(self):
        v1_header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        v2_header = b"RB" + struct.pack("<BBI", PROTOCOL_V2, 0, MAX_FRAME_BYTES + 1)
        for header in (v1_header, v2_header):
            with pytest.raises(ProtocolError, match="exceeds the maximum"):
                _read_versioned_async(header)
            with pytest.raises(ProtocolError, match="exceeds the maximum"):
                _read_versioned_sync(header)


class TestEofMessageParity:
    """Sync and async readers must report torn reads identically."""

    def test_mid_header_messages_match(self):
        for data in (b"\x00\x00", b"RB\x02"):
            sync_msg = _sync_error_message(data)
            async_msg = _async_error_message(data)
            assert sync_msg == async_msg == "connection closed mid-header"

    def test_mid_frame_messages_match(self):
        for version in (PROTOCOL_V1, PROTOCOL_V2):
            frame = encode_frame({"x": 1}, version=version)
            sync_msg = _sync_error_message(frame[:-2])
            async_msg = _async_error_message(frame[:-2])
            assert sync_msg == async_msg == "connection closed mid-frame"


class TestDeltaFrames:
    def _instances(self):
        base = make_instance(
            [5.0, 3.0, 2.0, 8.0, 1.0], [0, 0, 1, 1, 2], num_processors=3
        )
        sizes = base.sizes.copy()
        sizes[1] = 3.5
        sizes[4] = 0.75
        new = Instance(
            sizes=sizes, costs=base.costs,
            num_processors=3, initial=base.initial,
        )
        return base, new

    def test_delta_roundtrip_reconstructs_bit_exact(self):
        base, new = self._instances()
        delta = compute_delta(base, new)
        assert delta is not None
        assert delta["idx"].tolist() == [1, 4]
        # Ship the delta through an actual v2 frame and apply it.
        frame = encode_frame({"delta": delta}, version=PROTOCOL_V2)
        message, version = _read_versioned_sync(frame)
        assert version == PROTOCOL_V2
        rebuilt = apply_delta(base, message["delta"])
        assert rebuilt.sizes.tobytes() == new.sizes.tobytes()
        assert rebuilt.costs.tobytes() == new.costs.tobytes()
        assert rebuilt.initial.tobytes() == new.initial.tobytes()
        assert rebuilt.num_processors == new.num_processors

    def test_identical_snapshots_yield_empty_delta(self):
        base, _ = self._instances()
        delta = compute_delta(base, base)
        assert delta is not None and delta["idx"].size == 0
        rebuilt = apply_delta(base, delta)
        assert rebuilt.sizes.tobytes() == base.sizes.tobytes()

    def test_incompatible_shapes_yield_none(self):
        base, _ = self._instances()
        grown = make_instance([1.0] * 6, [0] * 6, num_processors=3)
        assert compute_delta(base, grown) is None

    def test_apply_delta_validates_indices(self):
        base, new = self._instances()
        delta = compute_delta(base, new)
        delta["idx"] = np.array([1, 99], dtype=np.int64)
        with pytest.raises(ValueError):
            apply_delta(base, delta)

    def test_apply_delta_validates_lengths(self):
        base, new = self._instances()
        delta = compute_delta(base, new)
        delta["sizes"] = np.array([1.0], dtype=np.float64)
        with pytest.raises(ValueError):
            apply_delta(base, delta)

    def test_delta_frame_smaller_than_full_at_scale(self):
        rng = np.random.default_rng(7)
        n = 4000
        base = make_instance(
            rng.uniform(0.5, 2.0, n), rng.integers(0, 16, n),
            num_processors=16,
        )
        sizes = base.sizes.copy()
        sizes[:10] *= 1.5  # 10 changed sites out of 4000
        new = base.with_initial(base.initial)
        new = Instance(
            sizes=sizes, costs=base.costs,
            num_processors=16, initial=base.initial,
        )
        full = encode_frame(
            {"op": "rebalance", "instance": new.to_wire()}, version=PROTOCOL_V2
        )
        delta = encode_frame(
            {"op": "rebalance", "delta": {"base": "00" * 16,
                                          **compute_delta(base, new)}},
            version=PROTOCOL_V2,
        )
        assert len(delta) * 5 < len(full)


class TestResponses:
    def test_ok_response(self):
        assert ok_response(op="ping", value=2) == {
            "ok": True, "op": "ping", "value": 2,
        }

    def test_error_response(self):
        response = error_response("overloaded", retry_after_ms=12.0)
        assert response["ok"] is False
        assert response["error"] == "overloaded"
        assert response["retry_after_ms"] == 12.0
