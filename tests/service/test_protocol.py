"""Tests for the length-prefixed JSON wire protocol."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
    read_frame_sync,
    write_frame_sync,
)


def _read_async(data: bytes):
    """Feed raw bytes to an asyncio StreamReader and read one frame."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "rebalance", "k": 3, "nested": {"a": [1, 2.5]}}
        assert _read_async(encode_frame(message)) == message

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"x": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_compact_encoding(self):
        assert b", " not in encode_frame({"a": 1, "b": 2})

    def test_multiple_frames_stream(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"i": 1}) + encode_frame({"i": 2}))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader), \
                await read_frame(reader)

        first, second, third = asyncio.run(go())
        assert (first, second) == ({"i": 1}, {"i": 2})
        assert third is None  # clean EOF at a frame boundary

    def test_clean_eof_returns_none(self):
        assert _read_async(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError):
            _read_async(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(ProtocolError):
            _read_async(frame[:-2])

    def test_oversized_frame_rejected_without_reading_body(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            _read_async(header)

    def test_bad_json_raises(self):
        body = b"{not json"
        with pytest.raises(ProtocolError):
            _read_async(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_raises(self):
        body = b"[1, 2, 3]"
        with pytest.raises(ProtocolError):
            _read_async(struct.pack(">I", len(body)) + body)

    def test_encode_rejects_oversized(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})


class TestSyncFraming:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"op": "ping", "payload": list(range(10))}

            def serve():
                received = read_frame_sync(right)
                write_frame_sync(right, {"echo": received})

            thread = threading.Thread(target=serve)
            thread.start()
            write_frame_sync(left, message)
            reply = read_frame_sync(left)
            thread.join()
            assert reply == {"echo": message}
        finally:
            left.close()
            right.close()

    def test_clean_close_returns_none(self):
        left, right = socket.socketpair()
        right.close()
        try:
            assert read_frame_sync(left) is None
        finally:
            left.close()

    def test_close_mid_frame_raises(self):
        left, right = socket.socketpair()
        frame = encode_frame({"x": 1})
        right.sendall(frame[:-1])
        right.close()
        try:
            with pytest.raises(ProtocolError):
                read_frame_sync(left)
        finally:
            left.close()


class TestResponses:
    def test_ok_response(self):
        assert ok_response(op="ping", value=2) == {
            "ok": True, "op": "ping", "value": 2,
        }

    def test_error_response(self):
        response = error_response("overloaded", retry_after_ms=12.0)
        assert response["ok"] is False
        assert response["error"] == "overloaded"
        assert response["retry_after_ms"] == 12.0
