"""Cluster tier: hash ring, router, replication, migration, failover.

The router is pure coordination — consistent-hash placement, delta-log
replication to a standby, standby promotion on backend death, live
migration — and none of it may ever change a decision: every path is
checked against the in-process solver.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core import make_instance
from repro.core.engine import snapshot_fingerprint
from repro.core.partition import m_partition_rebalance
from repro.service import (
    BackendSpec,
    ClusterRouter,
    ConnectionClosed,
    HashRing,
    ProtocolError,
    RouterConfig,
    ServerConfig,
    ServiceClient,
    ServiceError,
    spawn_serve_process,
    start_background,
    start_router_background,
)
from repro.service.resident import ResidentShard
from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    EngineMPartitionPolicy,
    FlashCrowdTraffic,
    ServicePolicy,
    Simulation,
    build_cluster,
)

NODES = ("backend-0", "backend-1", "backend-2")


def _instance(seed: int = 11, n: int = 20, m: int = 4):
    rng = np.random.default_rng(seed)
    return make_instance(
        sizes=rng.uniform(1.0, 9.0, n),
        initial=rng.integers(0, m, n),
        num_processors=m,
    )


class TestHashRing:
    def test_layout_is_deterministic(self):
        a, b = HashRing(NODES), HashRing(NODES)
        for i in range(100):
            assert a.owner(f"shard-{i}") == b.owner(f"shard-{i}")

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("x") is None
        assert ring.owners("x") == []
        assert len(ring) == 0

    def test_owners_distinct_and_bounded_by_ring_size(self):
        ring = HashRing(NODES)
        owners = ring.owners("s", 2)
        assert len(owners) == len(set(owners)) == 2
        assert set(ring.owners("s", 10)) == set(NODES)

    def test_remove_reassigns_only_the_removed_nodes_shards(self):
        ring = HashRing(NODES)
        before = {f"shard-{i}": ring.owner(f"shard-{i}") for i in range(200)}
        ring.remove("backend-1")
        for shard, owner in before.items():
            if owner == "backend-1":
                assert ring.owner(shard) in ("backend-0", "backend-2")
            else:
                assert ring.owner(shard) == owner

    def test_vnodes_spread_ownership(self):
        ring = HashRing(NODES)
        from collections import Counter

        counts = Counter(ring.owner(f"shard-{i}") for i in range(999))
        # 64 vnodes per node keep the split within loose bounds.
        for node in NODES:
            assert counts[node] > 999 * 0.15

    def test_add_remove_membership(self):
        ring = HashRing(("a",))
        ring.add("b")
        ring.add("b")  # idempotent
        assert ring.nodes == ["a", "b"]
        assert "b" in ring and len(ring) == 2
        ring.remove("b")
        ring.remove("b")  # idempotent
        assert ring.nodes == ["a"]
        assert all(ring.owner(f"s{i}") == "a" for i in range(20))

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestBackendSpec:
    def test_parse_named(self):
        spec = BackendSpec.parse("primary=10.0.0.1:7000", 0)
        assert spec == BackendSpec("primary", "10.0.0.1", 7000)

    def test_parse_auto_named(self):
        spec = BackendSpec.parse("127.0.0.1:7001", 3)
        assert spec == BackendSpec("backend-3", "127.0.0.1", 7001)

    @pytest.mark.parametrize("bad", ["nope", "host:", ":123", "h:1x2"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            BackendSpec.parse(bad, 0)


class TestRouterConfig:
    def test_needs_backends(self):
        with pytest.raises(ValueError):
            RouterConfig(backends=())

    def test_rejects_duplicate_names(self):
        spec = BackendSpec("b", "127.0.0.1", 1)
        with pytest.raises(ValueError):
            RouterConfig(backends=(spec, BackendSpec("b", "127.0.0.1", 2)))

    def test_rejects_bad_health_settings(self):
        spec = (BackendSpec("b", "127.0.0.1", 1),)
        with pytest.raises(ValueError):
            RouterConfig(backends=spec, health_misses=0)
        with pytest.raises(ValueError):
            RouterConfig(backends=spec, health_interval_s=0.0)

    def test_rejects_negative_repl_coalesce(self):
        spec = (BackendSpec("b", "127.0.0.1", 1),)
        with pytest.raises(ValueError):
            RouterConfig(backends=spec, repl_coalesce_s=-0.001)

    def test_rejects_negative_relay_knobs(self):
        spec = (BackendSpec("b", "127.0.0.1", 1),)
        with pytest.raises(ValueError):
            RouterConfig(backends=spec, relay_concurrency=-1)
        with pytest.raises(ValueError):
            RouterConfig(backends=spec, relay_delay_s=-0.001)
        with pytest.raises(ValueError):
            RouterConfig(backends=spec, relay_queue=-1)


@pytest.fixture()
def cluster():
    """Router over two in-process backends; yields (router, handles)."""
    with start_background(ServerConfig()) as b0, \
            start_background(ServerConfig()) as b1:
        config = RouterConfig(backends=(
            BackendSpec("backend-0", b0.host, b0.port),
            BackendSpec("backend-1", b1.host, b1.port),
        ))
        with start_router_background(config) as router:
            yield router, {"backend-0": b0, "backend-1": b1}


def _router_counters(router) -> dict[str, int]:
    with ServiceClient(router.host, router.port) as probe:
        return probe.status()["router"]["metrics"]["counters"]


class TestRouterIntegration:
    def test_ping_and_health(self, cluster):
        router, _ = cluster
        with ServiceClient(router.host, router.port) as client:
            assert client.ping()
            health = client.call({"op": "health"})
            assert health["ok"]
            assert health["live"] == ["backend-0", "backend-1"]
            assert health["dead"] == []

    def test_rebalance_matches_in_process_solver(self, cluster):
        router, _ = cluster
        instance = _instance()
        want = m_partition_rebalance(instance, 2)
        with ServiceClient(router.host, router.port) as client:
            got = client.rebalance(instance, 2, shard="direct-check")
        np.testing.assert_array_equal(
            got.assignment.mapping, want.assignment.mapping
        )

    def test_delta_stream_through_router(self, cluster):
        router, _ = cluster
        with ServiceClient(
            router.host, router.port, protocol="binary", delta=True
        ) as client:
            base = _instance(seed=1, n=64)
            client.rebalance(base, 2, shard="d")
            # One changed site: well under the delta cutover.
            sizes = base.sizes.copy()
            sizes[5] *= 2.0
            nxt = make_instance(
                sizes=sizes, initial=base.initial,
                num_processors=base.num_processors,
            )
            want = m_partition_rebalance(nxt, 2)
            got = client.rebalance(nxt, 2, shard="d")
            assert client.deltas_sent == 1
            np.testing.assert_array_equal(
                got.assignment.mapping, want.assignment.mapping
            )

    def test_status_aggregates_router_and_backends(self, cluster):
        router, _ = cluster
        with ServiceClient(router.host, router.port) as client:
            status = client.status()
        assert status["router"]["live"] == ["backend-0", "backend-1"]
        assert status["router"]["dead"] == []
        assert set(status["backends"]) == {"backend-0", "backend-1"}
        assert all(b["ok"] for b in status["backends"].values())

    def test_reset_fans_out(self, cluster):
        router, _ = cluster
        with ServiceClient(router.host, router.port) as client:
            client.rebalance(_instance(), 2, shard="r0")
            client.rebalance(_instance(), 2, shard="r1")
            assert client.reset() == ["r0", "r1"]

    def test_unknown_op_and_bad_migrate(self, cluster):
        router, _ = cluster
        with ServiceClient(router.host, router.port) as client:
            response = client.call({"op": "nope"})
            assert not response["ok"] and response["error"] == "unknown op"
            response = client.call({"op": "migrate", "shard": "s"})
            assert not response["ok"] and response["error"] == "bad request"

    def test_replication_installs_base_on_standby(self, cluster):
        router, handles = cluster
        shard = "repl-check"
        ring = HashRing(("backend-0", "backend-1"))
        standby = ring.owners(shard, 2)[1]
        instance = _instance(seed=7)
        with ServiceClient(router.host, router.port) as client:
            client.rebalance(instance, 2, shard=shard)
        deadline = time.monotonic() + 10.0
        while _router_counters(router).get("router.replicated", 0) < 1:
            assert time.monotonic() < deadline, "replication never drained"
            time.sleep(0.02)
        # The standby now exports the replicated snapshot (and its
        # fingerprint) even though it never served the shard.
        handle = handles[standby]
        with ServiceClient(handle.host, handle.port) as probe:
            exported = probe.call({"op": "migrate", "shard": shard})
        assert exported["ok"] and exported["found"]
        assert exported["fingerprint"] == snapshot_fingerprint(instance).hex()

    def test_replication_drains_with_coalescing_window(self):
        """``repl_coalesce_s`` delays the drain but loses nothing: the
        standby still converges to the shard's latest fingerprint."""
        shard = "coalesce-check"
        with start_background(ServerConfig()) as b0, \
                start_background(ServerConfig()) as b1:
            config = RouterConfig(
                backends=(
                    BackendSpec("backend-0", b0.host, b0.port),
                    BackendSpec("backend-1", b1.host, b1.port),
                ),
                repl_coalesce_s=0.02,
            )
            standby = HashRing(("backend-0", "backend-1")).owners(shard, 2)[1]
            handle = {"backend-0": b0, "backend-1": b1}[standby]
            instance = _instance(seed=11)
            with start_router_background(config) as router:
                with ServiceClient(router.host, router.port) as client:
                    client.rebalance(instance, 2, shard=shard)
                deadline = time.monotonic() + 10.0
                while _router_counters(router).get(
                    "router.replicated", 0
                ) < 1:
                    assert time.monotonic() < deadline, (
                        "coalesced replication never drained"
                    )
                    time.sleep(0.02)
            with ServiceClient(handle.host, handle.port) as probe:
                exported = probe.call({"op": "migrate", "shard": shard})
            assert exported["ok"] and exported["found"]
            assert exported["fingerprint"] == (
                snapshot_fingerprint(instance).hex()
            )

    def test_migrate_flips_routing(self, cluster):
        router, handles = cluster
        shard = "mig-check"
        ring = HashRing(("backend-0", "backend-1"))
        source, target = ring.owners(shard, 2)
        instance = _instance(seed=9)
        with ServiceClient(router.host, router.port) as client:
            client.rebalance(instance, 2, shard=shard)
            moved = client.call(
                {"op": "migrate", "shard": shard, "target": target}
            )
            assert moved["ok"]
            assert moved["source"] == source and moved["target"] == target
            status = client.status()
            assert status["router"]["overrides"] == {shard: target}
            # Post-migration requests hit the target backend and still
            # answer identically to the in-process solver.
            before = status["backends"][target]["shards"].get(
                shard, {"decisions": 0}
            )["decisions"]
            want = m_partition_rebalance(instance, 2)
            got = client.rebalance(instance, 2, shard=shard)
            np.testing.assert_array_equal(
                got.assignment.mapping, want.assignment.mapping
            )
            after = client.status()["backends"][target]["shards"][shard][
                "decisions"
            ]
            assert after > before

    def test_backend_stop_fails_over_without_client_errors(self):
        """Stopping a backend mid-stream: the router marks it dead on
        the inline transport error, replays on the survivor, and the
        client never sees a failure."""
        with start_background(ServerConfig()) as b0, \
                start_background(ServerConfig()) as b1:
            config = RouterConfig(backends=(
                BackendSpec("backend-0", b0.host, b0.port),
                BackendSpec("backend-1", b1.host, b1.port),
            ))
            handles = {"backend-0": b0, "backend-1": b1}
            with start_router_background(config) as router:
                shard = "fo-check"
                owner = HashRing(("backend-0", "backend-1")).owner(shard)
                with ServiceClient(router.host, router.port) as client:
                    client.rebalance(_instance(seed=2), 2, shard=shard)
                    handles[owner].stop()
                    instance = _instance(seed=4)
                    want = m_partition_rebalance(instance, 2)
                    got = client.rebalance(instance, 2, shard=shard)
                    np.testing.assert_array_equal(
                        got.assignment.mapping, want.assignment.mapping
                    )
                    status = client.status()
                assert status["router"]["dead"] == [owner]
                counters = status["router"]["metrics"]["counters"]
                assert counters.get("router.backend_deaths", 0) == 1
                assert counters.get("router.failover_replays", 0) >= 1


class TestStandbyReReplication:
    def test_promotion_rereplicates_to_new_standby(self):
        """When a shard's primary dies, the promoted standby must not
        stay the shard's only copy: the router re-replicates the full
        tip to the newly resolved standby, so a second death is
        survivable too."""
        with start_background(ServerConfig()) as b0, \
                start_background(ServerConfig()) as b1, \
                start_background(ServerConfig()) as b2:
            handles = {"backend-0": b0, "backend-1": b1, "backend-2": b2}
            config = RouterConfig(backends=tuple(
                BackendSpec(name, h.host, h.port)
                for name, h in handles.items()
            ))
            with start_router_background(config) as router:
                shard = "promo"
                instance = _instance(seed=13)
                with ServiceClient(router.host, router.port) as client:
                    client.rebalance(instance, 2, shard=shard)
                deadline = time.monotonic() + 10.0
                while _router_counters(router).get(
                    "router.replicated", 0
                ) < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                primary = HashRing(NODES).owners(shard, 2)[0]
                handles[primary].stop()
                # The health prober notices, promotes, and enqueues a
                # full re-replication to the post-promotion standby.
                while _router_counters(router).get(
                    "router.rereplications", 0
                ) < 1:
                    assert time.monotonic() < deadline, \
                        "promotion never re-replicated"
                    time.sleep(0.02)
                survivors = tuple(n for n in NODES if n != primary)
                new_standby = HashRing(survivors).owners(shard, 2)[1]
                fp_hex = snapshot_fingerprint(instance).hex()
                handle = handles[new_standby]
                exported = None
                while time.monotonic() < deadline:
                    with ServiceClient(handle.host, handle.port) as probe:
                        exported = probe.call(
                            {"op": "migrate", "shard": shard}
                        )
                    if exported.get("found"):
                        break
                    time.sleep(0.02)
                assert exported is not None and exported["ok"]
                assert exported["found"], \
                    "new standby never received the shard tip"
                assert exported["fingerprint"] == fp_hex


EPOCHS = 10
K = 3


def _simulation(policy, seed: int = 44):
    rng = np.random.default_rng(seed)
    cluster = build_cluster(60, 5, rng)
    traffic = ComposedTraffic(
        (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
    )
    return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                      seed=seed)


class _KillOwnerMidRun:
    """Policy wrapper: SIGKILL ``victim`` right before deciding epoch
    ``at_epoch`` — a deterministic mid-trajectory backend death.

    ``Simulation.run`` deep-copies its policy; this wrapper returns
    itself from ``__deepcopy__`` (a live OS process cannot be copied),
    which is fine for the single ``run()`` it serves.
    """

    name = "service-kill9"

    def __init__(self, inner, victim, at_epoch: int) -> None:
        self.inner = inner
        self.victim = victim
        self.at_epoch = at_epoch
        self.killed = False

    def __deepcopy__(self, memo: dict) -> "_KillOwnerMidRun":
        return self

    def decide(self, instance, epoch: int):
        if epoch == self.at_epoch and not self.killed:
            self.killed = True
            self.victim.kill()
        return self.inner.decide(instance, epoch)


class TestKillMinusNine:
    """The tentpole failure injection: a real backend OS process dies
    with SIGKILL and clients keep getting byte-identical answers."""

    def test_trajectory_survives_kill9_byte_identical(self):
        want = _simulation(EngineMPartitionPolicy(k=K)).run(EPOCHS)
        shard = "websim"
        owner = HashRing(("backend-0", "backend-1")).owner(shard)
        processes = [spawn_serve_process(), spawn_serve_process()]
        try:
            config = RouterConfig(backends=tuple(
                BackendSpec(f"backend-{i}", p.host, p.port)
                for i, p in enumerate(processes)
            ))
            with start_router_background(config) as router:
                policy = ServicePolicy(
                    router.host, router.port, k=K, shard=shard,
                    protocol="binary", delta=True,
                )
                # SIGKILL the shard's owner halfway through the epoch
                # loop; the router promotes the delta-replicated
                # standby and the trajectory must not notice.
                victim = processes[int(owner.rsplit("-", 1)[1])]
                wrapped = _KillOwnerMidRun(policy, victim, EPOCHS // 2)
                try:
                    got = _simulation(wrapped).run(EPOCHS)
                finally:
                    policy.close()
                counters = _router_counters(router)
        finally:
            for process in processes:
                process.terminate()
        assert wrapped.killed
        records = got.records
        assert len(records) == EPOCHS
        for ours, theirs in zip(records, want.records):
            assert ours.makespan == theirs.makespan
            assert ours.migrations == theirs.migrations
            assert ours.migration_cost == theirs.migration_cost
            assert ours.imbalance == theirs.imbalance
        assert counters.get("router.backend_deaths", 0) == 1
        assert counters.get("router.replicated", 0) > 0

    def test_reconnects_to_dead_process_are_backoff_bounded(self):
        """A client facing a SIGKILLed process probes with jittered
        exponential backoff — attempts are counted and paced, not a
        reconnect spin."""
        process = spawn_serve_process()
        try:
            with ServiceClient(process.host, process.port) as client:
                assert client.ping()
                process.kill()
                client.retries = 2
                start = time.perf_counter()
                with pytest.raises((OSError, ProtocolError, ServiceError)):
                    client.ping()
                elapsed = time.perf_counter() - start
            assert client.transport_retries == 2
            assert client.backoff_slept_s >= 0.5 * (0.05 + 0.10)
            assert elapsed >= client.backoff_slept_s
        finally:
            process.terminate()


class _StubLink:
    """BackendLink stand-in: scripted per-call outcomes (a response
    dict to return, or an exception to raise)."""

    def __init__(self, outcomes=()):
        self.outcomes = list(outcomes)
        self.calls = 0

    async def _next(self):
        self.calls += 1
        out = self.outcomes.pop(0)
        if isinstance(out, Exception):
            raise out
        return out

    async def solve(self, shard, k, instance, deadline_ms, moves_only=False):
        return await self._next()

    async def call(self, message):
        return await self._next()


def _stub_router(**config_kwargs) -> ClusterRouter:
    """An unstarted router over two fake backends; tests inject
    :class:`_StubLink` objects and drive the routing coroutines
    directly."""
    config = RouterConfig(
        backends=(
            BackendSpec("backend-0", "127.0.0.1", 1),
            BackendSpec("backend-1", "127.0.0.1", 2),
        ),
        replicate=False,
        **config_kwargs,
    )
    return ClusterRouter(config)


class TestTransportOnlyFailover:
    """Regression: failover fires on *transport* failures only.  A
    well-formed error response from a live backend (bad request,
    unknown shard, ...) must return to the client as-is — treating it
    as death signal once turned every malformed request into a
    cluster-shrinking event."""

    def test_error_response_does_not_mark_backend_dead(self):
        router = _stub_router()
        owner = router.ring.owner("s")
        bad = {"ok": False, "error": "bad request", "message": "nope"}
        for node in router.ring.nodes:
            router._links[node] = _StubLink()
        router._links[owner] = _StubLink([bad])
        response = asyncio.run(
            router._route_solve("s", 2, _instance(), None, False)
        )
        assert response == bad
        assert router._dead == set()
        assert router.metrics.counters.get("router.backend_deaths", 0) == 0
        assert router._links[owner].calls == 1

    def test_connection_closed_still_fails_over(self):
        """``ConnectionClosed`` is a ConnectionError: a severed link is
        transport signal and must still replay on the survivor."""
        router = _stub_router()
        owner = router.ring.owner("s")
        other = next(n for n in router.ring.nodes if n != owner)
        ok = {"ok": True, "fingerprint": "ab"}
        router._links[owner] = _StubLink(
            [ConnectionClosed("server closed the connection")]
        )
        router._links[other] = _StubLink([ok])
        response = asyncio.run(
            router._route_solve("s", 2, _instance(), None, False)
        )
        assert response == ok
        assert router._dead == {owner}
        assert router.metrics.counters["router.failover_replays"] == 1


class TestTipRaces:
    """Two deltas racing on one shard: the loser's frame is neither
    committed nor replicated, and the race is counted."""

    def test_interleaved_deltas_count_tip_race(self):
        router = _stub_router()
        shard = "race"
        owner = router.ring.owner(shard)

        class _RacingLink(_StubLink):
            def __init__(self):
                super().__init__()
                self.first_blocked = asyncio.Event()
                self.release_first = asyncio.Event()

            async def call(self, message):
                self.calls += 1
                if self.calls == 1:
                    self.first_blocked.set()
                    await self.release_first.wait()
                return {
                    "ok": True, "fingerprint": "ignored",
                    "moves_idx": [], "moves_to": [],
                }

        link = _RacingLink()
        for node in router.ring.nodes:
            router._links[node] = link if node == owner else _StubLink()

        async def scenario():
            res = ResidentShard(_instance(seed=3, n=32))
            router._residents[shard] = res
            base = res.fp_hex

            def delta(site: int, size: float) -> dict:
                return {
                    "base": base,
                    "idx": np.array([site], dtype=np.int64),
                    "sizes": np.array([size]),
                    "costs": np.array([1.0]),
                    "initial": np.array([0], dtype=np.int64),
                }

            d1, d2 = delta(1, 5.0), delta(2, 7.0)
            m1 = {"op": "rebalance", "shard": shard, "k": 2, "delta": d1}
            m2 = {"op": "rebalance", "shard": shard, "k": 2, "delta": d2}
            t1 = asyncio.create_task(
                router._op_rebalance_delta(shard, 2, m1, res, d1)
            )
            await link.first_blocked.wait()
            # The second delta lands while the first is in flight and
            # commits the tip first.
            r2 = await router._op_rebalance_delta(shard, 2, m2, res, d2)
            link.release_first.set()
            r1 = await t1
            return r1, r2, res

        r1, r2, res = asyncio.run(scenario())
        assert r1["ok"] and r2["ok"]
        # The winner advanced the tip; the loser's fingerprint names a
        # state the resident never held.
        assert res.fp_hex == r2["fingerprint"]
        assert r1["fingerprint"] != res.fp_hex
        assert router.metrics.counters["router.tip_races"] == 1
        assert router.metrics.counters["router.resident_deltas"] == 2


class TestRelayGate:
    """The relay capacity gate: ``relay_concurrency`` permits, a
    bounded waiter queue, and the delay held *under* the permit."""

    def test_admission_and_queue_bound(self):
        router = _stub_router(relay_concurrency=1, relay_queue=0)

        async def scenario():
            assert await router._relay_admit()
            # Permit held, queue 0: the next arrival is rejected.
            assert not await router._relay_admit()
            await router._relay_release()
            assert await router._relay_admit()
            await router._relay_release()

        asyncio.run(scenario())
        assert router.metrics.counters["router.relay_rejections"] == 1

    def test_unbounded_without_concurrency(self):
        router = _stub_router()

        async def scenario():
            for _ in range(32):
                assert await router._relay_admit()

        asyncio.run(scenario())
        assert "router.relay_rejections" not in router.metrics.counters

    def test_rejection_names_retry_after(self):
        router = _stub_router(relay_concurrency=1, relay_delay_s=0.05)
        response = router._relay_rejection()
        assert not response["ok"] and response["error"] == "overloaded"
        assert response["retry_after_ms"] >= 50.0
