"""Shared-memory snapshot plane: server-level behavior.

The plane is a pure transport optimization — every test here pins the
decision stream against the from-scratch solver while checking the
plane's observable mechanics: write-once publication, O(1) solve
requests, and the three fallbacks (disabled, oversize, stale) that
degrade to the inline codec path instead of failing requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import m_partition_rebalance, make_instance
from repro.service import ServerConfig, ServiceClient, start_background


def _instance(seed: int = 0, n: int = 30, m: int = 4):
    rng = np.random.default_rng(seed)
    return make_instance(
        sizes=rng.uniform(1.0, 9.0, n),
        initial=rng.integers(0, m, n),
        num_processors=m,
    )


def _same_decision(result, scratch):
    assert np.array_equal(
        result.assignment.mapping, scratch.assignment.mapping
    )
    assert result.guessed_opt == scratch.guessed_opt
    assert result.planned_moves == scratch.planned_moves


@pytest.fixture(scope="class")
def shm_server():
    """One process-executor server with the shm plane on (the default)."""
    config = ServerConfig(executor="process", process_workers=2)
    with start_background(config) as handle:
        yield handle


class TestShmPlane:
    def test_decisions_match_scratch_and_plane_engages(self, shm_server):
        insts = [_instance(seed=s, n=60) for s in (1, 2, 3)]
        with ServiceClient(shm_server.host, shm_server.port) as client:
            for i, inst in enumerate(insts):
                result = client.rebalance(inst, 3, shard=f"plane-{i}")
                _same_decision(result, m_partition_rebalance(inst, 3))
            status = client.status()
        shm = status["shm"]
        assert shm is not None
        assert shm["slots"] == 128
        assert shm["assigned"] >= 3
        assert status["metrics"]["counters"]["service.shm_writes"] >= 3

    def test_solve_request_bytes_independent_of_n(self, shm_server):
        """The tentpole property: a solve crossing the worker pipe is a
        slot reference, so its size must not scale with the snapshot.
        The inline sizes array alone would be ``8n`` bytes; the whole
        request must come in far under that."""
        big = _instance(seed=10, n=4000)
        with ServiceClient(shm_server.host, shm_server.port) as client:
            before = client.status()["metrics"]["counters"][
                "service.ipc_bytes_out"
            ]
            result = client.rebalance(big, 3, shard="bytes")
            after = client.status()["metrics"]["counters"][
                "service.ipc_bytes_out"
            ]
        _same_decision(result, m_partition_rebalance(big, 3))
        assert after - before < 8 * big.num_jobs

    def test_repeated_snapshot_written_once(self, shm_server):
        inst = _instance(seed=11, n=50)
        with ServiceClient(shm_server.host, shm_server.port) as client:
            counters = client.status()["metrics"]["counters"]
            before = counters.get("service.shm_writes", 0)
            client.rebalance(inst, 2, shard="once-a")
            client.rebalance(inst, 2, shard="once-b")
            client.rebalance(inst, 2, shard="once-a")
            counters = client.status()["metrics"]["counters"]
        # Three requests, one fingerprint: one ring write.
        assert counters["service.shm_writes"] == before + 1

    def test_status_reports_plane_accounting(self, shm_server):
        with ServiceClient(shm_server.host, shm_server.port) as client:
            client.rebalance(_instance(seed=12, n=40), 2, shard="acct")
            shm = client.status()["shm"]
        assert shm["assigned"] >= 1
        assert shm["held"] >= 1           # the delta-base LRU hold
        assert shm["pinned"] == 0         # nothing in flight now
        assert shm["worker_retained"] >= 1  # the warm engine's borrow


class TestShmFallbacks:
    def test_disabled_plane_serves_inline(self):
        config = ServerConfig(
            executor="process", process_workers=2, shm=False
        )
        inst = _instance(seed=13, n=50)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                result = client.rebalance(inst, 3)
                status = client.status()
        _same_decision(result, m_partition_rebalance(inst, 3))
        assert status["shm"] is None
        assert "service.shm_writes" not in status["metrics"]["counters"]

    def test_oversize_snapshot_falls_back_inline(self):
        # 10 jobs per slot: the 50-job snapshot cannot be published.
        config = ServerConfig(
            executor="process", process_workers=1,
            shm_slots=4, shm_slot_bytes=16 + 24 * 10,
        )
        inst = _instance(seed=14, n=50)
        small = _instance(seed=15, n=8)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                result = client.rebalance(inst, 3, shard="big")
                fits = client.rebalance(small, 2, shard="small")
                counters = client.status()["metrics"]["counters"]
        _same_decision(result, m_partition_rebalance(inst, 3))
        _same_decision(fits, m_partition_rebalance(small, 2))
        assert counters["service.shm_oversize"] >= 1
        assert counters["service.shm_writes"] >= 1  # the small one

    def test_ring_exhaustion_falls_back_inline(self):
        """One slot, two live snapshots: the second cannot recycle the
        first (it is held by the base LRU and retained by a worker
        engine) and must travel inline — correctly."""
        config = ServerConfig(
            executor="process", process_workers=1, shm_slots=1
        )
        first = _instance(seed=16, n=40)
        second = _instance(seed=17, n=40)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                got_first = client.rebalance(first, 2, shard="full")
                got_second = client.rebalance(second, 2, shard="full")
                counters = client.status()["metrics"]["counters"]
        _same_decision(got_first, m_partition_rebalance(first, 2))
        _same_decision(got_second, m_partition_rebalance(second, 2))
        assert counters["service.shm_full"] >= 1

    def test_stale_segment_retries_inline(self):
        """White box: desynchronize the plane's generation bookkeeping
        from the ring header, so the worker's read fails validation and
        the server re-sends that solve with inline arrays."""
        from repro.core.engine import snapshot_fingerprint

        config = ServerConfig(executor="process", process_workers=1)
        inst = _instance(seed=18, n=40)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.rebalance(inst, 2, shard="stale-a")
                plane = handle.server._plane
                slot = plane._slot_of[snapshot_fingerprint(inst).hex()]
                plane._generations[slot] += 1  # ring header now stale
                # A different shard forces a cold engine: no decision-
                # cache shortcut, the worker must read the ring.
                result = client.rebalance(inst, 2, shard="stale-b")
                counters = client.status()["metrics"]["counters"]
        _same_decision(result, m_partition_rebalance(inst, 2))
        assert counters["service.shm_stale"] >= 1

    def test_reset_releases_base_holds(self):
        config = ServerConfig(executor="process", process_workers=1)
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.rebalance(_instance(seed=19, n=40), 2, shard="rel")
                held_before = client.status()["shm"]["held"]
                client.reset()
                held_after = client.status()["shm"]["held"]
        assert held_before >= 1
        assert held_after == 0
