"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core import Instance


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)


@st.composite
def small_instances(
    draw,
    max_jobs: int = 8,
    max_processors: int = 4,
    max_size: int = 20,
    unit_costs: bool = True,
):
    """Hypothesis strategy: small integer-size rebalancing instances.

    Small enough for the exact branch-and-bound solver to finish fast,
    rich enough to cover ties, empty processors and extreme skews.
    """
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    m = draw(st.integers(min_value=1, max_value=max_processors))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=max_size),
            min_size=n, max_size=n,
        )
    )
    initial = draw(
        st.lists(st.integers(min_value=0, max_value=m - 1), min_size=n, max_size=n)
    )
    if unit_costs:
        costs = [1.0] * n
    else:
        costs = draw(
            st.lists(
                st.integers(min_value=0, max_value=10),
                min_size=n, max_size=n,
            )
        )
    return Instance(
        sizes=np.array(sizes, dtype=float),
        costs=np.array(costs, dtype=float),
        num_processors=m,
        initial=np.array(initial),
    )


@st.composite
def instances_with_k(draw, **kwargs):
    """An instance paired with a valid move budget ``k``."""
    instance = draw(small_instances(**kwargs))
    k = draw(st.integers(min_value=0, max_value=instance.num_jobs))
    return instance, k
