"""Tests for workload generators and the paper's tightness families."""

import numpy as np
import pytest

from repro.core import exact_rebalance, greedy_rebalance, m_partition_rebalance
from repro.workloads import (
    COST_FAMILIES,
    PLACEMENTS,
    SIZE_FAMILIES,
    greedy_tight_instance,
    partition_tight_instance,
    planted_imbalance_instance,
    random_instance,
)


class TestRandomInstance:
    @pytest.mark.parametrize("family", SIZE_FAMILIES)
    def test_size_families_valid(self, family):
        rng = np.random.default_rng(0)
        inst = random_instance(20, 4, rng, size_family=family)
        assert inst.num_jobs == 20
        assert inst.sizes.min() > 0

    @pytest.mark.parametrize("family", COST_FAMILIES)
    def test_cost_families_valid(self, family):
        rng = np.random.default_rng(1)
        inst = random_instance(20, 4, rng, cost_family=family)
        assert inst.costs.min() >= 0

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_placements_valid(self, placement):
        rng = np.random.default_rng(2)
        inst = random_instance(20, 4, rng, placement=placement)
        assert 0 <= inst.initial.min() and inst.initial.max() < 4

    def test_packed_placement_everything_on_zero(self):
        rng = np.random.default_rng(3)
        inst = random_instance(10, 4, rng, placement="packed")
        assert set(inst.initial.tolist()) == {0}

    def test_integer_sizes(self):
        rng = np.random.default_rng(4)
        inst = random_instance(10, 2, rng, integer_sizes=True)
        assert np.all(inst.sizes == np.round(inst.sizes))

    def test_reproducible(self):
        a = random_instance(10, 3, np.random.default_rng(7))
        b = random_instance(10, 3, np.random.default_rng(7))
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.initial, b.initial)

    def test_unknown_family_raises(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            random_instance(5, 2, rng, size_family="nope")
        with pytest.raises(ValueError):
            random_instance(5, 2, rng, cost_family="nope")
        with pytest.raises(ValueError):
            random_instance(5, 2, rng, placement="nope")


class TestGreedyTightFamily:
    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    def test_structure(self, m):
        inst, k, opt = greedy_tight_instance(m)
        assert inst.num_jobs == 1 + m * (m - 1)
        assert k == m - 1
        assert opt == float(m)
        assert inst.initial_makespan == 2 * m - 1

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_opt_verified_exactly(self, m):
        inst, k, opt = greedy_tight_instance(m)
        assert exact_rebalance(inst, k=k).makespan == pytest.approx(opt)

    @pytest.mark.parametrize("m", [2, 3, 4, 6, 10])
    def test_greedy_achieves_worst_case(self, m):
        inst, k, opt = greedy_tight_instance(m)
        res = greedy_rebalance(inst, k, insert_order="ascending")
        assert res.makespan == pytest.approx((2 - 1 / m) * opt)

    def test_rejects_small_m(self):
        with pytest.raises(ValueError):
            greedy_tight_instance(1)


class TestPartitionTightFamily:
    def test_structure_and_opt(self):
        inst, k, opt = partition_tight_instance()
        assert k == 1 and opt == 1.0
        assert exact_rebalance(inst, k=k).makespan == pytest.approx(1.0)

    def test_mpartition_hits_exactly_1_5(self):
        inst, k, opt = partition_tight_instance()
        res = m_partition_rebalance(inst, k)
        assert res.makespan == pytest.approx(1.5)
        assert res.num_moves == 0


class TestPlantedImbalance:
    def test_planted_opt_reachable(self):
        rng = np.random.default_rng(8)
        inst, k, opt = planted_imbalance_instance(3, 4, 5, rng)
        assert exact_rebalance(inst, k=k).makespan == pytest.approx(opt)

    def test_opt_is_average_load(self):
        rng = np.random.default_rng(9)
        inst, k, opt = planted_imbalance_instance(4, 3, 4, rng)
        assert opt == pytest.approx(inst.average_load)

    def test_displacement_bound(self):
        rng = np.random.default_rng(10)
        with pytest.raises(ValueError):
            planted_imbalance_instance(2, 3, 100, rng)

    def test_greedy_recovers_planted_optimum_shape(self):
        """With enough budget, algorithms approach the planted optimum."""
        rng = np.random.default_rng(11)
        inst, k, opt = planted_imbalance_instance(3, 5, 6, rng)
        res = greedy_rebalance(inst, k)
        assert res.makespan <= 2.0 * opt + 1e-9
        res_mp = m_partition_rebalance(inst, k)
        assert res_mp.makespan <= 1.5 * opt + 1e-9
