"""Tests for the arbitrary-cost PARTITION variant (Section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cost_partition_rebalance,
    evaluate_cost_guess,
    exact_rebalance,
    make_instance,
)

from ..conftest import small_instances


@st.composite
def weighted_cases(draw):
    inst = draw(small_instances(max_jobs=7, max_processors=3, unit_costs=False))
    total = float(inst.costs.sum())
    budget = draw(st.floats(min_value=0.0, max_value=max(total, 1.0)))
    return inst, budget


class TestEvaluateCostGuess:
    def test_zero_plan_when_balanced(self):
        inst = make_instance(
            sizes=[5, 5], initial=[0, 1], num_processors=2, costs=[3, 4]
        )
        plan = evaluate_cost_guess(inst, 10.0)
        assert plan.feasible
        assert plan.planned_cost == 0.0

    def test_infeasible_when_too_many_large(self):
        inst = make_instance(
            sizes=[6, 6, 6], initial=[0, 0, 0], num_processors=2, costs=[1, 1, 1]
        )
        plan = evaluate_cost_guess(inst, 10.0)
        assert not plan.feasible

    def test_keeps_most_costly_large(self):
        # Two large jobs on one processor; the cheap one must be planned out.
        inst = make_instance(
            sizes=[6, 6], initial=[0, 0], num_processors=2, costs=[1, 100]
        )
        plan = evaluate_cost_guess(inst, 10.0)
        assert plan.feasible
        # Selected processor's a-plan removes the cost-1 job only.
        assert plan.planned_cost == pytest.approx(1.0)


class TestCostPartition:
    def test_zero_budget_is_identity(self):
        inst = make_instance(
            sizes=[9, 1], initial=[0, 0], num_processors=2, costs=[5, 5]
        )
        res = cost_partition_rebalance(inst, 0.0)
        assert res.relocation_cost == 0.0
        assert res.makespan == inst.initial_makespan

    def test_rejects_negative_budget(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            cost_partition_rebalance(inst, -1.0)

    def test_rejects_bad_alpha(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            cost_partition_rebalance(inst, 1.0, alpha=0.0)

    def test_empty_instance(self):
        inst = make_instance(sizes=[], initial=[], num_processors=2)
        res = cost_partition_rebalance(inst, 1.0)
        assert res.makespan == 0.0

    def test_cheap_jobs_move_first(self):
        # Balancing needs one move; only the cheap job is affordable.
        inst = make_instance(
            sizes=[5, 5, 10], initial=[0, 0, 1], num_processors=3,
            costs=[1, 100, 100],
        )
        res = cost_partition_rebalance(inst, 2.0)
        assert res.relocation_cost <= 2.0

    @settings(max_examples=50, deadline=None)
    @given(weighted_cases())
    def test_budget_respected(self, case):
        inst, budget = case
        res = cost_partition_rebalance(inst, budget)
        assert res.relocation_cost <= budget + 1e-6 * max(1.0, budget)

    @settings(max_examples=40, deadline=None)
    @given(weighted_cases())
    def test_approximation_vs_exact(self, case):
        """Makespan <= 1.5 (1 + alpha) OPT(B) with exact knapsacks."""
        inst, budget = case
        alpha = 0.05
        opt = exact_rebalance(inst, budget=budget).makespan
        res = cost_partition_rebalance(
            inst, budget, alpha=alpha, knapsack_method="exact"
        )
        assert res.makespan <= 1.5 * (1.0 + alpha) * opt + 1e-9, (
            f"{res.makespan} vs opt {opt} on {inst.to_dict()} B={budget}"
        )

    @settings(max_examples=20, deadline=None)
    @given(weighted_cases())
    def test_fptas_knapsack_still_feasible(self, case):
        inst, budget = case
        res = cost_partition_rebalance(
            inst, budget, knapsack_method="fptas", knapsack_eps=0.2
        )
        assert res.relocation_cost <= budget + 1e-6 * max(1.0, budget)

    def test_unit_costs_match_move_budget_semantics(self):
        """On unit costs a budget of k is a move budget of k."""
        inst = make_instance(
            sizes=[7, 3, 3, 3], initial=[0, 0, 0, 1], num_processors=2
        )
        res = cost_partition_rebalance(inst, 1.0)
        assert res.num_moves <= 1

    def test_meta_records_search(self):
        inst = make_instance(
            sizes=[7, 3, 3, 3], initial=[0, 0, 0, 1], num_processors=2
        )
        res = cost_partition_rebalance(inst, 2.0)
        assert res.meta["guesses_tried"] >= 1
        assert res.guessed_opt is not None
