"""Tests for the warm-start rebalancing engine.

The engine's contract is *transparent acceleration*: every decision must
be byte-identical to a from-scratch ``m_partition_rebalance`` call on
the same snapshot, no matter what the caches contain.  The differential
tests here drive randomized multi-epoch streams through both paths; the
unit tests pin down the bucket-patch and fingerprint-cache machinery.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RebalanceEngine,
    build_tables,
    candidate_guesses,
    evaluate_guess,
    m_partition_rebalance,
    make_instance,
    patch_tables,
    scan_start,
)
from repro.core.engine import _FlatTables

from ..conftest import instances_with_k, small_instances


def assert_tables_equal(actual, expected):
    """Structural equality of two ThresholdTables."""
    assert len(actual.processors) == len(expected.processors)
    for pa, pe in zip(actual.processors, expected.processors):
        assert np.array_equal(pa.jobs_asc, pe.jobs_asc)
        assert np.array_equal(pa.sizes_asc, pe.sizes_asc)
        assert np.array_equal(pa.prefix, pe.prefix)
    assert np.array_equal(actual.sizes_asc, expected.sizes_asc)


def assert_same_decision(a, b):
    assert a.guessed_opt == b.guessed_opt
    assert a.planned_moves == b.planned_moves
    assert np.array_equal(a.assignment.mapping, b.assignment.mapping)


class TestScanStart:
    """Regression for the threshold-scan start index guard: the start
    must always land on a real threshold, clamped at both ends."""

    def test_average_inside_range(self):
        candidates = np.array([1.0, 2.0, 4.0, 8.0])
        assert scan_start(candidates, 3.0) == 1
        assert scan_start(candidates, 4.0) == 2  # exact hit

    def test_average_below_every_candidate(self):
        candidates = np.array([1.0, 2.0, 4.0])
        assert scan_start(candidates, 0.5) == 0

    def test_average_above_every_candidate_clamped(self):
        # Reachable only through float round-off, but the scan must
        # start at the last real threshold, not index past the end.
        candidates = np.array([1.0, 2.0, 4.0])
        assert scan_start(candidates, 100.0) == 2
        assert scan_start(candidates, 4.0 + 1e-12) == 2

    def test_empty_candidates(self):
        assert scan_start(np.empty(0), 1.0) == 0

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_rescan_and_incremental_share_the_start(self, case):
        """Both scanners consume the same helper, so instances whose
        average load sits at a threshold boundary cannot diverge."""
        from repro.core import m_partition_rebalance_incremental

        inst, k = case
        assert_same_decision(
            m_partition_rebalance(inst, k),
            m_partition_rebalance_incremental(inst, k),
        )


class TestPatchTables:
    def base_instance(self):
        return make_instance(
            sizes=[5.0, 3.0, 8.0, 1.0, 2.0, 7.0],
            initial=[0, 0, 1, 1, 2, 2],
            num_processors=3,
        )

    def test_job_grows(self):
        inst = self.base_instance()
        tables = build_tables(inst)
        sizes = inst.sizes.copy()
        sizes[1] = 9.0  # grows past its bucket neighbours
        new = make_instance(sizes=sizes, initial=inst.initial, num_processors=3)
        patched, count = patch_tables(tables, new)
        assert count == 1  # only processor 0 changed
        assert_tables_equal(patched, build_tables(new))

    def test_job_shrinks(self):
        inst = self.base_instance()
        tables = build_tables(inst)
        sizes = inst.sizes.copy()
        sizes[2] = 0.5
        new = make_instance(sizes=sizes, initial=inst.initial, num_processors=3)
        patched, count = patch_tables(tables, new)
        assert count == 1  # only processor 1 changed
        assert_tables_equal(patched, build_tables(new))

    def test_job_migrates_between_processors(self):
        inst = self.base_instance()
        tables = build_tables(inst)
        initial = np.array(inst.initial)
        initial[0] = 2  # leaves processor 0, joins processor 2
        new = make_instance(sizes=inst.sizes, initial=initial, num_processors=3)
        patched, count = patch_tables(tables, new)
        assert count == 2  # both endpoints of the migration
        assert_tables_equal(patched, build_tables(new))

    def test_bucket_emptied(self):
        inst = make_instance(sizes=[4.0, 2.0], initial=[0, 1], num_processors=2)
        tables = build_tables(inst)
        new = make_instance(sizes=[4.0, 2.0], initial=[0, 0], num_processors=2)
        patched, count = patch_tables(tables, new)
        assert count == 2
        assert patched.processors[1].num_jobs == 0
        assert_tables_equal(patched, build_tables(new))

    def test_unchanged_instance_is_free(self):
        inst = self.base_instance()
        tables = build_tables(inst)
        patched, count = patch_tables(tables, inst)
        assert count == 0
        assert patched is tables

    def test_shape_change_falls_back_to_full_build(self):
        inst = self.base_instance()
        tables = build_tables(inst)
        new = make_instance(
            sizes=[1.0, 2.0], initial=[0, 1], num_processors=3
        )
        patched, count = patch_tables(tables, new)
        assert count == -1
        assert_tables_equal(patched, build_tables(new))

    @settings(max_examples=60, deadline=None)
    @given(small_instances(max_jobs=10, max_processors=4), st.data())
    def test_random_perturbations_match_full_build(self, inst, data):
        tables = build_tables(inst)
        n = inst.num_jobs
        sizes = inst.sizes.copy()
        initial = np.array(inst.initial)
        touched = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1, max_size=n, unique=True,
            )
        )
        for j in touched:
            if data.draw(st.booleans()):
                sizes[j] = data.draw(
                    st.integers(min_value=1, max_value=30)
                )
            else:
                initial[j] = data.draw(
                    st.integers(min_value=0, max_value=inst.num_processors - 1)
                )
        new = make_instance(
            sizes=sizes, initial=initial, num_processors=inst.num_processors
        )
        patched, count = patch_tables(tables, new)
        assert count >= 0
        assert_tables_equal(patched, build_tables(new))


class TestVectorizedEvaluation:
    @settings(max_examples=60, deadline=None)
    @given(small_instances(max_jobs=10, max_processors=5))
    def test_matches_scalar_on_every_candidate(self, inst):
        tables = build_tables(inst)
        flat = _FlatTables(tables)
        for guess in candidate_guesses(tables):
            scalar = evaluate_guess(tables, float(guess))
            vector = flat.evaluate(float(guess))
            assert vector.feasible == scalar.feasible
            assert vector.total_large == scalar.total_large
            assert vector.large_processors == scalar.large_processors
            assert np.array_equal(vector.a_values, scalar.a_values)
            assert np.array_equal(vector.b_values, scalar.b_values)
            assert vector.planned_moves == scalar.planned_moves
            assert np.array_equal(vector.selected, scalar.selected)


class TestRebalanceEngine:
    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            RebalanceEngine(k=-1)

    def test_empty_instance(self):
        engine = RebalanceEngine(k=2)
        inst = make_instance(sizes=[], initial=[], num_processors=3)
        result = engine.rebalance(inst)
        assert result.makespan == 0.0
        assert result.planned_moves == 0

    def test_single_decision_matches_scratch(self):
        inst = make_instance(
            sizes=[8, 7, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        assert_same_decision(
            m_partition_rebalance(inst, 2), RebalanceEngine(k=2).rebalance(inst)
        )

    def test_fingerprint_cache_hit(self):
        inst = make_instance(
            sizes=[5, 4, 3, 2], initial=[0, 0, 1, 1], num_processors=2
        )
        engine = RebalanceEngine(k=1)
        first = engine.rebalance(inst)
        again = engine.rebalance(
            make_instance(sizes=[5, 4, 3, 2], initial=[0, 0, 1, 1],
                          num_processors=2)
        )
        assert engine.stats.cache_hits == 1
        assert again is first  # the cached decision object itself

    def test_cost_change_invalidates_fingerprint(self):
        # Costs don't influence m-partition, but a "byte-identical
        # snapshot" promise must cover the whole instance.
        sizes, initial = [5.0, 4.0, 3.0], [0, 0, 1]
        engine = RebalanceEngine(k=1)
        engine.rebalance(make_instance(sizes=sizes, initial=initial,
                                       num_processors=2))
        engine.rebalance(make_instance(sizes=sizes, initial=initial,
                                       num_processors=2, costs=[2.0, 1.0, 1.0]))
        assert engine.stats.cache_hits == 0

    def test_cache_eviction(self):
        engine = RebalanceEngine(k=1, cache_size=2)
        insts = [
            make_instance(sizes=[float(s)], initial=[0], num_processors=2)
            for s in (1, 2, 3)
        ]
        for inst in insts:
            engine.rebalance(inst)
        engine.rebalance(insts[0])  # evicted: recomputed, no hit
        assert engine.stats.cache_hits == 0
        engine.rebalance(insts[2])  # still resident
        assert engine.stats.cache_hits == 1

    def test_reset_drops_state(self):
        engine = RebalanceEngine(k=1)
        inst = make_instance(sizes=[3.0, 1.0], initial=[0, 1], num_processors=2)
        engine.rebalance(inst)
        engine.reset()
        assert engine.stats.decisions == 0
        engine.rebalance(inst)
        assert engine.stats.cache_hits == 0
        assert engine.stats.full_builds == 1

    def test_shape_change_triggers_full_rebuild(self):
        engine = RebalanceEngine(k=1)
        engine.rebalance(
            make_instance(sizes=[3.0, 1.0], initial=[0, 1], num_processors=2)
        )
        engine.rebalance(
            make_instance(sizes=[3.0, 1.0, 2.0], initial=[0, 1, 0],
                          num_processors=2)
        )
        assert engine.stats.full_builds == 2
        assert engine.stats.tables_reused == 0

    def test_counters_flow_to_telemetry(self):
        from repro import telemetry

        inst = make_instance(
            sizes=[5.0, 4.0, 3.0, 2.0], initial=[0, 0, 1, 1], num_processors=2
        )
        engine = RebalanceEngine(k=1)
        with telemetry.collect() as collector:
            engine.rebalance(inst)
            engine.rebalance(inst)  # cache hit
            sizes = inst.sizes.copy()
            sizes[0] = 6.0
            engine.rebalance(
                make_instance(sizes=sizes, initial=inst.initial,
                              num_processors=2)
            )
        counters = collector.as_dict()["counters"]
        assert counters["full_builds"] == 1
        assert counters["cache_hits"] == 1
        assert counters["tables_reused"] == 1
        assert counters["buckets_patched"] == 1
        assert counters["thresholds_tried"] >= 2

    def test_decision_meta_carries_engine_stats(self):
        engine = RebalanceEngine(k=1)
        inst = make_instance(sizes=[3.0, 1.0], initial=[0, 1], num_processors=2)
        result = engine.rebalance(inst)
        assert result.meta["engine"]["decisions"] == 1
        assert result.meta["engine"]["full_builds"] == 1

    @settings(max_examples=60, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_differential_single_shot(self, case):
        inst, k = case
        assert_same_decision(
            m_partition_rebalance(inst, k), RebalanceEngine(k=k).rebalance(inst)
        )

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=10, max_processors=4), st.data())
    def test_differential_epoch_stream(self, case, data):
        """A warm engine must keep matching from-scratch decisions over
        an evolving stream: sizes drift, jobs migrate, and the cluster
        adopts each decision before the next epoch."""
        inst, k = case
        engine = RebalanceEngine(k=k)
        sizes = inst.sizes.copy()
        initial = np.array(inst.initial)
        for _ in range(data.draw(st.integers(min_value=2, max_value=5))):
            snapshot = make_instance(
                sizes=sizes, initial=initial,
                num_processors=inst.num_processors,
            )
            assert_same_decision(
                m_partition_rebalance(snapshot, k), engine.rebalance(snapshot)
            )
            initial = np.array(engine.rebalance(snapshot).assignment.mapping)
            for j in data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=inst.num_jobs - 1),
                    max_size=inst.num_jobs, unique=True,
                )
            ):
                sizes[j] = data.draw(st.integers(min_value=1, max_value=30))

    def test_differential_random_walk_stream(self):
        """Denser seeded stream: 40 epochs, partial drift, occasional
        exact repeats to exercise the decision cache mid-stream."""
        rng = np.random.default_rng(7)
        n, m, k = 150, 6, 4
        sizes = rng.uniform(0.5, 20.0, n)
        initial = rng.integers(0, m, n)
        engine = RebalanceEngine(k=k)
        previous = None
        for epoch in range(40):
            if previous is not None and epoch % 7 == 3:
                inst = previous  # byte-identical snapshot
            else:
                sizes = sizes.copy()
                idx = rng.choice(n, size=int(rng.integers(1, 25)), replace=False)
                sizes[idx] *= np.exp(0.15 * rng.standard_normal(idx.size))
                inst = make_instance(sizes=sizes, initial=initial,
                                     num_processors=m)
            scratch = m_partition_rebalance(inst, k)
            warm = engine.rebalance(inst)
            assert_same_decision(scratch, warm)
            initial = warm.assignment.mapping
            previous = inst
        assert engine.stats.cache_hits > 0
        assert engine.stats.tables_reused > 0
        assert engine.stats.full_builds == 1

    def test_reset_mid_stream_keeps_decisions_identical(self):
        """Differential through a reset: warm -> reset -> warm again,
        every decision byte-identical to from-scratch throughout."""
        rng = np.random.default_rng(17)
        n, m, k = 60, 4, 3
        sizes = rng.uniform(0.5, 20.0, n)
        initial = rng.integers(0, m, n)
        engine = RebalanceEngine(k=k)
        for epoch in range(12):
            if epoch == 6:
                engine.reset()
                assert engine.stats.decisions == 0
            inst = make_instance(sizes=sizes, initial=initial,
                                 num_processors=m)
            warm = engine.rebalance(inst)
            assert_same_decision(m_partition_rebalance(inst, k), warm)
            initial = warm.assignment.mapping
            sizes = sizes.copy()
            idx = rng.choice(n, size=8, replace=False)
            sizes[idx] *= np.exp(0.1 * rng.standard_normal(idx.size))
        # the post-reset half really did rebuild from scratch
        assert engine.stats.full_builds == 1

    def test_interleaved_engines_match_isolated_streams(self):
        """Two engines fed interleaved, independent streams (the
        service's shard layout) decide exactly as two engines fed the
        same streams in isolation."""
        rng = np.random.default_rng(23)
        n, m, k = 50, 4, 2

        def stream(seed, epochs=10):
            srng = np.random.default_rng(seed)
            sizes = srng.uniform(0.5, 20.0, n)
            initial = srng.integers(0, m, n)
            snapshots = []
            for _ in range(epochs):
                snapshots.append((sizes.copy(), initial.copy()))
                idx = srng.choice(n, size=6, replace=False)
                sizes = sizes.copy()
                sizes[idx] *= np.exp(0.1 * srng.standard_normal(idx.size))
                initial = srng.integers(0, m, n)
            return snapshots

        streams = {"a": stream(1), "b": stream(2)}
        isolated = {}
        for name, snaps in streams.items():
            engine = RebalanceEngine(k=k)
            isolated[name] = [
                engine.rebalance(make_instance(
                    sizes=s, initial=i, num_processors=m
                )) for s, i in snaps
            ]
        shards = {name: RebalanceEngine(k=k) for name in streams}
        interleaved = {name: [] for name in streams}
        order = list(rng.permutation(
            [name for name in streams for _ in streams[name]]
        ))
        cursor = {name: 0 for name in streams}
        for name in order:
            s, i = streams[name][cursor[name]]
            cursor[name] += 1
            interleaved[name].append(shards[name].rebalance(make_instance(
                sizes=s, initial=i, num_processors=m
            )))
        for name in streams:
            for a, b in zip(isolated[name], interleaved[name]):
                assert_same_decision(a, b)

    def test_prebuilt_tables_accepted_by_scanners(self):
        from repro.core import m_partition_rebalance_incremental

        inst = make_instance(
            sizes=[8, 7, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        tables = build_tables(inst)
        assert_same_decision(
            m_partition_rebalance(inst, 2),
            m_partition_rebalance(inst, 2, tables=tables),
        )
        assert_same_decision(
            m_partition_rebalance_incremental(inst, 2),
            m_partition_rebalance_incremental(inst, 2, tables=tables),
        )
