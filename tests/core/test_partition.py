"""Tests for PARTITION and M-PARTITION (Section 3, Theorems 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    build_tables,
    evaluate_guess,
    exact_rebalance,
    m_partition_rebalance,
    make_instance,
    partition_rebalance,
)
from repro.workloads import partition_tight_instance

from ..conftest import instances_with_k


class TestEvaluateGuess:
    def test_counts_on_simple_instance(self):
        # Processor 0: sizes 6 and 6 (both large at guess 10); processor 1: 2.
        inst = make_instance(sizes=[6, 6, 2], initial=[0, 0, 1], num_processors=2)
        ev = evaluate_guess(build_tables(inst), 10.0)
        assert ev.total_large == 2
        assert ev.large_processors == 1
        assert ev.extra_large == 1
        assert ev.feasible

    def test_infeasible_when_too_many_large(self):
        inst = make_instance(sizes=[6, 6, 6], initial=[0, 0, 0], num_processors=2)
        ev = evaluate_guess(build_tables(inst), 10.0)
        assert ev.total_large == 3 > inst.num_processors
        assert not ev.feasible

    def test_selection_prefers_large_processors(self):
        # Both processors have c_i = 0; the one with the large job must win.
        inst = make_instance(sizes=[6, 1], initial=[0, 1], num_processors=2)
        ev = evaluate_guess(build_tables(inst), 10.0)
        assert ev.total_large == 1
        assert ev.selected.tolist() == [0]

    def test_planned_moves_zero_on_balanced(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 1], num_processors=2)
        ev = evaluate_guess(build_tables(inst), 10.0)
        assert ev.planned_moves == 0


class TestPartitionKnownOpt:
    def test_tight_instance_exactly_1_5(self):
        """Theorem 2's tightness example: PARTITION moves nothing."""
        inst, k, opt = partition_tight_instance()
        res = partition_rebalance(inst, opt, k=k)
        assert res.makespan == pytest.approx(1.5 * opt)
        assert res.num_moves == 0

    def test_infeasible_guess_raises(self):
        inst = make_instance(sizes=[6, 6, 6], initial=[0, 0, 0], num_processors=2)
        with pytest.raises(ValueError, match="large jobs"):
            partition_rebalance(inst, 10.0)

    def test_budget_violation_raises(self):
        # Needs moves but k = 0 at an ambitious guess.
        inst = make_instance(sizes=[4, 4, 4], initial=[0, 0, 0], num_processors=3)
        with pytest.raises(ValueError, match="budget"):
            partition_rebalance(inst, 4.0, k=0)

    @settings(max_examples=60, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_theorem2_bound(self, case):
        """With OPT as the guess, makespan <= 1.5 OPT and the move plan
        never exceeds the optimum's moves (<= k)."""
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        res = partition_rebalance(inst, opt, k=k)
        assert res.makespan <= 1.5 * opt + 1e-9
        assert res.num_moves <= k
        assert res.num_moves <= res.planned_moves


class TestMPartition:
    def test_tight_instance(self):
        inst, k, opt = partition_tight_instance()
        res = m_partition_rebalance(inst, k)
        assert res.makespan <= 1.5 * opt + 1e-12

    def test_k_zero_identity(self):
        inst = make_instance(sizes=[9, 1], initial=[0, 0], num_processors=2)
        res = m_partition_rebalance(inst, 0)
        assert res.num_moves == 0
        assert res.makespan == inst.initial_makespan

    def test_empty_instance(self):
        inst = make_instance(sizes=[], initial=[], num_processors=2)
        res = m_partition_rebalance(inst, 3)
        assert res.makespan == 0.0

    def test_rejects_negative_k(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            m_partition_rebalance(inst, -1)

    def test_guess_never_exceeds_opt(self):
        inst = make_instance(
            sizes=[8, 7, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        k = 2
        opt = exact_rebalance(inst, k=k).makespan
        res = m_partition_rebalance(inst, k)
        assert res.guessed_opt <= opt + 1e-9  # Lemma 6

    @settings(max_examples=80, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_theorem3_bound(self, case):
        """The headline result: 1.5-approximation within the budget,
        without knowing OPT."""
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        res = m_partition_rebalance(inst, k)
        assert res.makespan <= 1.5 * opt + 1e-9, (
            f"{res.makespan} > 1.5 * {opt} on {inst.to_dict()} k={k}"
        )
        assert res.num_moves <= k

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_guess_at_most_opt(self, case):
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        res = m_partition_rebalance(inst, k)
        assert res.guessed_opt <= opt + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_moves_never_exceed_optimals(self, case):
        """Lemma 4: PARTITION's (planned) moves <= OPTIMAL's moves.

        Verified indirectly: the plan at the stopping guess fits k, and
        actual relocations never exceed the plan.
        """
        inst, k = case
        res = m_partition_rebalance(inst, k)
        assert res.num_moves <= res.planned_moves <= k

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_scale_invariance(self, case):
        inst, k = case
        a = m_partition_rebalance(inst, k)
        b = m_partition_rebalance(inst.scaled(8.0), k)
        assert b.makespan == pytest.approx(8.0 * a.makespan)

    def test_meta_fields(self):
        inst = make_instance(
            sizes=[8, 7, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        res = m_partition_rebalance(inst, 2)
        assert {"L_T", "m_L", "L_E", "thresholds_tried"} <= set(res.meta)
        assert res.meta["L_T"] >= res.meta["m_L"] >= 0
        assert res.meta["L_E"] == res.meta["L_T"] - res.meta["m_L"]


class TestMPartitionEdgeCases:
    """Edge cases of the threshold scan's starting point and extremes."""

    def test_average_load_below_smallest_threshold(self):
        """With many processors the average load undercuts every
        threshold; the scan must clamp its start to the first candidate
        instead of indexing at -1."""
        inst = make_instance(
            sizes=[4, 6], initial=[0, 0], num_processors=10
        )
        assert inst.average_load < 4.0  # below 2*min_size and all prefixes
        res = m_partition_rebalance(inst, 2)
        res.assignment.validate(max_moves=2)
        assert res.makespan == 6.0  # the two jobs end up separated

    def test_single_tiny_job_many_processors(self):
        inst = make_instance(sizes=[1], initial=[0], num_processors=8)
        res = m_partition_rebalance(inst, 1)
        assert res.makespan == 1.0
        assert res.num_moves == 0

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_k_zero_is_always_identity(self, case):
        inst, _ = case
        res = m_partition_rebalance(inst, 0)
        assert res.num_moves == 0
        assert res.planned_moves == 0
        assert res.makespan == inst.initial_makespan

    def test_processors_with_zero_jobs(self):
        """Empty processors must be valid Step-3/Step-6 targets."""
        inst = make_instance(
            sizes=[9, 8, 7, 1], initial=[0, 0, 0, 0], num_processors=4
        )
        res = m_partition_rebalance(inst, 3)
        res.assignment.validate(max_moves=3)
        opt = exact_rebalance(inst, k=3).makespan
        assert res.makespan <= 1.5 * opt + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=6, max_processors=4))
    def test_crowded_single_processor(self, case):
        """All jobs piled on processor 0 (maximal initial imbalance)."""
        inst, k = case
        crowded = make_instance(
            sizes=inst.sizes.tolist(),
            initial=[0] * inst.num_jobs,
            num_processors=inst.num_processors,
        )
        res = m_partition_rebalance(crowded, k)
        res.assignment.validate(max_moves=k)
        opt = exact_rebalance(crowded, k=k).makespan
        assert res.makespan <= 1.5 * opt + 1e-9


class TestHalfOptimalInvariants:
    """White-box checks of the Definition-3 structure at the stop guess."""

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_selected_small_loads_bounded(self, case):
        inst, k = case
        res = m_partition_rebalance(inst, k)
        guess = res.guessed_opt
        mapping = res.assignment.mapping
        # Every processor's final load splits into small jobs (<= guess/2
        # each) and at most ONE large job.
        for p in range(inst.num_processors):
            jobs = np.flatnonzero(mapping == p)
            larges = [j for j in jobs if inst.sizes[j] > guess / 2]
            assert len(larges) <= 1, (
                f"processor {p} ended with {len(larges)} large jobs "
                f"at guess {guess}"
            )
