"""Differential tests: incremental vs rescan M-PARTITION, and the
Fenwick order-statistic structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_instance, m_partition_rebalance
from repro.core.fenwick import ValueMultisetFenwick
from repro.core.partition_incremental import m_partition_rebalance_incremental

from ..conftest import instances_with_k


class TestFenwick:
    def test_basic_sum_smallest(self):
        f = ValueMultisetFenwick(-5, 5)
        for v in (3, -2, 0, 3, 1):
            f.add(v)
        assert f.sum_smallest(0) == 0
        assert f.sum_smallest(1) == -2
        assert f.sum_smallest(2) == -2
        assert f.sum_smallest(3) == -1
        assert f.sum_smallest(5) == 5
        assert len(f) == 5

    def test_remove(self):
        f = ValueMultisetFenwick(0, 10)
        f.add(4)
        f.add(7)
        f.remove(4)
        assert f.sum_smallest(1) == 7

    def test_domain_checks(self):
        f = ValueMultisetFenwick(0, 3)
        with pytest.raises(ValueError):
            f.add(9)
        with pytest.raises(ValueError):
            f.sum_smallest(1)  # empty
        with pytest.raises(ValueError):
            f.sum_smallest(-1)
        with pytest.raises(ValueError):
            ValueMultisetFenwick(3, 1)

    def test_over_remove(self):
        f = ValueMultisetFenwick(0, 3)
        f.add(1)
        f.remove(1)
        with pytest.raises(ValueError):
            f.remove(1)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=-20, max_value=20),
                 min_size=1, max_size=30),
        st.data(),
    )
    def test_matches_sorted_reference(self, values, data):
        f = ValueMultisetFenwick(-20, 20)
        for v in values:
            f.add(v)
        count = data.draw(st.integers(min_value=0, max_value=len(values)))
        assert f.sum_smallest(count) == sum(sorted(values)[:count])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=-10, max_value=10),
                 min_size=2, max_size=20)
    )
    def test_interleaved_add_remove(self, values):
        f = ValueMultisetFenwick(-10, 10)
        live: list[int] = []
        for i, v in enumerate(values):
            f.add(v)
            live.append(v)
            if i % 3 == 2:
                gone = live.pop(0)
                f.remove(gone)
            assert f.sum_smallest(len(live)) == sum(live)


class TestIncrementalEquivalence:
    def test_simple_instance(self):
        inst = make_instance(
            sizes=[8, 7, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        a = m_partition_rebalance(inst, 2)
        b = m_partition_rebalance_incremental(inst, 2)
        assert a.guessed_opt == b.guessed_opt
        assert a.makespan == b.makespan
        assert np.array_equal(a.assignment.mapping, b.assignment.mapping)

    def test_empty(self):
        inst = make_instance(sizes=[], initial=[], num_processors=3)
        assert m_partition_rebalance_incremental(inst, 2).makespan == 0.0

    def test_rejects_negative_k(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            m_partition_rebalance_incremental(inst, -1)

    @settings(max_examples=80, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_identical_results(self, case):
        """The incremental scan must stop at the same threshold and
        produce the identical assignment."""
        inst, k = case
        rescan = m_partition_rebalance(inst, k)
        incremental = m_partition_rebalance_incremental(inst, k)
        assert incremental.guessed_opt == pytest.approx(rescan.guessed_opt)
        assert incremental.planned_moves == rescan.planned_moves
        assert np.array_equal(
            incremental.assignment.mapping, rescan.assignment.mapping
        )

    @settings(max_examples=20, deadline=None)
    @given(instances_with_k(max_jobs=10, max_processors=5, max_size=50))
    def test_identical_on_larger_instances(self, case):
        inst, k = case
        rescan = m_partition_rebalance(inst, k)
        incremental = m_partition_rebalance_incremental(inst, k)
        assert incremental.makespan == rescan.makespan
        assert incremental.num_moves == rescan.num_moves
