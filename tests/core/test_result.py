"""Tests for the RebalanceResult record."""

from repro.core import Assignment, RebalanceResult, make_instance


def test_result_properties():
    inst = make_instance(
        sizes=[4, 2], initial=[0, 0], num_processors=2, costs=[3, 1]
    )
    assignment = Assignment(instance=inst, mapping=[0, 1])
    res = RebalanceResult(
        assignment=assignment,
        algorithm="test",
        guessed_opt=4.0,
        planned_moves=1,
        planned_cost=1.0,
    )
    assert res.makespan == 4.0
    assert res.num_moves == 1
    assert res.relocation_cost == 1.0
    summary = res.summary()
    assert summary["algorithm"] == "test"
    assert summary["guessed_opt"] == 4.0
    assert summary["makespan"] == 4.0


def test_summary_without_guess():
    inst = make_instance(sizes=[1.0], initial=[0])
    res = RebalanceResult(
        assignment=Assignment.initial(inst), algorithm="noop"
    )
    assert "guessed_opt" not in res.summary()
    assert res.meta == {}
