"""Cross-algorithm differential checks.

Independent implementations of the same problem bound each other: any
instance where one algorithm beats another's *guarantee* would expose a
bug in the loser, and shared invariants (budgets, conservation) must
hold for all of them simultaneously.
"""

import numpy as np
import pytest
from hypothesis import given, settings

import repro
from repro.core import certify, exact_rebalance

from ..conftest import instances_with_k

MOVE_BUDGET_ALGOS = (
    "greedy",
    "m-partition",
    "m-partition-incremental",
    "hill-climb",
    "exact",
)


class TestCrossAlgorithm:
    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_all_respect_budget_and_certify(self, case):
        inst, k = case
        for name in MOVE_BUDGET_ALGOS:
            res = repro.rebalance(inst, algorithm=name, k=k)
            cert = certify(res, k=k)
            cert.require()

    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_exact_dominates_everyone(self, case):
        inst, k = case
        best = exact_rebalance(inst, k=k).makespan
        for name in MOVE_BUDGET_ALGOS:
            res = repro.rebalance(inst, algorithm=name, k=k)
            assert res.makespan >= best - 1e-9, (
                f"{name} beat the exact optimum: {res.makespan} < {best}"
            )

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_budgeted_weighted_algorithms_agree_on_budgets(self, case):
        inst, k = case
        budget = float(k)  # unit costs: cost budget == move budget
        opt = exact_rebalance(inst, budget=budget).makespan
        for name in ("cost-partition", "ptas", "shmoys-tardos"):
            res = repro.rebalance(inst, algorithm=name, budget=budget)
            assert res.relocation_cost <= budget + 1e-5 * max(1.0, budget)
            assert res.makespan >= opt - 1e-9

    def test_unit_exact_dispatch(self):
        inst = repro.make_instance(
            sizes=[1.0] * 8, initial=[0] * 8, num_processors=4
        )
        res = repro.rebalance(inst, algorithm="unit-exact", k=4)
        assert res.makespan == exact_rebalance(inst, k=4).makespan

    def test_incremental_dispatch_matches_rescan(self):
        inst = repro.make_instance(
            sizes=[8, 7, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        a = repro.rebalance(inst, algorithm="m-partition", k=2)
        b = repro.rebalance(inst, algorithm="m-partition-incremental", k=2)
        assert a.makespan == b.makespan
        assert np.array_equal(a.assignment.mapping, b.assignment.mapping)
