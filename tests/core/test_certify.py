"""Tests for independent certification."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    Assignment,
    RebalanceResult,
    greedy_rebalance,
    m_partition_rebalance,
    make_instance,
)
from repro.core.certify import certify

from ..conftest import instances_with_k


class TestCertify:
    def test_valid_identity(self):
        inst = make_instance(sizes=[3, 2], initial=[0, 1], num_processors=2)
        res = RebalanceResult(
            assignment=Assignment.initial(inst), algorithm="noop"
        )
        cert = certify(res, k=0)
        assert cert.valid
        assert cert.moves == 0
        assert cert.makespan == 3.0
        cert.require()

    def test_detects_budget_violation(self):
        inst = make_instance(sizes=[3, 2], initial=[0, 0], num_processors=2)
        res = RebalanceResult(
            assignment=Assignment(instance=inst, mapping=[0, 1]),
            algorithm="cheater",
        )
        cert = certify(res, k=0)
        assert not cert.valid
        assert any("moves exceed" in v for v in cert.violations)
        with pytest.raises(AssertionError):
            cert.require()

    def test_detects_cost_violation(self):
        inst = make_instance(
            sizes=[3, 2], initial=[0, 0], num_processors=2, costs=[5, 5]
        )
        res = RebalanceResult(
            assignment=Assignment(instance=inst, mapping=[0, 1]),
            algorithm="cheater",
        )
        cert = certify(res, budget=1.0)
        assert not cert.valid

    def test_detects_plan_understatement(self):
        inst = make_instance(sizes=[3, 2], initial=[0, 0], num_processors=2)
        res = RebalanceResult(
            assignment=Assignment(instance=inst, mapping=[0, 1]),
            algorithm="fibber",
            planned_moves=0,  # lies: actually moved one job
        )
        cert = certify(res)
        assert not cert.valid

    def test_ratio_requirement(self):
        inst = make_instance(sizes=[4, 4], initial=[0, 0], num_processors=2)
        res = greedy_rebalance(inst, 1)
        cert = certify(res, k=1)
        cert.require(max_ratio=2.0)
        assert cert.proven_ratio == pytest.approx(1.0)  # hit the lower bound

    @settings(max_examples=50, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_greedy_certified_valid(self, case):
        inst, k = case
        cert = certify(greedy_rebalance(inst, k), k=k)
        cert.require()
        assert cert.opt_lower_bound > 0
        assert cert.proven_ratio >= 1.0 - 1e-12

    def test_proven_ratio_certifies_at_scale(self):
        """On the planted family the Lemma-1 bound equals OPT, so the
        certificate proves the Theorem-1 ratio with no exact solver —
        at sizes branch-and-bound could never touch."""
        from repro.workloads import planted_imbalance_instance

        rng = np.random.default_rng(17)
        inst, k, opt = planted_imbalance_instance(8, 50, 80, rng)
        cert = certify(greedy_rebalance(inst, k), k=k)
        cert.require(max_ratio=2.0 - 1.0 / 8)
        assert cert.opt_lower_bound == pytest.approx(opt)

    @settings(max_examples=50, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_m_partition_certified(self, case):
        inst, k = case
        cert = certify(m_partition_rebalance(inst, k), k=k)
        cert.require()
        assert cert.valid
