"""Tests for the repro.telemetry instrumentation layer."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.core import (
    cost_partition_rebalance,
    greedy_rebalance,
    m_partition_rebalance,
    m_partition_rebalance_incremental,
    make_instance,
    ptas_rebalance,
)
from repro.workloads.generators import random_instance


def _instance(n=40, m=4, seed=7, **kwargs):
    return random_instance(n, m, np.random.default_rng(seed), **kwargs)


class TestCollector:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.current() is None

    def test_span_noop_when_disabled(self):
        # The shared no-op span must be reused (no allocation per call).
        assert telemetry.span("x") is telemetry.span("y")

    def test_count_noop_when_disabled(self):
        telemetry.count("nothing", 5)  # must not raise
        assert telemetry.current() is None

    def test_collect_scopes_enablement(self):
        with telemetry.collect() as col:
            assert telemetry.enabled()
            assert telemetry.current() is col
        assert not telemetry.enabled()

    def test_span_aggregates_calls_and_time(self):
        with telemetry.collect() as col:
            for _ in range(3):
                with telemetry.span("phase"):
                    time.sleep(0.001)
        stat = col.as_dict()["spans"]["phase"]
        assert stat["calls"] == 3
        assert stat["seconds"] >= 0.003

    def test_counters_accumulate(self):
        with telemetry.collect() as col:
            telemetry.count("widgets")
            telemetry.count("widgets", 9)
        assert col.as_dict()["counters"]["widgets"] == 10

    def test_record_external_timing(self):
        with telemetry.collect() as col:
            telemetry.record("external", 0.25)
            telemetry.record("external", 0.25)
        stat = col.as_dict()["spans"]["external"]
        assert stat["calls"] == 2
        assert stat["seconds"] == pytest.approx(0.5)

    def test_nested_collect_shadows_and_restores(self):
        with telemetry.collect() as outer:
            telemetry.count("c")
            with telemetry.collect() as inner:
                telemetry.count("c", 5)
            telemetry.count("c")
        assert outer.as_dict()["counters"]["c"] == 2
        assert inner.as_dict()["counters"]["c"] == 5

    def test_mark_since_delta(self):
        with telemetry.collect() as col:
            telemetry.count("n", 3)
            with telemetry.span("s"):
                pass
            marker = col.mark()
            telemetry.count("n", 4)
            with telemetry.span("s"):
                pass
            delta = col.since(marker)
        assert delta["counters"] == {"n": 4}
        assert delta["spans"]["s"]["calls"] == 1

    def test_attach_helper(self):
        meta: dict = {}
        assert telemetry.attach(meta, None) is meta
        assert "telemetry" not in meta
        with telemetry.collect():
            marker = telemetry.mark()
            telemetry.count("k", 2)
            telemetry.attach(meta, marker)
        assert meta["telemetry"]["counters"] == {"k": 2}

    def test_to_json_round_trips(self):
        with telemetry.collect() as col:
            telemetry.count("a", 1)
            with telemetry.span("b"):
                pass
        data = json.loads(col.to_json())
        assert data["counters"] == {"a": 1}
        assert data["spans"]["b"]["calls"] == 1

    def test_thread_isolation(self):
        seen: dict[str, bool] = {}

        def worker():
            seen["enabled_in_thread"] = telemetry.enabled()

        with telemetry.collect():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["enabled_in_thread"] is False

    def test_render_table_layout(self):
        with telemetry.collect() as col:
            with telemetry.span("alpha"):
                pass
            telemetry.count("beta", 7)
        text = telemetry.render_table(col.as_dict(), title="T")
        assert text.splitlines()[0] == "T"
        assert "alpha" in text and "beta" in text and "7" in text

    def test_render_table_empty(self):
        assert "(empty)" in telemetry.render_table(
            {"spans": {}, "counters": {}}
        )


class TestSolverIntegration:
    def test_greedy_attaches_meta(self):
        inst = _instance()
        with telemetry.collect():
            res = greedy_rebalance(inst, 5)
        tel = res.meta["telemetry"]
        assert "greedy.step1" in tel["spans"]
        assert "greedy.step2" in tel["spans"]
        assert tel["counters"]["heap_pops"] > 0

    def test_m_partition_counts_thresholds(self):
        inst = _instance()
        with telemetry.collect() as col:
            res = m_partition_rebalance(inst, 5)
        tel = res.meta["telemetry"]
        # The meta key migrated onto the shared counter: both agree.
        assert tel["counters"]["thresholds_tried"] == res.meta["thresholds_tried"]
        assert (
            col.as_dict()["counters"]["thresholds_tried"]
            == res.meta["thresholds_tried"]
        )
        assert "m_partition.scan" in tel["spans"]

    def test_incremental_matches_rescan_telemetry(self):
        inst = _instance()
        with telemetry.collect():
            res = m_partition_rebalance_incremental(inst, 5)
        tel = res.meta["telemetry"]
        assert tel["counters"]["thresholds_tried"] == res.meta["thresholds_tried"]
        assert "m_partition_inc.scan" in tel["spans"]

    def test_cost_partition_counts_knapsack_cells(self):
        inst = _instance(n=20, m=3, cost_family="random")
        with telemetry.collect():
            res = cost_partition_rebalance(inst, budget=5.0)
        tel = res.meta["telemetry"]
        assert tel["counters"]["knapsack_cells"] > 0
        assert tel["counters"]["guesses_tried"] == res.meta["guesses_tried"]
        assert "cost_partition.plan" in tel["spans"]

    def test_ptas_records_dp_states(self):
        inst = make_instance(
            sizes=[4, 3, 2, 2, 1], initial=[0, 0, 0, 1, 1], num_processors=2
        )
        with telemetry.collect():
            res = ptas_rebalance(inst, budget=3.0, eps=2.0)
        tel = res.meta["telemetry"]
        assert tel["counters"]["ptas_dp_states"] > 0
        assert "ptas.dp" in tel["spans"]

    def test_no_meta_key_when_disabled(self):
        inst = _instance()
        for res in (
            greedy_rebalance(inst, 5),
            m_partition_rebalance(inst, 5),
        ):
            assert "telemetry" not in res.meta

    def test_results_identical_with_and_without_collection(self):
        """Collection must cause zero code-path changes in the solvers."""
        inst = _instance(n=60, m=5)
        plain = m_partition_rebalance(inst, 7)
        with telemetry.collect():
            collected = m_partition_rebalance(inst, 7)
        assert np.array_equal(
            plain.assignment.mapping, collected.assignment.mapping
        )
        assert plain.guessed_opt == collected.guessed_opt
        assert plain.planned_moves == collected.planned_moves


class TestOverhead:
    def test_enabled_overhead_is_small(self):
        """Smoke bound: collection may not meaningfully slow a solver.

        The acceptance target is <5% on the bench_e11_scale kernels;
        asserting that tightly here would be flaky on shared CI
        machines, so this smoke test uses a generous 1.5x ceiling that
        still catches accidental per-iteration work on the hot paths.
        """
        inst = random_instance(5_000, 32, np.random.default_rng(3))
        k = 250
        greedy_rebalance(inst, k)  # warm-up

        def best_of(runs: int) -> float:
            best = float("inf")
            for _ in range(runs):
                t0 = time.perf_counter()
                greedy_rebalance(inst, k)
                best = min(best, time.perf_counter() - t0)
            return best

        off = best_of(3)
        with telemetry.collect():
            on = best_of(3)
        assert on <= 1.5 * off + 1e-3, (off, on)


class TestHistogram:
    def test_empty(self):
        hist = telemetry.Histogram()
        assert hist.count == 0
        assert np.isnan(hist.mean)
        assert np.isnan(hist.quantile(0.5))

    def test_single_sample_exact(self):
        hist = telemetry.Histogram()
        hist.record(42.0)
        assert hist.count == 1
        assert hist.mean == 42.0
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_extremes_exact(self):
        hist = telemetry.Histogram()
        for v in (3.0, 9.0, 1.0, 27.0):
            hist.record(v)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 27.0

    def test_quantile_within_bucket_width(self):
        rng = np.random.default_rng(4)
        samples = rng.lognormal(mean=2.0, sigma=1.0, size=5000)
        hist = telemetry.Histogram()
        for v in samples:
            hist.record(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            approx = hist.quantile(q)
            # log-bucketed: within one bucket (< 10% relative error)
            assert abs(approx - exact) / exact < 0.10, (q, exact, approx)

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            telemetry.Histogram().quantile(1.5)

    def test_zero_samples_bucketed(self):
        hist = telemetry.Histogram()
        for v in (0.0, 0.0, 0.0, 5.0):
            hist.record(v)
        assert hist.zeros == 3
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == 5.0

    def test_merge_equals_recording_together(self):
        rng = np.random.default_rng(6)
        a_samples = rng.uniform(0.1, 50.0, 400)
        b_samples = rng.uniform(0.1, 50.0, 300)
        a, b, both = (telemetry.Histogram() for _ in range(3))
        for v in a_samples:
            a.record(v)
            both.record(v)
        for v in b_samples:
            b.record(v)
            both.record(v)
        a.merge(b)
        assert a.count == both.count
        assert a.total == pytest.approx(both.total)
        assert a.buckets == both.buckets
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == both.quantile(q)

    def test_merge_accepts_dict_form(self):
        a, b = telemetry.Histogram(), telemetry.Histogram()
        a.record(1.0)
        b.record(100.0)
        a.merge(b.as_dict())
        assert a.count == 2
        assert a.quantile(1.0) == 100.0

    def test_dict_roundtrip(self):
        hist = telemetry.Histogram()
        for v in (0.0, 0.5, 7.0, 7.0, 300.0):
            hist.record(v)
        data = json.loads(json.dumps(hist.as_dict()))
        back = telemetry.Histogram.from_dict(data)
        assert back.count == hist.count
        assert back.zeros == hist.zeros
        assert back.buckets == hist.buckets
        for q in (0.0, 0.5, 1.0):
            assert back.quantile(q) == hist.quantile(q)

    def test_empty_dict_roundtrip(self):
        data = telemetry.Histogram().as_dict()
        assert data["min"] is None and data["max"] is None
        back = telemetry.Histogram.from_dict(data)
        assert back.count == 0
        back.record(2.0)  # still usable after the degenerate roundtrip
        assert back.quantile(0.5) == 2.0


class TestCollectorHistograms:
    def test_observe_records(self):
        with telemetry.collect() as col:
            telemetry.observe("latency_ms", 10.0)
            telemetry.observe("latency_ms", 20.0)
        data = col.as_dict()
        assert data["histograms"]["latency_ms"]["count"] == 2

    def test_observe_noop_when_disabled(self):
        telemetry.observe("nothing", 1.0)  # must not raise
        assert telemetry.current() is None

    def test_histograms_key_absent_when_unused(self):
        with telemetry.collect() as col:
            telemetry.count("x")
        assert "histograms" not in col.as_dict()

    def test_merge_folds_histograms(self):
        worker = telemetry.Collector()
        worker.observe("d", 5.0)
        worker.observe("d", 15.0)
        parent = telemetry.Collector()
        parent.observe("d", 10.0)
        parent.merge(worker.as_dict())
        assert parent.histograms["d"].count == 3

    def test_since_mark_delta(self):
        with telemetry.collect() as col:
            telemetry.observe("d", 1.0)
            snapshot = col.mark()
            telemetry.observe("d", 8.0)
            telemetry.observe("d", 8.0)
        delta = col.since(snapshot)
        assert delta["histograms"]["d"]["count"] == 2

    def test_since_skips_unchanged_histograms(self):
        with telemetry.collect() as col:
            telemetry.observe("quiet", 1.0)
            snapshot = col.mark()
            telemetry.count("other")
        assert "histograms" not in col.since(snapshot)

    def test_render_table_includes_histograms(self):
        with telemetry.collect() as col:
            for v in (1.0, 2.0, 3.0):
                telemetry.observe("latency_ms", v)
        table = telemetry.render_table(col.as_dict())
        assert "latency_ms" in table
        assert "p99" in table
