"""Differential tests: vectorized kernels vs the reference backends.

The kernels in :mod:`repro.core.kernels` claim *byte-identical* traces,
not just equal objective values — same kept sets, same chosen guesses,
same assignments.  These tests hold them to it on adversarial inputs
(ties, zero costs, fractional grids, overloaded and underloaded
shapes), and check the kernel knapsack against brute force over all
subsets for n <= 12.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cost_partition_rebalance,
    keep_max_cost_exact,
    keep_max_cost_fptas,
    make_instance,
    ptas_rebalance,
)
from repro.core.kernels import _normalized_vectors

from ..conftest import small_instances


def brute_force_best(sizes, costs, capacity):
    """Max kept cost over all feasible subsets."""
    best = 0.0
    for r in range(len(sizes) + 1):
        for subset in itertools.combinations(range(len(sizes)), r):
            if sum(sizes[i] for i in subset) <= capacity + 1e-12:
                best = max(best, sum(costs[i] for i in subset))
    return best


knapsack_cases = st.tuples(
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=0, max_value=60),
    st.booleans(),  # integer sizes (exact grid) vs fractional (scaled grid)
    st.randoms(use_true_random=False),
).map(
    lambda t: (
        [
            t[3].randint(1, 15) if t[2] else t[3].uniform(0.1, 9.0)
            for _ in range(t[0])
        ],
        [0.0 if t[3].random() < 0.25 else float(t[3].randint(0, 20))
         for _ in range(t[0])],
        float(t[1]),
    )
)


class TestKnapsackKernel:
    @settings(max_examples=150, deadline=None)
    @given(knapsack_cases)
    def test_exact_kernel_matches_brute_force(self, case):
        sizes, costs, capacity = case
        if not all(s == round(s) for s in sizes):
            return  # brute force only meaningful on the exact grid
        sol = keep_max_cost_exact(sizes, costs, capacity, backend="kernel")
        assert sol.kept_size <= capacity + 1e-9
        assert sol.kept_cost == pytest.approx(
            brute_force_best(sizes, costs, capacity)
        )

    @settings(max_examples=150, deadline=None)
    @given(knapsack_cases)
    def test_exact_kernel_identical_to_reference(self, case):
        sizes, costs, capacity = case
        a = keep_max_cost_exact(sizes, costs, capacity, backend="kernel")
        b = keep_max_cost_exact(sizes, costs, capacity, backend="reference")
        assert a == b  # keep set, kept cost and kept size, bitwise

    @settings(max_examples=100, deadline=None)
    @given(knapsack_cases, st.sampled_from([0.05, 0.1, 0.3, 0.7]))
    def test_fptas_kernel_identical_to_reference(self, case, eps):
        sizes, costs, capacity = case
        a = keep_max_cost_fptas(sizes, costs, capacity, eps=eps,
                                backend="kernel")
        b = keep_max_cost_fptas(sizes, costs, capacity, eps=eps,
                                backend="reference")
        assert a == b

    def test_all_fit_shortcut_traces_positive_items(self):
        # Every positive-cost item fits: the shortcut must keep exactly
        # those, like the reference trace does.
        a = keep_max_cost_exact([2, 3, 4], [5, 0, 7], 100, backend="kernel")
        b = keep_max_cost_exact([2, 3, 4], [5, 0, 7], 100, backend="reference")
        assert a == b
        assert a.keep == (0, 2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            keep_max_cost_exact([1], [1], 2, backend="magic")
        with pytest.raises(ValueError, match="backend"):
            keep_max_cost_fptas([1], [1], 2, backend="magic")

    def test_removed_is_sorted_complement(self):
        sol = keep_max_cost_exact([3, 3, 3, 3], [1, 9, 2, 8], 6)
        removed = sol.removed(4)
        assert removed == tuple(sorted(removed))
        assert set(sol.keep) | set(removed) == {0, 1, 2, 3}
        assert not set(sol.keep) & set(removed)


@st.composite
def budgeted_cases(draw):
    inst = draw(small_instances(max_jobs=6, max_processors=3,
                                unit_costs=False))
    total = float(inst.costs.sum())
    budget = draw(st.floats(min_value=0.0, max_value=max(total, 1.0)))
    return inst, budget


def _result_key(res):
    return (
        res.guessed_opt,
        res.planned_cost,
        res.assignment.makespan,
        tuple(int(x) for x in res.assignment.mapping),
    )


class TestPTASKernel:
    @settings(max_examples=40, deadline=None)
    @given(budgeted_cases(), st.sampled_from([2.0, 1.0, 0.75]))
    def test_identical_to_reference(self, case, eps):
        inst, budget = case
        a = ptas_rebalance(inst, budget, eps=eps, backend="kernel")
        b = ptas_rebalance(inst, budget, eps=eps, backend="reference")
        assert _result_key(a) == _result_key(b)
        assert a.meta["guesses_tried"] == b.meta["guesses_tried"]

    def test_unknown_backend_rejected(self):
        inst = make_instance(sizes=[2.0, 1.0], initial=[0, 0],
                             num_processors=2, costs=[1.0, 1.0])
        with pytest.raises(ValueError, match="backend"):
            ptas_rebalance(inst, 10.0, eps=1.0, backend="magic")

    def test_vector_enumeration_cached_per_signature(self):
        _normalized_vectors.cache_clear()
        args = (0.125, 3, (2, 1, 1), 1000)
        first = _normalized_vectors(*args)
        second = _normalized_vectors(*args)
        assert first is second  # same object: served from the cache
        info = _normalized_vectors.cache_info()
        assert info.hits >= 1 and info.misses == 1

    def test_vector_enumeration_respects_limit(self):
        _normalized_vectors.cache_clear()
        with pytest.raises(RuntimeError, match="enumeration exceeded"):
            _normalized_vectors(0.125, 3, (8, 8, 8), 2)


class TestCostPartitionKernel:
    @settings(max_examples=30, deadline=None)
    @given(budgeted_cases())
    def test_identical_to_reference(self, case):
        inst, budget = case
        a = cost_partition_rebalance(inst, budget, backend="kernel")
        b = cost_partition_rebalance(inst, budget, backend="reference")
        assert _result_key(a) == _result_key(b)
        assert a.meta["guesses_tried"] == b.meta["guesses_tried"]

    def test_resolution_kwarg_passthrough(self):
        inst = make_instance(
            sizes=[2.5, 2.5, 2.5, 1.25], initial=[0, 0, 0, 1],
            num_processors=2, costs=[3.0, 2.0, 1.0, 1.0],
        )
        budget = 4.0
        for resolution in (64, 4096):
            a = cost_partition_rebalance(
                inst, budget, knapsack_resolution=resolution, backend="kernel"
            )
            b = cost_partition_rebalance(
                inst, budget, knapsack_resolution=resolution,
                backend="reference",
            )
            assert _result_key(a) == _result_key(b)
            assert a.meta["knapsack_resolution"] == resolution

    def test_unknown_backend_rejected(self):
        inst = make_instance(sizes=[2.0], initial=[0], num_processors=1,
                             costs=[1.0])
        with pytest.raises(ValueError, match="backend"):
            cost_partition_rebalance(inst, 1.0, backend="magic")
