"""Tests for the exact branch-and-bound solver (ground truth)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import HAS_MILP, exact_rebalance, make_instance, milp_rebalance

from ..conftest import instances_with_k


def brute_force_opt(inst, k=None, budget=None):
    """Enumerate every complete assignment (tiny instances only)."""
    best = float("inf")
    n, m = inst.num_jobs, inst.num_processors
    for mapping in itertools.product(range(m), repeat=n):
        moves = sum(1 for j in range(n) if mapping[j] != inst.initial[j])
        if k is not None and moves > k:
            continue
        cost = sum(
            inst.costs[j] for j in range(n) if mapping[j] != inst.initial[j]
        )
        if budget is not None and cost > budget + 1e-12:
            continue
        loads = np.zeros(m)
        for j in range(n):
            loads[mapping[j]] += inst.sizes[j]
        best = min(best, loads.max())
    return best


class TestBranchAndBound:
    def test_identity_when_k_zero(self):
        inst = make_instance(sizes=[9, 1], initial=[0, 0], num_processors=2)
        res = exact_rebalance(inst, k=0)
        assert res.makespan == 10.0
        assert res.num_moves == 0

    def test_obvious_split(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 0], num_processors=2)
        res = exact_rebalance(inst, k=1)
        assert res.makespan == 5.0

    def test_node_limit_raises(self):
        rng = np.random.default_rng(0)
        inst = make_instance(
            sizes=rng.uniform(1, 100, 12), initial=rng.integers(0, 4, 12),
            num_processors=4,
        )
        with pytest.raises(RuntimeError, match="node_limit"):
            exact_rebalance(inst, k=12, node_limit=10)

    def test_meta_marks_optimal(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        res = exact_rebalance(inst, k=1)
        assert res.meta["optimal"] is True
        assert res.meta["nodes"] >= 1

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=5, max_processors=3))
    def test_matches_brute_force_moves(self, case):
        inst, k = case
        assert exact_rebalance(inst, k=k).makespan == pytest.approx(
            brute_force_opt(inst, k=k)
        )

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=5, max_processors=3, unit_costs=False))
    def test_matches_brute_force_budget(self, case):
        inst, k = case
        budget = float(k)  # reuse k as a cost budget
        assert exact_rebalance(inst, budget=budget).makespan == pytest.approx(
            brute_force_opt(inst, budget=budget)
        )

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=6, max_processors=3))
    def test_monotone_in_k(self, case):
        inst, k = case
        values = [exact_rebalance(inst, k=kk).makespan for kk in range(k + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


@pytest.mark.skipif(not HAS_MILP, reason="scipy.optimize.milp unavailable")
class TestMilpCrossCheck:
    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=6, max_processors=3))
    def test_milp_agrees_with_bnb(self, case):
        inst, k = case
        bnb = exact_rebalance(inst, k=k)
        milp = milp_rebalance(inst, k=k)
        assert milp.makespan == pytest.approx(bnb.makespan, rel=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(instances_with_k(max_jobs=5, max_processors=3, unit_costs=False))
    def test_milp_agrees_under_budget(self, case):
        inst, k = case
        budget = float(k)
        bnb = exact_rebalance(inst, budget=budget)
        milp = milp_rebalance(inst, budget=budget)
        assert milp.makespan == pytest.approx(bnb.makespan, rel=1e-6)

    def test_milp_respects_budget(self):
        inst = make_instance(
            sizes=[5, 5, 5], initial=[0, 0, 0], num_processors=3,
            costs=[1, 2, 3],
        )
        res = milp_rebalance(inst, budget=3.0)
        assert res.relocation_cost <= 3.0 + 1e-9
