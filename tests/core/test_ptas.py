"""Tests for the PTAS (Section 4, Theorem 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PTASLimits,
    exact_rebalance,
    make_instance,
    ptas_rebalance,
)
from repro.core.ptas import _discretize

from ..conftest import small_instances


@st.composite
def budgeted_cases(draw):
    inst = draw(small_instances(max_jobs=6, max_processors=3, unit_costs=False))
    total = float(inst.costs.sum())
    budget = draw(st.floats(min_value=0.0, max_value=max(total, 1.0)))
    return inst, budget


class TestDiscretization:
    def test_class_count_matches_formula(self):
        import math

        inst = make_instance(sizes=[10.0], initial=[0])
        delta = 0.25
        disc = _discretize(inst, 10.0, delta)
        expected = math.ceil(math.log(1 / delta) / math.log(1 + delta))
        assert disc.num_classes == expected

    def test_rounded_sizes_cover_jobs(self):
        inst = make_instance(sizes=[10.0, 3.0, 1.0], initial=[0, 0, 0])
        disc = _discretize(inst, 10.0, 0.25)
        # size 10 and 3 are large at delta*T = 2.5; size 1 is small.
        large_total = sum(
            len(lst) for cls_lists in disc.large_by_class for lst in cls_lists
        )
        assert large_total == 2
        assert disc.small_load[0] == pytest.approx(1.0)

    def test_class_sizes_geometric(self):
        inst = make_instance(sizes=[10.0], initial=[0])
        disc = _discretize(inst, 10.0, 0.5)
        ratios = disc.class_sizes[1:] / disc.class_sizes[:-1]
        assert all(abs(r - 1.5) < 1e-9 for r in ratios)

    def test_rejects_oversized_job(self):
        inst = make_instance(sizes=[100.0], initial=[0])
        with pytest.raises(ValueError, match="exceeds"):
            _discretize(inst, 10.0, 0.25)


class TestPTAS:
    def test_zero_budget_identity(self):
        inst = make_instance(
            sizes=[9, 1], initial=[0, 0], num_processors=2, costs=[5, 5]
        )
        res = ptas_rebalance(inst, 0.0, eps=1.0)
        assert res.relocation_cost == 0.0

    def test_rejects_bad_args(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            ptas_rebalance(inst, -1.0)
        with pytest.raises(ValueError):
            ptas_rebalance(inst, 1.0, eps=0.0)

    def test_empty_instance(self):
        inst = make_instance(sizes=[], initial=[], num_processors=2)
        assert ptas_rebalance(inst, 1.0).makespan == 0.0

    def test_state_limit_raises(self):
        inst = make_instance(
            sizes=[7, 6, 5, 4, 3, 2], initial=[0, 0, 0, 0, 0, 0],
            num_processors=3,
        )
        with pytest.raises(RuntimeError, match="state"):
            ptas_rebalance(
                inst, 6.0, eps=0.5, limits=PTASLimits(max_states=2)
            )

    def test_obvious_split(self):
        inst = make_instance(
            sizes=[5, 5], initial=[0, 0], num_processors=2, costs=[1, 1]
        )
        res = ptas_rebalance(inst, 1.0, eps=0.5)
        assert res.makespan <= 1.5 * 5.0 + 1e-9
        assert res.relocation_cost <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(budgeted_cases())
    def test_budget_always_respected(self, case):
        inst, budget = case
        res = ptas_rebalance(inst, budget, eps=1.0)
        assert res.relocation_cost <= budget + 1e-6 * max(1.0, budget)

    @settings(max_examples=25, deadline=None)
    @given(budgeted_cases())
    def test_theorem4_bound(self, case):
        """Makespan <= (1 + eps) OPT(B)."""
        inst, budget = case
        eps = 1.0
        opt = exact_rebalance(inst, budget=budget).makespan
        res = ptas_rebalance(inst, budget, eps=eps)
        assert res.makespan <= (1.0 + eps) * opt + 1e-9, (
            f"{res.makespan} > {(1 + eps) * opt} on {inst.to_dict()} B={budget}"
        )

    @settings(max_examples=8, deadline=None)
    @given(budgeted_cases())
    def test_tighter_eps_bound(self, case):
        inst, budget = case
        opt = exact_rebalance(inst, budget=budget).makespan
        res = ptas_rebalance(inst, budget, eps=0.5)
        assert res.makespan <= 1.5 * opt + 1e-9

    def test_quality_improves_with_eps_on_average(self):
        """Over a small batch, eps=0.5 is at least as good as eps=2.0."""
        import numpy as np

        from repro.workloads import random_instance

        rng = np.random.default_rng(11)
        coarse_total = fine_total = 0.0
        for _ in range(6):
            inst = random_instance(6, 3, rng, cost_family="random",
                                   integer_sizes=True)
            budget = float(inst.costs.sum()) / 2
            coarse_total += ptas_rebalance(inst, budget, eps=2.0).makespan
            fine_total += ptas_rebalance(inst, budget, eps=0.5).makespan
        assert fine_total <= coarse_total + 1e-9

    def test_meta_fields(self):
        inst = make_instance(
            sizes=[5, 5], initial=[0, 0], num_processors=2, costs=[1, 1]
        )
        res = ptas_rebalance(inst, 1.0, eps=1.0)
        assert res.meta["eps"] == 1.0
        assert res.meta["num_classes"] >= 1
        assert res.meta["guesses_tried"] >= 1
        assert res.planned_cost is not None
        assert res.relocation_cost <= res.planned_cost + 1e-9
