"""Tests for the exact unit-size solver, and cross-validation of the
approximation algorithms against it at scale."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    exact_rebalance,
    greedy_rebalance,
    m_partition_rebalance,
    make_instance,
    unit_rebalance_exact,
)
from repro.core.unit_jobs import unit_opt_value


@st.composite
def unit_cases(draw, max_m: int = 5, max_per_proc: int = 6):
    m = draw(st.integers(min_value=1, max_value=max_m))
    counts = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_per_proc),
            min_size=m, max_size=m,
        )
    )
    initial = [p for p, c in enumerate(counts) for _ in range(c)]
    if not initial:
        initial = [0]
    inst = make_instance(
        sizes=[1.0] * len(initial), initial=initial, num_processors=m
    )
    k = draw(st.integers(min_value=0, max_value=len(initial)))
    return inst, k


class TestUnitOptValue:
    def test_balanced_needs_nothing(self):
        inst = make_instance(sizes=[1, 1], initial=[0, 1], num_processors=2)
        assert unit_opt_value(inst, 0) == 1.0

    def test_skewed(self):
        inst = make_instance(
            sizes=[1] * 6, initial=[0] * 6, num_processors=3
        )
        assert unit_opt_value(inst, 0) == 6.0
        assert unit_opt_value(inst, 1) == 5.0
        assert unit_opt_value(inst, 4) == 2.0
        assert unit_opt_value(inst, 100) == 2.0

    def test_uniform_nonunit_sizes_scale(self):
        inst = make_instance(
            sizes=[3.0] * 4, initial=[0] * 4, num_processors=2
        )
        assert unit_opt_value(inst, 2) == 6.0

    def test_rejects_mixed_sizes(self):
        inst = make_instance(sizes=[1.0, 2.0], initial=[0, 0])
        with pytest.raises(ValueError, match="identical"):
            unit_opt_value(inst, 1)

    def test_rejects_negative_k(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            unit_opt_value(inst, -1)

    @settings(max_examples=30, deadline=None)
    @given(unit_cases(max_m=3, max_per_proc=3))
    def test_matches_branch_and_bound(self, case):
        # Kept tiny: identical sizes are the worst case for the B&B
        # (every tie defeats its dominance pruning).
        inst, k = case
        assert unit_opt_value(inst, k) == pytest.approx(
            exact_rebalance(inst, k=k).makespan
        )


class TestUnitRebalanceExact:
    def test_empty(self):
        inst = make_instance(sizes=[], initial=[], num_processors=2)
        assert unit_rebalance_exact(inst, 1).makespan == 0.0

    @settings(max_examples=50, deadline=None)
    @given(unit_cases())
    def test_achieves_optimum_within_budget(self, case):
        inst, k = case
        res = unit_rebalance_exact(inst, k)
        assert res.makespan == pytest.approx(unit_opt_value(inst, k))
        assert res.num_moves <= k

    def test_large_scale_oracle(self):
        """The closed form scales where branch-and-bound cannot."""
        rng = np.random.default_rng(0)
        m, n = 64, 5000
        initial = rng.integers(0, m, n)
        inst = make_instance(sizes=[1.0] * n, initial=initial, num_processors=m)
        k = 200
        res = unit_rebalance_exact(inst, k)
        opt = unit_opt_value(inst, k)
        assert res.makespan == opt
        # And the paper's algorithms respect their bounds against it.
        assert greedy_rebalance(inst, k).makespan <= (2 - 1 / m) * opt + 1e-9
        assert m_partition_rebalance(inst, k).makespan <= 1.5 * opt + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(unit_cases())
    def test_approximations_bounded_by_unit_oracle(self, case):
        inst, k = case
        opt = unit_opt_value(inst, k)
        if opt == 0:
            return
        m = inst.num_processors
        assert greedy_rebalance(inst, k).makespan <= (2 - 1 / m) * opt + 1e-9
        assert m_partition_rebalance(inst, k).makespan <= 1.5 * opt + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(unit_cases())
    def test_greedy_is_optimal_on_unit_jobs(self, case):
        """With unit jobs GREEDY's two phases realize the closed form:
        Step 1 strips overloads optimally (Lemma 1) and Step 2 fills
        minima, so its makespan matches the exact optimum."""
        inst, k = case
        opt = unit_opt_value(inst, k)
        assert greedy_rebalance(inst, k).makespan == pytest.approx(opt)
