"""Tests for GREEDY (Section 2, Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import exact_rebalance, greedy_rebalance, make_instance
from repro.workloads import greedy_tight_instance

from ..conftest import instances_with_k


class TestBasics:
    def test_k_zero_is_identity(self):
        inst = make_instance(sizes=[5, 1], initial=[0, 0], num_processors=2)
        res = greedy_rebalance(inst, 0)
        assert res.num_moves == 0
        assert res.makespan == inst.initial_makespan

    def test_single_obvious_move(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 0], num_processors=2)
        res = greedy_rebalance(inst, 1)
        assert res.makespan == 5.0
        assert res.num_moves == 1

    def test_k_larger_than_jobs(self):
        inst = make_instance(sizes=[3, 2, 1], initial=[0, 0, 0], num_processors=2)
        res = greedy_rebalance(inst, 100)
        res.assignment.validate()
        assert res.makespan >= inst.average_load

    def test_rejects_negative_k(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            greedy_rebalance(inst, -1)

    def test_rejects_bad_order(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            greedy_rebalance(inst, 1, insert_order="sideways")

    def test_meta_records_g1(self):
        inst = make_instance(sizes=[5, 3, 4], initial=[0, 0, 1], num_processors=2)
        res = greedy_rebalance(inst, 1)
        assert res.meta["G1"] == 4.0  # Lemma 1 bound after one removal
        assert res.meta["G2"] == res.makespan

    def test_single_processor_noop_effect(self):
        inst = make_instance(sizes=[3, 2], initial=[0, 0], num_processors=1)
        res = greedy_rebalance(inst, 2)
        assert res.makespan == 5.0


class TestTheorem1:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 8])
    def test_tight_instance_hits_bound_exactly(self, m):
        """The adversarial family achieves ratio exactly 2 - 1/m."""
        inst, k, opt = greedy_tight_instance(m)
        res = greedy_rebalance(inst, k, insert_order="ascending")
        assert res.makespan / opt == pytest.approx(2.0 - 1.0 / m)

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_tight_instance_opt_is_m(self, m):
        inst, k, opt = greedy_tight_instance(m)
        assert exact_rebalance(inst, k=k).makespan == pytest.approx(opt)

    @settings(max_examples=60, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_ratio_bound_random(self, case):
        """G2 <= (2 - 1/m) OPT on arbitrary small instances."""
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        res = greedy_rebalance(inst, k)
        assert res.makespan <= (2.0 - 1.0 / inst.num_processors) * opt + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_g1_is_lower_bound(self, case):
        """Lemma 1: the post-removal load never exceeds OPT."""
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        res = greedy_rebalance(inst, k)
        assert res.meta["G1"] <= opt + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_move_budget_respected(self, case):
        inst, k = case
        res = greedy_rebalance(inst, k)
        assert res.num_moves <= k
        assert res.planned_moves <= k

    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_all_insert_orders_within_bound(self, case):
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        bound = (2.0 - 1.0 / inst.num_processors) * opt + 1e-9
        for order in ("removal", "descending", "ascending"):
            assert greedy_rebalance(inst, k, insert_order=order).makespan <= bound

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_scale_invariance(self, case):
        """Scaling all sizes scales the makespan and preserves moves."""
        inst, k = case
        a = greedy_rebalance(inst, k)
        b = greedy_rebalance(inst.scaled(4.0), k)
        assert b.makespan == pytest.approx(4.0 * a.makespan)
        assert np.array_equal(a.assignment.mapping, b.assignment.mapping)


class TestMoveAccounting:
    """planned_moves must count relocations, not Step-1 removals.

    Step 2 may legally place a removed job back on its origin processor
    (the removal-vs-relocation distinction before Lemma 3); such a job
    consumes no real budget and must not be reported as a move.
    """

    @settings(max_examples=80, deadline=None)
    @given(instances_with_k(max_jobs=10, max_processors=4))
    def test_planned_moves_equals_actual_moves(self, case):
        inst, k = case
        for order in ("removal", "descending", "ascending"):
            res = greedy_rebalance(inst, k, insert_order=order)
            assert res.planned_moves == res.assignment.num_moves

    def test_planned_moves_equals_actual_moves_random(self):
        rng = np.random.default_rng(42)
        from repro.workloads.generators import random_instance

        for _ in range(150):
            inst = random_instance(
                int(rng.integers(2, 25)), int(rng.integers(2, 6)), rng,
                integer_sizes=bool(rng.integers(0, 2)),
            )
            k = int(rng.integers(0, inst.num_jobs + 1))
            res = greedy_rebalance(inst, k)
            assert res.planned_moves == res.assignment.num_moves
            assert res.meta["removals"] >= res.planned_moves
            assert res.meta["removals"] <= k

    def test_reinsertion_on_origin_not_counted(self):
        """Balanced two-processor instance: the removed job goes back."""
        inst = make_instance(
            sizes=[2, 2], initial=[0, 1], num_processors=2
        )
        res = greedy_rebalance(inst, 1)
        assert res.meta["removals"] == 1
        assert res.planned_moves == 0
        assert res.num_moves == 0

    def test_insert_order_validated_before_step1(self):
        """A bad order must fail fast, not after the removal loop."""
        inst = make_instance(sizes=[5, 3, 1], initial=[0, 0, 1],
                             num_processors=2)
        with pytest.raises(ValueError, match="insert_order"):
            greedy_rebalance(inst, 2, insert_order="sideways")


class TestDeterminism:
    def test_repeat_runs_identical(self):
        inst = make_instance(
            sizes=[9, 7, 5, 3, 2, 2, 1], initial=[0, 0, 0, 1, 1, 2, 2],
            num_processors=3,
        )
        a = greedy_rebalance(inst, 3)
        b = greedy_rebalance(inst, 3)
        assert np.array_equal(a.assignment.mapping, b.assignment.mapping)
