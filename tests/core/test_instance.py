"""Unit tests for the Instance data model."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Instance, make_instance

from ..conftest import small_instances


class TestConstruction:
    def test_basic(self):
        inst = make_instance(sizes=[3, 2, 1], initial=[0, 1, 1], num_processors=2)
        assert inst.num_jobs == 3
        assert inst.num_processors == 2
        assert inst.total_size == 6.0
        assert inst.is_unit_cost

    def test_default_processor_count(self):
        inst = make_instance(sizes=[1, 1], initial=[0, 3])
        assert inst.num_processors == 4

    def test_custom_costs(self):
        inst = make_instance(sizes=[1, 2], initial=[0, 0], costs=[5, 0])
        assert not inst.is_unit_cost
        assert inst.costs.tolist() == [5.0, 0.0]

    def test_empty_instance(self):
        inst = Instance(sizes=[], costs=[], num_processors=3, initial=[])
        assert inst.num_jobs == 0
        assert inst.initial_makespan == 0.0

    def test_arrays_are_readonly(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            inst.sizes[0] = 2.0
        with pytest.raises(ValueError):
            inst.initial[0] = 1


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="positive"):
            make_instance(sizes=[0.0], initial=[0])

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_instance(sizes=[1.0], initial=[0], costs=[-1.0])

    def test_rejects_bad_processor(self):
        with pytest.raises(ValueError, match="outside"):
            make_instance(sizes=[1.0], initial=[5], num_processors=2)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Instance(sizes=[1.0, 2.0], costs=[1.0], num_processors=1, initial=[0, 0])

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            Instance(sizes=[1.0], costs=[1.0], num_processors=0, initial=[0])

    def test_rejects_nan_size(self):
        with pytest.raises(ValueError, match="finite"):
            make_instance(sizes=[1.0, float("nan")], initial=[0, 0])

    def test_rejects_infinite_size(self):
        with pytest.raises(ValueError, match="finite"):
            make_instance(sizes=[float("inf")], initial=[0])

    def test_rejects_nan_cost(self):
        with pytest.raises(ValueError, match="finite"):
            make_instance(
                sizes=[1.0], initial=[0], costs=[float("nan")]
            )

    def test_rejects_infinite_cost(self):
        with pytest.raises(ValueError, match="finite"):
            make_instance(
                sizes=[1.0], initial=[0], costs=[float("inf")]
            )


class TestDerivedQuantities:
    def test_initial_loads(self):
        inst = make_instance(sizes=[3, 2, 5], initial=[0, 0, 1], num_processors=3)
        assert inst.initial_loads.tolist() == [5.0, 5.0, 0.0]
        assert inst.initial_makespan == 5.0

    def test_average_and_max(self):
        inst = make_instance(sizes=[4, 2], initial=[0, 0], num_processors=2)
        assert inst.average_load == 3.0
        assert inst.max_size == 4.0

    def test_jobs_on(self):
        inst = make_instance(sizes=[1, 1, 1], initial=[1, 0, 1], num_processors=2)
        assert inst.jobs_on(1).tolist() == [0, 2]
        assert inst.jobs_on(0).tolist() == [1]

    def test_job_materialization(self):
        inst = make_instance(sizes=[7.0], initial=[0], costs=[3.0])
        job = inst.job(0)
        assert job.size == 7.0 and job.cost == 3.0 and job.index == 0
        assert [j.index for j in inst.jobs()] == [0]


class TestSerialization:
    def test_roundtrip_dict(self):
        inst = make_instance(sizes=[3, 2], initial=[0, 1], costs=[1, 4])
        again = Instance.from_dict(inst.to_dict())
        assert np.array_equal(again.sizes, inst.sizes)
        assert np.array_equal(again.costs, inst.costs)
        assert np.array_equal(again.initial, inst.initial)
        assert again.num_processors == inst.num_processors

    def test_roundtrip_json(self):
        inst = make_instance(sizes=[3.5, 2.25], initial=[0, 1])
        again = Instance.from_json(inst.to_json())
        assert np.array_equal(again.sizes, inst.sizes)

    @settings(max_examples=25)
    @given(small_instances(unit_costs=False))
    def test_roundtrip_property(self, inst):
        again = Instance.from_json(inst.to_json())
        assert np.array_equal(again.sizes, inst.sizes)
        assert np.array_equal(again.costs, inst.costs)
        assert np.array_equal(again.initial, inst.initial)


class TestDerivedInstances:
    def test_with_unit_costs(self):
        inst = make_instance(sizes=[1, 2], initial=[0, 0], costs=[9, 9])
        assert inst.with_unit_costs().is_unit_cost

    def test_with_initial(self):
        inst = make_instance(sizes=[1, 2], initial=[0, 0], num_processors=2)
        moved = inst.with_initial([1, 1])
        assert moved.initial_loads.tolist() == [0.0, 3.0]

    def test_scaled(self):
        inst = make_instance(sizes=[1, 2], initial=[0, 1], num_processors=2)
        big = inst.scaled(10.0)
        assert big.total_size == 30.0
        assert big.initial_makespan == 20.0

    def test_scaled_rejects_nonpositive(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            inst.scaled(0.0)
