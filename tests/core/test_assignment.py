"""Unit tests for Assignment accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Assignment, make_instance
from repro.core.assignment import apply_sequence

from ..conftest import small_instances


@pytest.fixture
def inst():
    return make_instance(
        sizes=[4, 3, 2, 1], initial=[0, 0, 1, 1], num_processors=3,
        costs=[10, 5, 2, 1],
    )


class TestBasics:
    def test_initial_identity(self, inst):
        a = Assignment.initial(inst)
        assert a.num_moves == 0
        assert a.relocation_cost == 0.0
        assert a.makespan == inst.initial_makespan

    def test_loads(self, inst):
        a = Assignment(instance=inst, mapping=[2, 0, 1, 1])
        assert a.loads.tolist() == [3.0, 3.0, 4.0]
        assert a.makespan == 4.0
        assert a.min_load == 3.0
        assert a.load_of(2) == 4.0

    def test_jobs_on(self, inst):
        a = Assignment(instance=inst, mapping=[2, 0, 1, 1])
        assert a.jobs_on(1).tolist() == [2, 3]

    def test_moves_and_cost(self, inst):
        a = Assignment(instance=inst, mapping=[0, 2, 1, 0])
        assert a.num_moves == 2
        assert set(a.moved_jobs.tolist()) == {1, 3}
        assert a.relocation_cost == 6.0
        assert a.moves_as_dict() == {1: 2, 3: 0}

    def test_from_moves(self, inst):
        a = Assignment.from_moves(inst, {0: 2})
        assert a.mapping.tolist() == [2, 0, 1, 1]
        assert a.num_moves == 1

    def test_with_move(self, inst):
        a = Assignment.initial(inst).with_move(3, 2)
        assert a.num_moves == 1
        assert a.mapping[3] == 2

    def test_apply_sequence_override(self, inst):
        a = apply_sequence(inst, [(0, 1), (0, 2)])
        assert a.mapping[0] == 2
        assert a.num_moves == 1


class TestValidation:
    def test_rejects_wrong_shape(self, inst):
        with pytest.raises(ValueError):
            Assignment(instance=inst, mapping=[0, 1])

    def test_rejects_unknown_processor(self, inst):
        with pytest.raises(ValueError):
            Assignment(instance=inst, mapping=[0, 0, 0, 7])

    def test_validate_move_budget(self, inst):
        a = Assignment(instance=inst, mapping=[2, 2, 1, 1])
        a.validate(max_moves=2)
        with pytest.raises(AssertionError):
            a.validate(max_moves=1)

    def test_validate_cost_budget(self, inst):
        a = Assignment(instance=inst, mapping=[0, 0, 1, 0])  # moves job 3, cost 1
        a.validate(budget=1.0)
        with pytest.raises(AssertionError):
            a.validate(budget=0.5)

    def test_validate_makespan(self, inst):
        a = Assignment.initial(inst)  # makespan 7
        a.validate(max_makespan=7.0)
        with pytest.raises(AssertionError):
            a.validate(max_makespan=6.0)


class TestProperties:
    @settings(max_examples=40)
    @given(small_instances(), st.randoms(use_true_random=False))
    def test_load_conservation(self, inst, rnd):
        mapping = [
            rnd.randrange(inst.num_processors) for _ in range(inst.num_jobs)
        ]
        a = Assignment(instance=inst, mapping=np.array(mapping))
        assert a.loads.sum() == pytest.approx(inst.total_size)
        a.validate()

    @settings(max_examples=40)
    @given(small_instances(unit_costs=True))
    def test_unit_cost_moves_equals_cost(self, inst):
        mapping = (np.array(inst.initial) + 1) % inst.num_processors
        a = Assignment(instance=inst, mapping=mapping)
        assert a.relocation_cost == pytest.approx(float(a.num_moves))

    @settings(max_examples=40)
    @given(small_instances())
    def test_makespan_bounds(self, inst):
        a = Assignment.initial(inst)
        assert a.makespan >= inst.average_load - 1e-9
        assert a.makespan >= inst.max_size - 1e-9
