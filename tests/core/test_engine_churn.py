"""Tests for the engine's O(churn) decide path and the rolling hash.

The O(churn) path (churn hints, hint-based table patching, the
heap-merged incremental scan) carries the same transparent-acceleration
contract as the rest of the engine: every decision must be
byte-identical to a from-scratch ``m_partition_rebalance`` call,
including the ``thresholds_tried`` count (the scans must stop at the
same threshold for the same reason).  The rolling fingerprint carries a
contract of its own: rolling a churn of any size lands on the exact
digest a fresh O(n) recompute produces.
"""

import numpy as np
import pytest

from repro.core import RebalanceEngine, build_tables, m_partition_rebalance
from repro.core import rollhash
from repro.core.engine import _merge_hints, _normalize_hint, snapshot_fingerprint
from repro.core.instance import Instance
from repro.core.partition_incremental import scan_incremental
from repro.core.thresholds import patch_tables_hint, proc_candidates


def _random_state(rng, n, m, integer=False):
    if integer:
        sizes = rng.integers(1, 12, size=n).astype(np.float64)
    else:
        sizes = rng.uniform(0.5, 9.5, size=n)
    costs = np.ones(n)
    initial = rng.integers(0, m, size=n).astype(np.int64)
    return sizes, costs, initial


def _reference(sizes, costs, m, initial, k):
    return m_partition_rebalance(
        Instance(
            sizes=sizes.copy(),
            costs=costs.copy(),
            num_processors=m,
            initial=initial.copy(),
        ),
        k,
    )


def assert_same_decision(a, b):
    assert a.guessed_opt == b.guessed_opt
    assert a.planned_moves == b.planned_moves
    assert np.array_equal(a.assignment.mapping, b.assignment.mapping)


class TestRollingFingerprint:
    """roll() must land on the byte-identical fresh digest."""

    def test_roll_matches_fresh_recompute(self):
        rng = np.random.default_rng(11)
        n, m = 200, 8
        sizes, costs, initial = _random_state(rng, n, m)
        fp = rollhash.fingerprint_state(sizes, costs, initial, m)
        for _ in range(25):
            idx = np.sort(rng.choice(n, size=7, replace=False)).astype(np.int64)
            old = (sizes[idx].copy(), costs[idx].copy(), initial[idx].copy())
            sizes[idx] = rng.uniform(0.5, 9.5, 7)
            costs[idx] = rng.uniform(0.5, 2.0, 7)
            initial[idx] = rng.integers(0, m, 7)
            fp.roll(idx, *old, sizes[idx], costs[idx], initial[idx])
            fresh = rollhash.fingerprint_state(sizes, costs, initial, m)
            assert fp.digest() == fresh.digest()

    def test_each_field_changes_the_digest(self):
        rng = np.random.default_rng(12)
        n, m = 50, 4
        sizes, costs, initial = _random_state(rng, n, m)
        base = rollhash.fingerprint_state(sizes, costs, initial, m).digest()
        s2 = sizes.copy()
        s2[3] += 1.0
        assert rollhash.fingerprint_state(s2, costs, initial, m).digest() != base
        c2 = costs.copy()
        c2[3] += 1.0
        assert rollhash.fingerprint_state(sizes, c2, initial, m).digest() != base
        i2 = initial.copy()
        i2[3] = (i2[3] + 1) % m
        assert rollhash.fingerprint_state(sizes, costs, i2, m).digest() != base
        assert rollhash.fingerprint_state(sizes, costs, initial, m + 1).digest() != base

    def test_site_identity_matters(self):
        # Swapping the sizes of two sites with equal other fields must
        # change the digest: the per-site term mixes the index.
        sizes = np.array([1.0, 2.0, 3.0])
        costs = np.ones(3)
        initial = np.array([0, 0, 0], dtype=np.int64)
        base = rollhash.fingerprint_state(sizes, costs, initial, 2).digest()
        swapped = sizes[[1, 0, 2]]
        assert rollhash.fingerprint_state(swapped, costs, initial, 2).digest() != base

    def test_instance_fingerprint_matches_state(self):
        rng = np.random.default_rng(13)
        sizes, costs, initial = _random_state(rng, 80, 5)
        inst = Instance(sizes=sizes, costs=costs, num_processors=5, initial=initial)
        state = rollhash.fingerprint_state(sizes, costs, initial, 5)
        assert rollhash.instance_fingerprint(inst) == state.digest()
        assert snapshot_fingerprint(inst) == state.digest()
        assert len(state.digest()) == 16

    def test_digest_is_memoized_on_instance(self):
        rng = np.random.default_rng(14)
        sizes, costs, initial = _random_state(rng, 30, 3)
        inst = Instance(sizes=sizes, costs=costs, num_processors=3, initial=initial)
        assert snapshot_fingerprint(inst) is snapshot_fingerprint(inst)


class TestHintNormalization:
    def test_first_occurrence_wins(self):
        hint = _normalize_hint(
            (
                np.array([5, 2, 5], dtype=np.int64),
                np.array([1.0, 2.0, 9.0]),
                np.array([1.0, 1.0, 1.0]),
                np.array([0, 1, 3], dtype=np.int64),
            )
        )
        assert np.array_equal(hint[0], [2, 5])
        assert np.array_equal(hint[1], [2.0, 1.0])
        assert np.array_equal(hint[3], [1, 0])

    def test_merge_keeps_oldest_old_values(self):
        pending = _normalize_hint(
            (
                np.array([4], dtype=np.int64),
                np.array([7.0]),
                np.array([1.0]),
                np.array([2], dtype=np.int64),
            )
        )
        fresh = _normalize_hint(
            (
                np.array([4, 9], dtype=np.int64),
                np.array([8.0, 3.0]),
                np.array([1.0, 1.0]),
                np.array([5, 1], dtype=np.int64),
            )
        )
        merged = _merge_hints(pending, fresh)
        assert np.array_equal(merged[0], [4, 9])
        # Job 4's old size must come from the *pending* (older) record.
        assert merged[1][0] == 7.0
        assert merged[3][0] == 2

    def test_merge_with_none(self):
        h = _normalize_hint(
            (
                np.array([1], dtype=np.int64),
                np.array([1.0]),
                np.array([1.0]),
                np.array([0], dtype=np.int64),
            )
        )
        assert _merge_hints(None, h) is h
        assert _merge_hints(h, None) is h


class TestPatchTablesHint:
    """Hint-based bucket patching must reproduce build_tables buckets
    byte-for-byte (sizes_asc excepted — it is deliberately stale)."""

    @pytest.mark.parametrize("integer", [False, True])
    def test_patched_buckets_match_full_build(self, integer):
        rng = np.random.default_rng(21)
        n, m = 300, 7
        sizes, costs, initial = _random_state(rng, n, m, integer)
        inst0 = Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy())
        tables = build_tables(inst0)
        for _ in range(10):
            idx = np.sort(rng.choice(n, size=15, replace=False)).astype(np.int64)
            old_initial = initial[idx].copy()
            sizes[idx] = (
                rng.integers(1, 12, 15).astype(np.float64)
                if integer
                else rng.uniform(0.5, 9.5, 15)
            )
            moved = rng.random(15) < 0.4
            initial[idx[moved]] = rng.integers(0, m, int(moved.sum()))
            inst = Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy())
            tables, changed_procs = patch_tables_hint(tables, inst, idx, old_initial)
            expected = build_tables(inst)
            for pa, pe in zip(tables.processors, expected.processors):
                assert np.array_equal(pa.jobs_asc, pe.jobs_asc)
                assert np.array_equal(pa.sizes_asc, pe.sizes_asc)
                assert np.array_equal(pa.prefix, pe.prefix)
            touched = set(np.concatenate((old_initial, initial[idx])).tolist())
            assert set(changed_procs.tolist()) == touched

    def test_empty_hint_is_free(self):
        rng = np.random.default_rng(22)
        sizes, costs, initial = _random_state(rng, 40, 3)
        inst = Instance.trusted(sizes, costs, 3, initial)
        tables = build_tables(inst)
        same, changed = patch_tables_hint(
            tables, inst, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert same is tables
        assert changed.shape[0] == 0


class TestScanIncremental:
    """The lazy-stream scan must stop exactly where the full scan stops."""

    def test_matches_full_scan_stop(self):
        rng = np.random.default_rng(31)
        for trial in range(20):
            n = int(rng.integers(10, 120))
            m = int(rng.integers(2, 9))
            k = int(rng.integers(0, 20))
            sizes, costs, initial = _random_state(
                rng, n, m, integer=bool(trial % 2)
            )
            inst = Instance.trusted(sizes, costs, m, initial)
            tables = build_tables(inst)
            ref = m_partition_rebalance(
                Instance(sizes=sizes.copy(), costs=costs.copy(),
                         num_processors=m, initial=initial.copy()),
                k,
            )
            scan = scan_incremental(tables, k, inst.average_load)
            assert scan is not None
            stop_guess, k_hat, tried, _refreshes, state = scan
            assert stop_guess == ref.guessed_opt
            assert k_hat == ref.planned_moves
            assert tried == ref.meta["thresholds_tried"]
            assert state.total_large_jobs == ref.meta["L_T"]

    def test_lazy_streams_enumerate_proc_candidates(self):
        # The lazy cursors and the materialized per-processor stream
        # must expose the same value sequence.
        from repro.core.partition_incremental import _LazyStreams

        rng = np.random.default_rng(32)
        sizes, costs, initial = _random_state(rng, 60, 4, integer=True)
        inst = Instance.trusted(sizes, costs, 4, initial)
        tables = build_tables(inst)
        for i, proc in enumerate(tables.processors):
            expected = np.unique(proc_candidates(proc))
            streams = _LazyStreams(tables)
            streams.seed(i, -1.0)  # cursors at the very beginning
            got = []
            cur = -np.inf
            while True:
                head = streams.head(i, cur)
                if head == np.inf:
                    break
                got.append(head)
                cur = head
            assert np.array_equal(np.asarray(got), expected)


class TestChurnHintDecides:
    """End-to-end differential: hinted decides vs from-scratch rescans."""

    def _closed_loop(self, seed, n, m, k, epochs, churn, integer=False):
        rng = np.random.default_rng(seed)
        sizes, costs, initial = _random_state(rng, n, m, integer)
        eng = RebalanceEngine(k=k)
        hint = None
        for e in range(epochs):
            inst = Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy())
            r = eng.rebalance(inst, changed=hint)
            ref = _reference(sizes, costs, m, initial, k)
            assert_same_decision(r, ref)
            assert r.meta["thresholds_tried"] == ref.meta["thresholds_tried"]
            # Closed loop: apply the moves; the moved jobs enter the
            # hint with their pre-move placement, exactly like the
            # server's delta frames.
            mapping = np.asarray(r.assignment.mapping, dtype=np.int64)
            mv = np.flatnonzero(mapping != initial).astype(np.int64)
            parts = [
                (mv, sizes[mv].copy(), costs[mv].copy(), initial[mv].copy())
            ]
            initial = mapping.copy()
            c = churn if e % 5 else churn * 20  # periodic fallback burst
            idx = np.sort(
                rng.choice(n, size=min(c, n), replace=False)
            ).astype(np.int64)
            parts.append(
                (idx, sizes[idx].copy(), costs[idx].copy(), initial[idx].copy())
            )
            sizes[idx] = (
                rng.integers(1, 12, idx.shape[0]).astype(np.float64)
                if integer
                else rng.uniform(0.5, 9.5, idx.shape[0])
            )
            moved = rng.random(idx.shape[0]) < 0.3
            initial[idx[moved]] = rng.integers(0, m, int(moved.sum()))
            hint = tuple(
                np.concatenate([p[f] for p in parts]) for f in range(4)
            )
        return eng.stats

    def test_float_sizes_stream(self):
        stats = self._closed_loop(41, 800, 8, 48, 30, 10)
        assert stats.incremental_decides > 0

    def test_integer_ties_cross_fallback_threshold(self):
        # Integer sizes maximize threshold-value ties; the periodic
        # burst epochs exceed churn_limit and must fall back to the
        # vectorized full scan — still byte-identical.
        stats = self._closed_loop(42, 500, 6, 32, 30, 8, integer=True)
        assert stats.incremental_decides > 0
        assert stats.churn_fallbacks > 0

    def test_arrival_departure_forces_full_rebuild(self):
        rng = np.random.default_rng(43)
        n, m, k = 200, 5, 16
        sizes, costs, initial = _random_state(rng, n, m)
        eng = RebalanceEngine(k=k)
        hint = None
        for e in range(15):
            inst = Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy())
            r = eng.rebalance(inst, changed=hint)
            ref = _reference(sizes, costs, m, initial, k)
            assert_same_decision(r, ref)
            mapping = np.asarray(r.assignment.mapping, dtype=np.int64)
            mv = np.flatnonzero(mapping != initial).astype(np.int64)
            mv_old = (mv, sizes[mv].copy(), costs[mv].copy(), initial[mv].copy())
            initial = mapping.copy()
            if e % 3 == 0:
                # Site arrival/departure: the job count changes, so no
                # hint is possible and the engine must rebuild.
                grow = rng.random() < 0.5
                if grow:
                    extra = int(rng.integers(1, 15))
                    sizes = np.concatenate(
                        [sizes, rng.uniform(0.5, 9.5, extra)]
                    )
                    costs = np.concatenate([costs, np.ones(extra)])
                    initial = np.concatenate(
                        [initial, rng.integers(0, m, extra).astype(np.int64)]
                    )
                else:
                    keep = sizes.shape[0] - int(rng.integers(1, 15))
                    sizes = sizes[:keep].copy()
                    costs = costs[:keep].copy()
                    initial = initial[:keep].copy()
                hint = None
            else:
                nn = sizes.shape[0]
                idx = np.sort(
                    rng.choice(nn, size=min(6, nn), replace=False)
                ).astype(np.int64)
                old = (idx, sizes[idx].copy(), costs[idx].copy(),
                       initial[idx].copy())
                sizes[idx] = rng.uniform(0.5, 9.5, idx.shape[0])
                hint = tuple(
                    np.concatenate([mv_old[f], old[f]]) for f in range(4)
                )
        assert eng.stats.full_builds >= 5
        assert eng.stats.incremental_decides > 0

    def test_note_churn_accumulates_into_next_decide(self):
        rng = np.random.default_rng(44)
        n, m, k = 150, 4, 12
        sizes, costs, initial = _random_state(rng, n, m)
        eng = RebalanceEngine(k=k)
        eng.rebalance(Instance.trusted(sizes.copy(), costs.copy(), m,
                                       initial.copy()))
        # Two apply-only advances recorded out of band.
        for _ in range(2):
            idx = np.sort(rng.choice(n, size=5, replace=False)).astype(np.int64)
            eng.note_churn(idx, sizes[idx].copy(), costs[idx].copy(),
                           initial[idx].copy())
            sizes[idx] = rng.uniform(0.5, 9.5, 5)
        idx = np.sort(rng.choice(n, size=5, replace=False)).astype(np.int64)
        old = (idx, sizes[idx].copy(), costs[idx].copy(), initial[idx].copy())
        sizes[idx] = rng.uniform(0.5, 9.5, 5)
        r = eng.rebalance(
            Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy()),
            changed=old,
        )
        assert_same_decision(r, _reference(sizes, costs, m, initial, k))

    def test_cache_hit_with_churn_keeps_pending(self):
        # A decide that hits the decision cache must still record the
        # churn so the *next* miss patches the tables correctly.
        rng = np.random.default_rng(45)
        n, m, k = 120, 4, 10
        sizes, costs, initial = _random_state(rng, n, m)
        eng = RebalanceEngine(k=k)
        eng.rebalance(Instance.trusted(sizes.copy(), costs.copy(), m,
                                       initial.copy()))
        # Flip one job away and back: the second decide hits the cache
        # (same fingerprint) while the arrays went A -> B -> A.
        idx = np.array([7], dtype=np.int64)
        old_size = sizes[idx].copy()
        sizes[idx] = old_size + 1.0
        eng.rebalance(
            Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy()),
            changed=(idx, old_size, costs[idx].copy(), initial[idx].copy()),
        )
        back_old = sizes[idx].copy()
        sizes[idx] = old_size
        r = eng.rebalance(
            Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy()),
            changed=(idx, back_old, costs[idx].copy(), initial[idx].copy()),
        )
        assert r.guessed_opt == _reference(sizes, costs, m, initial, k).guessed_opt
        # Now a real change decides incrementally off the pending hints.
        idx2 = np.array([3, 9], dtype=np.int64)
        old2 = (idx2, sizes[idx2].copy(), costs[idx2].copy(),
                initial[idx2].copy())
        sizes[idx2] += 0.25
        r2 = eng.rebalance(
            Instance.trusted(sizes.copy(), costs.copy(), m, initial.copy()),
            changed=old2,
        )
        assert_same_decision(r2, _reference(sizes, costs, m, initial, k))

    def test_stats_count_incremental_decides(self):
        stats = self._closed_loop(46, 300, 4, 24, 10, 4)
        d = stats.as_dict()
        assert d["incremental_decides"] > 0
        assert "churn_fallbacks" in d
