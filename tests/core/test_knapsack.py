"""Tests for the keep-max-cost knapsack solvers (Section 3.2)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    keep_max_cost,
    keep_max_cost_exact,
    keep_max_cost_fptas,
    min_removal_cost,
)


def brute_force_best(sizes, costs, capacity):
    """Max kept cost over all feasible subsets."""
    n = len(sizes)
    best = 0.0
    for r in range(n + 1):
        for subset in itertools.combinations(range(n), r):
            if sum(sizes[i] for i in subset) <= capacity + 1e-12:
                best = max(best, sum(costs[i] for i in subset))
    return best


small_knapsacks = st.tuples(
    st.lists(st.integers(min_value=1, max_value=15), min_size=0, max_size=8),
    st.integers(min_value=0, max_value=40),
).flatmap(
    lambda sc: st.tuples(
        st.just(sc[0]),
        st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=len(sc[0]), max_size=len(sc[0]),
        ),
        st.just(sc[1]),
    )
)


class TestExact:
    def test_trivial_all_fit(self):
        sol = keep_max_cost_exact([1, 2], [5, 5], 10)
        assert set(sol.keep) == {0, 1}
        assert sol.kept_cost == 10.0

    def test_must_choose(self):
        sol = keep_max_cost_exact([3, 3], [1, 9], 3)
        assert sol.keep == (1,)
        assert sol.kept_cost == 9.0

    def test_empty(self):
        sol = keep_max_cost_exact([], [], 5)
        assert sol.keep == ()

    def test_zero_capacity(self):
        sol = keep_max_cost_exact([1], [7], 0)
        assert sol.keep == ()

    def test_removed_complement(self):
        sol = keep_max_cost_exact([3, 3, 3], [1, 9, 2], 6)
        assert set(sol.keep) | set(sol.removed(3)) == {0, 1, 2}
        assert not set(sol.keep) & set(sol.removed(3))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            keep_max_cost_exact([0], [1], 5)
        with pytest.raises(ValueError):
            keep_max_cost_exact([1], [-1], 5)
        with pytest.raises(ValueError):
            keep_max_cost_exact([1, 2], [1], 5)

    @settings(max_examples=80, deadline=None)
    @given(small_knapsacks)
    def test_matches_brute_force(self, case):
        sizes, costs, capacity = case
        sol = keep_max_cost_exact(sizes, costs, capacity)
        assert sol.kept_size <= capacity + 1e-9
        assert sol.kept_cost == pytest.approx(
            brute_force_best(sizes, costs, capacity)
        )

    def test_fractional_sizes_round_up_safely(self):
        # 2.5 + 2.5 = 5.0 fits exactly; grid rounding must not overpack.
        sol = keep_max_cost_exact([2.5, 2.5, 2.5], [1, 1, 1], 5.0)
        assert sol.kept_size <= 5.0 + 1e-9
        assert len(sol.keep) <= 2


class TestFPTAS:
    @settings(max_examples=60, deadline=None)
    @given(small_knapsacks)
    def test_feasible_and_near_optimal(self, case):
        sizes, costs, capacity = case
        opt = brute_force_best(sizes, costs, capacity)
        for eps in (0.5, 0.1):
            sol = keep_max_cost_fptas(sizes, costs, capacity, eps=eps)
            assert sol.kept_size <= capacity + 1e-9
            assert sol.kept_cost >= (1.0 - eps) * opt - 1e-9

    def test_oversized_item_does_not_inflate_scale_step(self):
        # Regression: the size-3 item can never fit under capacity 2,
        # but its cost 7 used to enter c_max and widen the rounding
        # step until both keepable items scaled to cost 0 — returning
        # kept_cost 0 against an optimum of 1.
        for backend in ("kernel", "reference"):
            sol = keep_max_cost_fptas(
                [3, 2, 1], [7, 1, 0], 2, eps=0.5, backend=backend
            )
            assert sol.kept_size <= 2.0
            assert sol.kept_cost >= 0.5 * 1 - 1e-9

    def test_all_zero_costs_keeps_feasible(self):
        sol = keep_max_cost_fptas([2, 3], [0, 0], 4)
        assert sol.kept_size <= 4.0
        assert sol.kept_cost == 0.0

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            keep_max_cost_fptas([1], [1], 2, eps=0.0)
        with pytest.raises(ValueError):
            keep_max_cost_fptas([1], [1], 2, eps=1.0)


class TestDispatch:
    def test_auto_small_uses_exact(self):
        sol = keep_max_cost([3, 3], [1, 9], 3, method="auto")
        assert sol.kept_cost == 9.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            keep_max_cost([1], [1], 2, method="magic")

    def test_min_removal_cost_complement(self):
        cost, removed = min_removal_cost([3, 3], [1, 9], 3, method="exact")
        assert cost == pytest.approx(1.0)
        assert removed == (0,)

    @settings(max_examples=40, deadline=None)
    @given(small_knapsacks)
    def test_removal_plus_kept_is_total(self, case):
        sizes, costs, capacity = case
        cost, removed = min_removal_cost(sizes, costs, capacity, method="exact")
        assert cost + brute_force_best(sizes, costs, capacity) == pytest.approx(
            float(sum(costs))
        )
