"""Tests for the OPT lower bounds, including Lemma 1's G1 bound."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    average_load_bound,
    combined_lower_bound,
    exact_rebalance,
    greedy_removal_bound,
    make_instance,
    max_job_bound,
)

from ..conftest import instances_with_k, small_instances


def brute_force_removal_bound(inst, k):
    """Minimum possible max load over all ways of deleting k jobs."""
    n = inst.num_jobs
    best = float("inf")
    for removed in itertools.combinations(range(n), min(k, n)):
        loads = np.zeros(inst.num_processors)
        for j in range(n):
            if j not in removed:
                loads[inst.initial[j]] += inst.sizes[j]
        best = min(best, loads.max())
    return best


class TestStructuralBounds:
    def test_average(self):
        inst = make_instance(sizes=[4, 2], initial=[0, 0], num_processors=3)
        assert average_load_bound(inst) == pytest.approx(2.0)

    def test_max_job(self):
        inst = make_instance(sizes=[4, 2], initial=[0, 0], num_processors=3)
        assert max_job_bound(inst) == 4.0

    def test_combined_without_k(self):
        inst = make_instance(sizes=[9, 1], initial=[0, 0], num_processors=2)
        assert combined_lower_bound(inst) == 9.0


class TestGreedyRemovalBound:
    def test_lemma1_example(self):
        # Removing the single largest job from the hot processor.
        inst = make_instance(sizes=[5, 3, 4], initial=[0, 0, 1], num_processors=2)
        assert greedy_removal_bound(inst, 0) == 8.0
        assert greedy_removal_bound(inst, 1) == 4.0
        assert greedy_removal_bound(inst, 2) == 3.0

    def test_k_exceeding_jobs(self):
        inst = make_instance(sizes=[5, 3], initial=[0, 0], num_processors=2)
        assert greedy_removal_bound(inst, 10) == 0.0

    def test_rejects_negative_k(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            greedy_removal_bound(inst, -1)

    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_matches_brute_force_optimum(self, case):
        """Lemma 1: greedy removal is the *optimal* removal strategy."""
        inst, k = case
        assert greedy_removal_bound(inst, k) == pytest.approx(
            brute_force_removal_bound(inst, k)
        )

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_lower_bounds_opt(self, case):
        """G1 <= OPT(k): reassigning the removed jobs only adds load."""
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        assert greedy_removal_bound(inst, k) <= opt + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(small_instances(max_jobs=7))
    def test_monotone_in_k(self, inst):
        values = [greedy_removal_bound(inst, k) for k in range(inst.num_jobs + 1)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @settings(max_examples=20, deadline=None)
    @given(instances_with_k(max_jobs=7, max_processors=3))
    def test_combined_bound_valid(self, case):
        inst, k = case
        opt = exact_rebalance(inst, k=k).makespan
        assert combined_lower_bound(inst, k) <= opt + 1e-9
