"""Tests for the unified dispatch layer."""

import pytest

import repro.baselines  # noqa: F401  (registers baseline algorithms)
from repro.core import (
    available_algorithms,
    make_instance,
    rebalance,
    register_algorithm,
)


@pytest.fixture
def inst():
    return make_instance(
        sizes=[7, 3, 3, 3], initial=[0, 0, 0, 1], num_processors=2
    )


class TestDispatch:
    def test_requires_some_budget(self, inst):
        with pytest.raises(ValueError, match="k .*or budget"):
            rebalance(inst, algorithm="greedy")

    def test_rejects_negative_budgets(self, inst):
        with pytest.raises(ValueError):
            rebalance(inst, algorithm="greedy", k=-1)
        with pytest.raises(ValueError):
            rebalance(inst, algorithm="ptas", budget=-1.0)

    def test_unknown_algorithm(self, inst):
        with pytest.raises(ValueError, match="unknown algorithm"):
            rebalance(inst, algorithm="sorcery", k=1)

    @pytest.mark.parametrize(
        "name", ["greedy", "m-partition", "cost-partition", "ptas", "exact"]
    )
    def test_builtins_run(self, inst, name):
        res = rebalance(inst, algorithm=name, k=2)
        assert res.makespan <= inst.initial_makespan + 1e-9
        res.assignment.validate()

    @pytest.mark.parametrize(
        "name", ["lpt-full", "shmoys-tardos", "hill-climb", "random", "diffusion"]
    )
    def test_baselines_run(self, inst, name):
        res = rebalance(inst, algorithm=name, k=2)
        res.assignment.validate()

    def test_unit_cost_budget_translation(self, inst):
        """A cost budget on a unit-cost instance becomes a move budget."""
        res = rebalance(inst, algorithm="greedy", budget=2.0)
        assert res.num_moves <= 2

    def test_weighted_needs_cost_algorithms(self):
        weighted = make_instance(
            sizes=[5, 5], initial=[0, 0], num_processors=2, costs=[2, 3]
        )
        with pytest.raises(ValueError, match="move budget"):
            rebalance(weighted, algorithm="greedy", budget=2.0)

    def test_registry_rejects_duplicates(self):
        def dummy(instance, k=None, budget=None, **kw):
            raise NotImplementedError

        register_algorithm("test-dummy-unique", dummy)
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("test-dummy-unique", dummy)

    def test_available_lists_builtins_and_baselines(self):
        names = available_algorithms()
        assert "greedy" in names and "m-partition" in names
        assert "shmoys-tardos" in names
