"""Tests for threshold enumeration (Section 3.1, Lemma 5)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import build_tables, candidate_guesses, make_instance

from ..conftest import small_instances


def brute_a_value(inst, proc, guess):
    """a_i from its Definition: min #smalls removed so remaining <= guess/2."""
    jobs = inst.jobs_on(proc)
    smalls = sorted(
        (float(inst.sizes[j]) for j in jobs if inst.sizes[j] <= guess / 2),
        reverse=True,
    )
    total = sum(smalls)
    removed = 0
    while total > guess / 2 + 1e-12:
        total -= smalls[removed]
        removed += 1
    return removed


def brute_b_value(inst, proc, guess):
    """b_i: after Step 1 (keep smallest large), min removals so total <= guess."""
    jobs = inst.jobs_on(proc)
    smalls = [float(inst.sizes[j]) for j in jobs if inst.sizes[j] <= guess / 2]
    larges = sorted(
        float(inst.sizes[j]) for j in jobs if inst.sizes[j] > guess / 2
    )
    current = sorted(smalls + larges[:1], reverse=True)
    total = sum(current)
    removed = 0
    while total > guess + 1e-12:
        total -= current[removed]
        removed += 1
    return removed


class TestProcessorTables:
    def test_ascending_order(self):
        inst = make_instance(sizes=[5, 1, 3], initial=[0, 0, 0], num_processors=1)
        tables = build_tables(inst)
        assert tables.processors[0].sizes_asc.tolist() == [1.0, 3.0, 5.0]
        assert tables.processors[0].prefix.tolist() == [0.0, 1.0, 4.0, 9.0]

    def test_small_count(self):
        inst = make_instance(sizes=[5, 1, 3], initial=[0, 0, 0], num_processors=1)
        proc = build_tables(inst).processors[0]
        assert proc.small_count(10.0) == 3  # threshold 5: all small
        assert proc.small_count(6.0) == 2  # threshold 3: 5 is large
        assert proc.small_count(2.0) == 1  # threshold 1: only job 1 small

    def test_empty_processor(self):
        inst = make_instance(sizes=[1.0], initial=[0], num_processors=3)
        tables = build_tables(inst)
        assert tables.processors[2].num_jobs == 0
        assert tables.processors[2].a_value(1.0) == 0
        assert tables.processors[2].b_value(1.0) == 0

    def test_total_large(self):
        inst = make_instance(sizes=[5, 1, 3], initial=[0, 0, 0], num_processors=1)
        tables = build_tables(inst)
        assert tables.total_large(10.0) == 0
        assert tables.total_large(6.0) == 1
        assert tables.total_large(1.0) == 3

    @settings(max_examples=50, deadline=None)
    @given(small_instances(max_jobs=8, max_processors=3))
    def test_a_b_match_definitions(self, inst):
        tables = build_tables(inst)
        for guess in candidate_guesses(tables):
            for p in range(inst.num_processors):
                proc = tables.processors[p]
                assert proc.a_value(guess) == brute_a_value(inst, p, guess)
                assert proc.b_value(guess) == brute_b_value(inst, p, guess)


class TestCandidateGuesses:
    def test_sorted_unique(self):
        inst = make_instance(
            sizes=[2, 2, 4], initial=[0, 0, 1], num_processors=2
        )
        cands = candidate_guesses(build_tables(inst))
        assert np.all(np.diff(cands) > 0)

    def test_includes_doubled_sizes(self):
        inst = make_instance(sizes=[3, 7], initial=[0, 1], num_processors=2)
        cands = set(candidate_guesses(build_tables(inst)).tolist())
        assert {6.0, 14.0} <= cands

    def test_includes_prefix_sums(self):
        inst = make_instance(sizes=[3, 7], initial=[0, 0], num_processors=1)
        cands = set(candidate_guesses(build_tables(inst)).tolist())
        assert {3.0, 10.0, 20.0} <= cands

    @settings(max_examples=30, deadline=None)
    @given(small_instances(max_jobs=6, max_processors=3))
    def test_piecewise_constant_between_thresholds(self, inst):
        """Lemma 5: (L_T, a_i, b_i) is constant strictly between
        consecutive threshold values."""
        tables = build_tables(inst)
        cands = candidate_guesses(tables)
        for lo, hi in zip(cands, cands[1:]):
            if hi - lo < 1e-9 * max(1.0, hi):
                continue  # interval too thin for distinct float probes
            probes = np.linspace(lo, hi, 5)[1:-1]  # interior points
            signatures = set()
            for guess in [float(lo)] + [float(x) for x in probes]:
                sig = (
                    tables.total_large(guess),
                    tuple(p.a_value(guess) for p in tables.processors),
                    tuple(p.b_value(guess) for p in tables.processors),
                )
                signatures.add(sig)
            assert len(signatures) == 1, (
                f"values changed inside ({lo}, {hi}): {signatures}"
            )
