"""Unit tests for the Job value type."""

import pytest

from repro.core import Job


class TestJob:
    def test_basic(self):
        job = Job(size=2.5, cost=1.0, index=3)
        assert job.size == 2.5
        assert job.cost == 1.0
        assert job.index == 3

    def test_ordering_by_size_first(self):
        a = Job(size=1.0, cost=9.0, index=0)
        b = Job(size=2.0, cost=0.5, index=1)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_ordering_tie_break(self):
        a = Job(size=1.0, cost=1.0, index=0)
        b = Job(size=1.0, cost=1.0, index=1)
        assert a < b

    def test_is_large(self):
        job = Job(size=3.0, cost=1.0, index=0)
        assert job.is_large(2.9)
        assert not job.is_large(3.0)  # strictly greater per Definition 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Job(size=0.0, cost=1.0, index=0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            Job(size=1.0, cost=-0.1, index=0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Job(size=1.0, cost=0.0, index=-1)

    def test_frozen(self):
        job = Job(size=1.0, cost=0.0, index=0)
        with pytest.raises(AttributeError):
            job.size = 2.0
