"""Tests for the web-cluster simulation substrate."""

import numpy as np
import pytest

from repro.websim import (
    BandwidthCost,
    BytesProportionalCost,
    Cluster,
    ComposedTraffic,
    DiurnalTraffic,
    EngineMPartitionPolicy,
    FlashCrowdTraffic,
    FullRepackPolicy,
    GreedyPolicy,
    HillClimbPolicy,
    MPartitionPolicy,
    NoRebalance,
    RandomWalkTraffic,
    Simulation,
    StaticZipf,
    UnitCost,
    Website,
    build_cluster,
    coefficient_of_variation,
    imbalance_ratio,
    jain_fairness,
    zipf_popularities,
)


class TestWebsite:
    def test_defaults_load_to_popularity(self):
        site = Website(site_id=0, base_popularity=5.0)
        assert site.load == 5.0

    def test_set_load_floors(self):
        site = Website(site_id=0, base_popularity=5.0)
        site.set_load(-1.0)
        assert site.load > 0

    def test_rejects_bad_popularity(self):
        with pytest.raises(ValueError):
            Website(site_id=0, base_popularity=0.0)


class TestZipf:
    def test_weights_decrease(self):
        w = zipf_popularities(10)
        assert np.all(np.diff(w) < 0)

    def test_exponent_effect(self):
        shallow = zipf_popularities(10, exponent=0.5)
        steep = zipf_popularities(10, exponent=2.0)
        assert steep[-1] / steep[0] < shallow[-1] / shallow[0]


class TestCluster:
    def test_round_robin_placement(self):
        sites = [Website(site_id=i, base_popularity=1.0) for i in range(5)]
        cluster = Cluster.place_round_robin(sites, 2)
        assert cluster.placement.tolist() == [0, 1, 0, 1, 0]

    def test_loads_and_makespan(self):
        sites = [Website(site_id=i, base_popularity=float(i + 1)) for i in range(3)]
        cluster = Cluster.place_round_robin(sites, 2)
        assert cluster.loads().tolist() == [4.0, 2.0]
        assert cluster.makespan() == 4.0

    def test_to_instance_snapshot(self):
        sites = [Website(site_id=i, base_popularity=2.0) for i in range(4)]
        cluster = Cluster.place_round_robin(sites, 2)
        inst = cluster.to_instance()
        assert inst.num_jobs == 4
        assert inst.is_unit_cost
        assert inst.initial_makespan == cluster.makespan()

    def test_apply_assignment_migrates(self):
        sites = [Website(site_id=i, base_popularity=2.0) for i in range(4)]
        cluster = Cluster.place_round_robin(sites, 2)
        inst = cluster.to_instance()
        from repro.core import Assignment

        # Round-robin start is [0, 1, 0, 1]; the target moves sites 0 and 3.
        target = Assignment(instance=inst, mapping=[1, 1, 0, 0])
        migrations, cost = cluster.apply_assignment(target)
        assert migrations == 2
        assert cost == 2.0  # unit model
        assert cluster.placement.tolist() == [1, 1, 0, 0]

    def test_migration_models_price_differently(self):
        site = Website(site_id=0, base_popularity=1.0, content_bytes=50.0)
        assert UnitCost().cost(site) == 1.0
        assert BytesProportionalCost(per_byte=2.0).cost(site) == 100.0
        assert BandwidthCost(bandwidth=100.0, overhead=0.1).cost(site) == (
            pytest.approx(0.6)
        )


class TestTraffic:
    def make_sites(self, n=10):
        return [Website(site_id=i, base_popularity=10.0) for i in range(n)]

    def test_static_zipf_reproducible(self):
        a, b = self.make_sites(), self.make_sites()
        StaticZipf().step(a, 0, np.random.default_rng(1))
        StaticZipf().step(b, 0, np.random.default_rng(1))
        assert [s.load for s in a] == [s.load for s in b]

    def test_diurnal_oscillates(self):
        sites = self.make_sites(1)
        model = DiurnalTraffic(period=24, amplitude=0.6, noise=0.0)
        rng = np.random.default_rng(2)
        loads = []
        for epoch in range(24):
            model.step(sites, epoch, rng)
            loads.append(sites[0].load)
        assert max(loads) > 1.2 * min(loads)

    def test_flash_crowd_spikes_and_decays(self):
        sites = self.make_sites(5)
        model = FlashCrowdTraffic(probability=1.0, spike_factor=10.0, decay=0.5)
        rng = np.random.default_rng(3)
        model.step(sites, 0, rng)
        peak = max(s.load for s in sites)
        assert peak >= 10.0 * 10.0 * 0.99  # someone spiked
        model2 = FlashCrowdTraffic(probability=0.0, spike_factor=10.0, decay=0.5)
        model2._boost.update(model._boost)
        model2.step(sites, 1, rng)
        assert max(s.load for s in sites) < peak

    def test_random_walk_stays_positive(self):
        sites = self.make_sites(5)
        model = RandomWalkTraffic(volatility=0.5)
        rng = np.random.default_rng(4)
        for epoch in range(20):
            model.step(sites, epoch, rng)
        assert all(s.load > 0 for s in sites)

    def test_composition_applies_all(self):
        sites = self.make_sites(5)
        combo = ComposedTraffic((StaticZipf(noise=0.0), FlashCrowdTraffic(
            probability=0.0)))
        combo.step(sites, 0, np.random.default_rng(5))
        assert all(s.load == pytest.approx(10.0) for s in sites)


class TestMetrics:
    def test_balanced(self):
        loads = np.array([5.0, 5.0, 5.0])
        assert imbalance_ratio(loads) == 1.0
        assert coefficient_of_variation(loads) == 0.0
        assert jain_fairness(loads) == pytest.approx(1.0)

    def test_skewed(self):
        loads = np.array([10.0, 0.0])
        assert imbalance_ratio(loads) == 2.0
        assert jain_fairness(loads) == pytest.approx(0.5)


class TestSimulation:
    def run_policy(self, policy, epochs=15, seed=9):
        cluster = build_cluster(30, 4, np.random.default_rng(seed))
        traffic = ComposedTraffic(
            (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
        )
        sim = Simulation(cluster=cluster, traffic=traffic, policy=policy,
                         seed=seed)
        return sim.run(epochs)

    def test_trajectory_length(self):
        res = self.run_policy(NoRebalance(), epochs=12)
        assert len(res.records) == 12
        assert res.records[0].epoch == 0

    def test_no_rebalance_never_migrates(self):
        res = self.run_policy(NoRebalance())
        assert res.total_migrations == 0
        for r in res.records:
            assert r.makespan == r.pre_makespan

    @pytest.mark.parametrize(
        "policy", [GreedyPolicy(k=2), MPartitionPolicy(k=2), HillClimbPolicy(k=2)]
    )
    def test_bounded_policies_respect_k(self, policy):
        res = self.run_policy(policy)
        for r in res.records:
            assert r.migrations <= 2

    def test_rebalancing_beats_nothing(self):
        none = self.run_policy(NoRebalance())
        mp = self.run_policy(MPartitionPolicy(k=3))
        assert mp.mean_makespan < none.mean_makespan

    def test_full_repack_near_average(self):
        res = self.run_policy(FullRepackPolicy())
        assert res.mean_imbalance < 1.2

    def test_epoch_records_consistent(self):
        res = self.run_policy(GreedyPolicy(k=2))
        for r in res.records:
            assert r.makespan >= r.average_load - 1e-9
            assert 0 < r.fairness <= 1.0 + 1e-12
            assert r.migration_cost >= 0

    def test_determinism(self):
        a = self.run_policy(GreedyPolicy(k=2), seed=5)
        b = self.run_policy(GreedyPolicy(k=2), seed=5)
        assert [r.makespan for r in a.records] == [r.makespan for r in b.records]

    def test_repeated_run_on_same_simulation_identical(self):
        """Regression: run() used to mutate the cluster in place, so a
        second run() continued from the drifted state despite the RNG
        being re-seeded."""
        cluster = build_cluster(30, 4, np.random.default_rng(9))
        traffic = ComposedTraffic(
            (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
        )
        sim = Simulation(cluster=cluster, traffic=traffic,
                         policy=GreedyPolicy(k=2), seed=9)
        a = sim.run(15)
        b = sim.run(15)
        assert [r.makespan for r in a.records] == [
            r.makespan for r in b.records
        ]
        assert [r.migrations for r in a.records] == [
            r.migrations for r in b.records
        ]

    def test_run_leaves_cluster_and_traffic_untouched(self):
        cluster = build_cluster(20, 3, np.random.default_rng(4))
        traffic = FlashCrowdTraffic(probability=0.5)
        sim = Simulation(cluster=cluster, traffic=traffic,
                         policy=GreedyPolicy(k=2), seed=4)
        placement = cluster.placement.copy()
        loads = [s.load for s in cluster.sites]
        sim.run(10)
        assert cluster.placement.tolist() == placement.tolist()
        assert [s.load for s in cluster.sites] == loads
        assert traffic._boost == {}  # traffic state stays pristine too

    def test_epoch_records_carry_timings(self):
        res = self.run_policy(GreedyPolicy(k=2), epochs=5)
        for r in res.records:
            assert r.decide_seconds >= 0.0
            assert r.migrate_seconds >= 0.0


class CountingPolicy:
    """Deliberately stateful policy whose decisions depend on how many
    times it has been asked — a canary for policy state leaking between
    ``run()`` calls."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def decide(self, instance, epoch):
        from repro.baselines.graham import lpt_rebalance
        from repro.core import Assignment

        self.calls += 1
        if self.calls % 2:
            return Assignment.initial(instance)
        return lpt_rebalance(instance).assignment


class TestStatefulPolicyIsolation:
    """Regression: ``Simulation.run`` deep-copied the cluster and the
    traffic model but not the policy, so any stateful policy made
    repeated ``run()`` calls diverge."""

    def make_sim(self, policy, seed=9):
        cluster = build_cluster(30, 4, np.random.default_rng(seed))
        traffic = ComposedTraffic(
            (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
        )
        return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                          seed=seed)

    def test_repeated_runs_with_stateful_policy_identical(self):
        sim = self.make_sim(CountingPolicy())
        a = sim.run(9)  # odd epoch count => policy ends mid-cycle
        b = sim.run(9)
        assert [r.makespan for r in a.records] == [
            r.makespan for r in b.records
        ]
        assert [r.migrations for r in a.records] == [
            r.migrations for r in b.records
        ]

    def test_run_leaves_policy_untouched(self):
        policy = CountingPolicy()
        sim = self.make_sim(policy)
        sim.run(5)
        assert policy.calls == 0

    def test_repeated_runs_with_engine_policy_identical(self):
        sim = self.make_sim(EngineMPartitionPolicy(k=3))
        a = sim.run(12)
        b = sim.run(12)
        assert [r.makespan for r in a.records] == [
            r.makespan for r in b.records
        ]
        assert [r.migrations for r in a.records] == [
            r.migrations for r in b.records
        ]


class ZeroingTraffic:
    """Traffic model that drives one site's load to exactly zero,
    bypassing ``Website.set_load``'s floor (as a buggy or external
    model might)."""

    def step(self, sites, epoch, rng):
        for site in sites:
            site.set_load(site.base_popularity)
        sites[epoch % len(sites)].load = 0.0


class TestZeroLoadSites:
    """Regression: a site whose traffic decays to zero used to crash
    ``Cluster.to_instance`` (Instance rejects sizes <= 0)."""

    def test_to_instance_with_zero_load_site(self):
        sites = [Website(site_id=i, base_popularity=2.0) for i in range(4)]
        cluster = Cluster.place_round_robin(sites, 2)
        sites[1].load = 0.0
        inst = cluster.to_instance()
        assert inst.num_jobs == 4
        assert inst.sizes.min() > 0
        assert inst.sizes[1] < 1e-9

    def test_to_instance_with_negative_load_site(self):
        sites = [Website(site_id=i, base_popularity=2.0) for i in range(3)]
        cluster = Cluster.place_round_robin(sites, 2)
        sites[0].load = -1.0
        assert cluster.to_instance().sizes.min() > 0

    def test_simulation_survives_zeroed_sites(self):
        cluster = build_cluster(12, 3, np.random.default_rng(2))
        sim = Simulation(cluster=cluster, traffic=ZeroingTraffic(),
                         policy=MPartitionPolicy(k=2), seed=2)
        res = sim.run(8)
        assert len(res.records) == 8


class TestEnginePolicy:
    """The engine-backed policy must be decision-for-decision identical
    to the from-scratch M-PARTITION policy."""

    def run_pair(self, traffic_factory, epochs=20, seed=9, k=3,
                 sites=40, servers=4):
        results = []
        for policy in (MPartitionPolicy(k=k), EngineMPartitionPolicy(k=k)):
            cluster = build_cluster(sites, servers,
                                    np.random.default_rng(seed))
            sim = Simulation(cluster=cluster, traffic=traffic_factory(),
                             policy=policy, seed=seed)
            results.append(sim.run(epochs))
        return results

    @pytest.mark.parametrize(
        "traffic_factory",
        [
            lambda: ComposedTraffic(
                (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
            ),
            lambda: FlashCrowdTraffic(probability=0.1),
            lambda: RandomWalkTraffic(volatility=0.3),
        ],
        ids=["dense", "sparse-flash", "random-walk"],
    )
    def test_identical_trajectories(self, traffic_factory):
        scratch, engine = self.run_pair(traffic_factory)
        assert [r.makespan for r in scratch.records] == [
            r.makespan for r in engine.records
        ]
        assert [r.migrations for r in scratch.records] == [
            r.migrations for r in engine.records
        ]
        assert [r.migration_cost for r in scratch.records] == [
            r.migration_cost for r in engine.records
        ]

    def test_engine_policy_reset(self):
        policy = EngineMPartitionPolicy(k=2)
        cluster = build_cluster(10, 2, np.random.default_rng(0))
        policy.decide(cluster.to_instance(), 0)
        assert policy.engine.stats.decisions == 1
        policy.reset()
        assert policy.engine.stats.decisions == 0

    def test_engine_warms_within_a_run(self):
        """Driving the loop directly (no Simulation deep copy) shows the
        table cache being reused across epochs."""
        policy = EngineMPartitionPolicy(k=3)
        cluster = build_cluster(30, 4, np.random.default_rng(3))
        traffic = FlashCrowdTraffic(probability=0.3)
        rng = np.random.default_rng(3)
        for epoch in range(10):
            traffic.step(cluster.sites, epoch, rng)
            cluster.apply_assignment(policy.decide(cluster.to_instance(),
                                                   epoch))
        stats = policy.engine.stats
        assert stats.decisions == 10
        assert stats.full_builds == 1
        assert stats.tables_reused + stats.cache_hits == 9
