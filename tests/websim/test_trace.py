"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    LoadTrace,
    MPartitionPolicy,
    ReplayTraffic,
    Simulation,
    Website,
    build_cluster,
    record_trace,
)


def make_sites(n=6):
    return [Website(site_id=i, base_popularity=float(i + 1)) for i in range(n)]


class TestLoadTrace:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LoadTrace(loads=np.ones(5))  # 1-d
        with pytest.raises(ValueError):
            LoadTrace(loads=np.zeros((2, 2)))  # non-positive

    def test_json_roundtrip(self):
        trace = LoadTrace(loads=np.array([[1.0, 2.0], [3.0, 4.0]]))
        again = LoadTrace.from_json(trace.to_json())
        assert np.array_equal(again.loads, trace.loads)

    def test_csv_roundtrip(self):
        trace = LoadTrace(loads=np.array([[1.5, 2.25], [3.125, 4.0]]))
        again = LoadTrace.from_csv(trace.to_csv())
        assert np.allclose(again.loads, trace.loads)
        assert "site_0" in trace.to_csv()


class TestRecordReplay:
    def test_record_shape(self):
        trace = record_trace(make_sites(), DiurnalTraffic(), epochs=10, seed=1)
        assert trace.num_epochs == 10
        assert trace.num_sites == 6

    def test_record_is_deterministic(self):
        a = record_trace(make_sites(), DiurnalTraffic(), epochs=5, seed=2)
        b = record_trace(make_sites(), DiurnalTraffic(), epochs=5, seed=2)
        assert np.array_equal(a.loads, b.loads)

    def test_replay_reproduces_loads(self):
        trace = record_trace(make_sites(), DiurnalTraffic(), epochs=5, seed=3)
        sites = make_sites()
        replay = ReplayTraffic(trace=trace)
        rng = np.random.default_rng(999)  # replay ignores the rng
        for epoch in range(5):
            replay.step(sites, epoch, rng)
            assert np.allclose(
                [s.load for s in sites], trace.loads[epoch]
            )

    def test_replay_clamps_past_end(self):
        trace = LoadTrace(loads=np.array([[1.0, 2.0]]))
        sites = make_sites(2)
        ReplayTraffic(trace=trace).step(sites, 99, np.random.default_rng(0))
        assert [s.load for s in sites] == [1.0, 2.0]

    def test_replay_rejects_wrong_width(self):
        trace = LoadTrace(loads=np.ones((2, 3)))
        with pytest.raises(ValueError, match="sites"):
            ReplayTraffic(trace=trace).step(
                make_sites(5), 0, np.random.default_rng(0)
            )

    def test_simulation_on_replayed_trace_is_reproducible(self):
        """The frozen-workload workflow: record once, replay twice,
        get identical trajectories."""
        rng = np.random.default_rng(4)
        donor = build_cluster(12, 3, rng)
        traffic = ComposedTraffic(
            (DiurnalTraffic(), FlashCrowdTraffic(probability=0.3))
        )
        trace = record_trace(donor.sites, traffic, epochs=8, seed=5)

        def run():
            cluster = build_cluster(12, 3, np.random.default_rng(4))
            sim = Simulation(
                cluster=cluster, traffic=ReplayTraffic(trace=trace),
                policy=MPartitionPolicy(k=2), seed=0,
            )
            return [r.makespan for r in sim.run(8).records]

        assert run() == run()
