"""Weighted-migration simulation: Section 3.2 inside the epoch loop."""

import numpy as np
import pytest

from repro.websim import (
    BytesProportionalCost,
    CostPartitionPolicy,
    DiurnalTraffic,
    NoRebalance,
    Simulation,
    build_cluster,
)


def run(policy, budget_model, epochs=12, seed=33):
    cluster = build_cluster(
        30, 4, np.random.default_rng(seed), migration_model=budget_model
    )
    sim = Simulation(
        cluster=cluster, traffic=DiurnalTraffic(), policy=policy, seed=seed
    )
    return sim.run(epochs)


class TestCostPartitionPolicy:
    def test_per_epoch_cost_budget_respected(self):
        model = BytesProportionalCost(per_byte=0.1)
        budget = 5.0
        res = run(CostPartitionPolicy(budget=budget), model)
        for record in res.records:
            assert record.migration_cost <= budget + 1e-6

    def test_weighted_policy_beats_nothing(self):
        model = BytesProportionalCost(per_byte=0.1)
        weighted = run(CostPartitionPolicy(budget=8.0), model)
        none = run(NoRebalance(), model)
        assert weighted.mean_makespan <= none.mean_makespan + 1e-9

    def test_snapshot_costs_follow_migration_model(self):
        model = BytesProportionalCost(per_byte=2.0)
        cluster = build_cluster(
            10, 2, np.random.default_rng(5), migration_model=model
        )
        inst = cluster.to_instance()
        expected = [2.0 * s.content_bytes for s in cluster.sites]
        assert np.allclose(inst.costs, expected)
        assert not inst.is_unit_cost
