"""End-to-end differential: the simulator driven through the wire.

The PR's acceptance test: a websim trajectory whose decisions travel
client -> server -> shard engine must be byte-identical to the same
trajectory decided in-process by :class:`EngineMPartitionPolicy` —
serialization, batching, admission and the shard engine together add
exactly nothing to the decision stream.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.service import ServerConfig, ServiceClient, start_background
from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    EngineMPartitionPolicy,
    FlashCrowdTraffic,
    ServicePolicy,
    Simulation,
    build_cluster,
)

EPOCHS = 12
K = 3


def _simulation(policy, seed: int = 21):
    rng = np.random.default_rng(seed)
    cluster = build_cluster(80, 6, rng)
    traffic = ComposedTraffic(
        (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
    )
    return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                      seed=seed)


@pytest.fixture()
def server():
    with start_background(ServerConfig()) as handle:
        yield handle


class TestServicePolicyDifferential:
    def test_trajectory_identical_to_in_process_engine(self, server):
        remote = _simulation(
            ServicePolicy(server.host, server.port, k=K)
        ).run(EPOCHS)
        local = _simulation(EngineMPartitionPolicy(k=K)).run(EPOCHS)
        assert len(remote.records) == len(local.records) == EPOCHS
        for ours, theirs in zip(remote.records, local.records):
            assert ours.makespan == theirs.makespan
            assert ours.migrations == theirs.migrations
            assert ours.migration_cost == theirs.migration_cost
            assert ours.imbalance == theirs.imbalance

    def test_repeated_runs_identical_through_warm_shard(self, server):
        """The second run hits a server shard warmed by the first; the
        engine contract keeps the trajectory byte-identical anyway."""
        sim = _simulation(ServicePolicy(server.host, server.port, k=K))
        first = sim.run(EPOCHS)
        second = sim.run(EPOCHS)
        for a, b in zip(first.records, second.records):
            assert a.makespan == b.makespan
            assert a.migrations == b.migrations

    def test_two_shards_interleaved_match_isolated(self, server):
        """Two simulations multiplexed over one server on separate
        shards each match their isolated in-process trajectory."""
        remote_a = _simulation(
            ServicePolicy(server.host, server.port, k=K, shard="a"),
            seed=5,
        )
        remote_b = _simulation(
            ServicePolicy(server.host, server.port, k=K, shard="b"),
            seed=6,
        )
        # Interleave epoch decisions by running both sims' epochs in
        # lockstep: run() itself is serial per sim, so interleaving
        # happens at shard granularity via alternating short runs.
        for sim in (remote_a, remote_b, remote_a, remote_b):
            sim.run(EPOCHS // 2)
        got_a = remote_a.run(EPOCHS)
        got_b = remote_b.run(EPOCHS)
        want_a = _simulation(EngineMPartitionPolicy(k=K), seed=5).run(EPOCHS)
        want_b = _simulation(EngineMPartitionPolicy(k=K), seed=6).run(EPOCHS)
        for got, want in ((got_a, want_a), (got_b, want_b)):
            for ours, theirs in zip(got.records, want.records):
                assert ours.makespan == theirs.makespan
                assert ours.migrations == theirs.migrations


class TestServicePolicyMechanics:
    def test_deepcopy_detaches_client(self, server):
        policy = ServicePolicy(server.host, server.port, k=K)
        assert policy.client.ping()
        clone = copy.deepcopy(policy)
        assert clone._client is None
        assert clone.host == policy.host and clone.port == policy.port
        assert clone.client.ping()
        policy.close()
        clone.close()

    def test_reset_clears_server_shard(self, server):
        policy = ServicePolicy(server.host, server.port, k=K, shard="r")
        sim = _simulation(policy)
        sim.run(3)
        policy.reset()
        with ServiceClient(server.host, server.port) as probe:
            status = probe.status()
        assert status["shards"]["r"]["decisions"] == 0
        policy.close()

    def test_close_is_idempotent(self, server):
        policy = ServicePolicy(server.host, server.port)
        policy.close()
        policy.close()
