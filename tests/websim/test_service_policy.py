"""End-to-end differential: the simulator driven through the wire.

The PR's acceptance test: a websim trajectory whose decisions travel
client -> server -> shard engine must be byte-identical to the same
trajectory decided in-process by :class:`EngineMPartitionPolicy` —
serialization, batching, admission and the shard engine together add
exactly nothing to the decision stream.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.service import ServerConfig, ServiceClient, start_background
from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    EngineMPartitionPolicy,
    FlashCrowdTraffic,
    ServicePolicy,
    Simulation,
    build_cluster,
)

EPOCHS = 12
K = 3


def _simulation(policy, seed: int = 21):
    rng = np.random.default_rng(seed)
    cluster = build_cluster(80, 6, rng)
    traffic = ComposedTraffic(
        (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
    )
    return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                      seed=seed)


@pytest.fixture()
def server():
    with start_background(ServerConfig()) as handle:
        yield handle


class TestServicePolicyDifferential:
    def test_trajectory_identical_to_in_process_engine(self, server):
        remote = _simulation(
            ServicePolicy(server.host, server.port, k=K)
        ).run(EPOCHS)
        local = _simulation(EngineMPartitionPolicy(k=K)).run(EPOCHS)
        assert len(remote.records) == len(local.records) == EPOCHS
        for ours, theirs in zip(remote.records, local.records):
            assert ours.makespan == theirs.makespan
            assert ours.migrations == theirs.migrations
            assert ours.migration_cost == theirs.migration_cost
            assert ours.imbalance == theirs.imbalance

    def test_repeated_runs_identical_through_warm_shard(self, server):
        """The second run hits a server shard warmed by the first; the
        engine contract keeps the trajectory byte-identical anyway."""
        sim = _simulation(ServicePolicy(server.host, server.port, k=K))
        first = sim.run(EPOCHS)
        second = sim.run(EPOCHS)
        for a, b in zip(first.records, second.records):
            assert a.makespan == b.makespan
            assert a.migrations == b.migrations

    def test_two_shards_interleaved_match_isolated(self, server):
        """Two simulations multiplexed over one server on separate
        shards each match their isolated in-process trajectory."""
        remote_a = _simulation(
            ServicePolicy(server.host, server.port, k=K, shard="a"),
            seed=5,
        )
        remote_b = _simulation(
            ServicePolicy(server.host, server.port, k=K, shard="b"),
            seed=6,
        )
        # Interleave epoch decisions by running both sims' epochs in
        # lockstep: run() itself is serial per sim, so interleaving
        # happens at shard granularity via alternating short runs.
        for sim in (remote_a, remote_b, remote_a, remote_b):
            sim.run(EPOCHS // 2)
        got_a = remote_a.run(EPOCHS)
        got_b = remote_b.run(EPOCHS)
        want_a = _simulation(EngineMPartitionPolicy(k=K), seed=5).run(EPOCHS)
        want_b = _simulation(EngineMPartitionPolicy(k=K), seed=6).run(EPOCHS)
        for got, want in ((got_a, want_a), (got_b, want_b)):
            for ours, theirs in zip(got.records, want.records):
                assert ours.makespan == theirs.makespan
                assert ours.migrations == theirs.migrations


class TestTransportDifferential:
    """The PR's acceptance test: the same simulation driven over
    v1-JSON, v2-binary, and v2-delta transports — and through the
    multi-process shard executor — produces byte-identical
    trajectories.  The wire format and the executor are pure transport;
    the decision stream never changes."""

    TRANSPORTS = (
        {"protocol": "json"},
        {"protocol": "binary"},
        {"protocol": "binary", "delta": True},
    )

    @staticmethod
    def _trajectory(host, port, seed, **kwargs):
        policy = ServicePolicy(host, port, k=K, **kwargs)
        try:
            return _simulation(policy, seed=seed).run(EPOCHS)
        finally:
            policy.close()

    @staticmethod
    def _assert_identical(got, want):
        assert len(got.records) == len(want.records) == EPOCHS
        for ours, theirs in zip(got.records, want.records):
            assert ours.makespan == theirs.makespan
            assert ours.migrations == theirs.migrations
            assert ours.migration_cost == theirs.migration_cost
            assert ours.imbalance == theirs.imbalance

    def test_all_transports_identical_to_in_process(self, server):
        want = _simulation(EngineMPartitionPolicy(k=K), seed=33).run(EPOCHS)
        for index, kwargs in enumerate(self.TRANSPORTS):
            got = self._trajectory(
                server.host, server.port, 33,
                shard=f"transport-{index}", **kwargs,
            )
            self._assert_identical(got, want)

    def test_delta_transport_actually_sent_deltas(self, server):
        # Flash crowds only: the diurnal term would move every site
        # every epoch, making full snapshots the (correctly) cheaper
        # choice.  Sparse churn is the regime deltas exist for.
        rng = np.random.default_rng(34)
        policy = ServicePolicy(
            server.host, server.port, k=K,
            shard="delta-count", protocol="binary", delta=True,
        )
        sim = Simulation(
            cluster=build_cluster(80, 6, rng),
            # probability=1: one spiking site every epoch — churn is
            # guaranteed yet sparse, so every epoch after the first
            # clears the client's delta-vs-full size cutover.
            traffic=FlashCrowdTraffic(probability=1.0),
            policy=policy,
            seed=34,
        )
        try:
            sim.run(EPOCHS)
            # Simulation.run deep-copies the policy, so the counters
            # live on the copy's client; the server's metric is the
            # observable ground truth that deltas arrived and applied.
            with ServiceClient(server.host, server.port) as probe:
                counters = probe.status()["metrics"]["counters"]
            assert counters.get("service.delta_applied", 0) > 0
        finally:
            policy.close()

    @pytest.mark.parametrize("shm", [True, False], ids=["shm", "inline"])
    def test_process_executor_trajectory_identical(self, shm):
        """Byte-identical through the process executor both over the
        shared-memory snapshot plane and the inline codec path — the
        shm plane is pure transport, never a different decision."""
        config = ServerConfig(
            executor="process", process_workers=2, shm=shm
        )
        want = _simulation(EngineMPartitionPolicy(k=K), seed=35).run(EPOCHS)
        with start_background(config) as handle:
            got = self._trajectory(
                handle.host, handle.port, 35,
                shard="proc", protocol="binary", delta=True,
            )
            with ServiceClient(handle.host, handle.port) as probe:
                status = probe.status()
        self._assert_identical(got, want)
        if shm:
            assert status["metrics"]["counters"].get(
                "service.shm_writes", 0
            ) > 0
        else:
            assert status["shm"] is None


class TestServicePolicyMechanics:
    def test_deepcopy_detaches_client(self, server):
        policy = ServicePolicy(server.host, server.port, k=K)
        assert policy.client.ping()
        clone = copy.deepcopy(policy)
        assert clone._client is None
        assert clone.host == policy.host and clone.port == policy.port
        assert clone.client.ping()
        policy.close()
        clone.close()

    def test_reset_clears_server_shard(self, server):
        policy = ServicePolicy(server.host, server.port, k=K, shard="r")
        sim = _simulation(policy)
        sim.run(3)
        policy.reset()
        with ServiceClient(server.host, server.port) as probe:
            status = probe.status()
        assert status["shards"]["r"]["decisions"] == 0
        policy.close()

    def test_close_is_idempotent(self, server):
        policy = ServicePolicy(server.host, server.port)
        policy.close()
        policy.close()
