"""Tests for the analysis harness: tables, ratios, scaling, experiments."""

import time

import numpy as np
import pytest

from repro.analysis import (
    ExperimentReport,
    RatioStats,
    loglog_slope,
    measure_ratios,
    measure_scaling,
    render_table,
)
from repro.analysis.scaling import ScalingPoint
from repro.core import greedy_rebalance, make_instance


class TestTables:
    def test_render_basic(self):
        report = ExperimentReport(
            experiment_id="EX",
            title="demo",
            columns=("a", "b"),
        )
        report.add_row(1, 2.5)
        report.add_row("x", float("inf"))
        text = report.render()
        assert "[EX] demo" in text
        assert "2.5" in text and "inf" in text

    def test_row_arity_checked(self):
        report = ExperimentReport(
            experiment_id="EX", title="demo", columns=("a", "b")
        )
        with pytest.raises(ValueError):
            report.add_row(1)

    def test_notes_rendered(self):
        text = render_table("t", ["c"], [[1]], notes=["hello note"])
        assert "* hello note" in text

    def test_empty_table(self):
        text = render_table("t", ["col"], [])
        assert "col" in text


class TestRatios:
    def test_measure_against_known_opt(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 0], num_processors=2)
        stats = measure_ratios(
            [(inst, 1)],
            {"greedy": lambda i, k: greedy_rebalance(i, k)},
            opt_values=[5.0],
        )
        s = stats["greedy"]
        assert s.count == 1
        assert s.mean == pytest.approx(1.0)
        assert s.worst == pytest.approx(1.0)

    def test_measure_with_exact_solver(self):
        inst = make_instance(
            sizes=[6, 3, 3], initial=[0, 0, 0], num_processors=2
        )
        stats = measure_ratios(
            [(inst, 2)], {"greedy": lambda i, k: greedy_rebalance(i, k)}
        )
        assert stats["greedy"].worst >= 1.0

    def test_stats_from_samples(self):
        s = RatioStats.from_samples("x", [1.0, 1.5], [0, 2], [0.001, 0.003])
        assert s.mean == pytest.approx(1.25)
        assert s.worst == 1.5
        assert s.mean_moves == 1.0
        assert s.mean_runtime_ms == pytest.approx(2.0)


class TestScaling:
    def test_linear_slope(self):
        points = [ScalingPoint(n=n, seconds=n * 1e-6) for n in (100, 200, 400, 800)]
        assert loglog_slope(points) == pytest.approx(1.0, abs=1e-6)

    def test_quadratic_slope(self):
        points = [ScalingPoint(n=n, seconds=n * n * 1e-9) for n in (100, 200, 400)]
        assert loglog_slope(points) == pytest.approx(2.0, abs=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([ScalingPoint(n=1, seconds=1.0)])

    def test_measure_scaling_runs(self):
        points = measure_scaling(
            make_input=lambda n: n,
            run=lambda n: sum(range(n)),
            sizes=(1000, 2000),
            repeats=1,
        )
        assert [p.n for p in points] == [1000, 2000]
        assert all(p.seconds >= 0 for p in points)


class TestExperimentsSmoke:
    """Every experiment driver runs end-to-end at reduced scale and
    satisfies its own 'within bound' claims."""

    def test_e1(self):
        from repro.analysis import experiment_e1_greedy

        report = experiment_e1_greedy(ms=(2, 3), trials=4)
        assert all(row[-1] for row in report.rows)  # all within bound

    def test_e2(self):
        from repro.analysis import experiment_e2_partition

        report = experiment_e2_partition(trials=6)
        assert all(row[-1] for row in report.rows)

    def test_e3(self):
        from repro.analysis import experiment_e3_scaling

        report = experiment_e3_scaling(sizes=(256, 512, 1024), m=4)
        slopes = [row[2] for row in report.rows]
        assert all(s < 2.0 for s in slopes)  # decisively sub-quadratic

    def test_e4(self):
        from repro.analysis import experiment_e4_ptas

        report = experiment_e4_ptas(eps_values=(2.0, 1.0), trials=3)
        for eps, bound, mean_r, worst_r, ok, _ in report.rows:
            assert ok and worst_r <= bound + 1e-9

    def test_e5(self):
        from repro.analysis import experiment_e5_costs

        report = experiment_e5_costs(trials=5)
        assert all(row[-1] for row in report.rows)  # budgets respected

    def test_e6(self):
        from repro.analysis import experiment_e6_websim

        report = experiment_e6_websim(num_sites=20, num_servers=3, epochs=8)
        rows = {row[0]: row for row in report.rows}
        assert rows["m-partition"][1] <= rows["none"][1] + 1e-9

    def test_e7(self):
        from repro.analysis import experiment_e7_movemin

        report = experiment_e7_movemin(trials=2, n=8)
        assert all(row[-1] for row in report.rows)  # greedy is sound
        yes = [r for r in report.rows if r[0].startswith("yes")]
        no = [r for r in report.rows if r[0].startswith("no")]
        assert all(r[1] for r in yes)
        assert not any(r[1] for r in no)

    def test_e8(self):
        from repro.analysis import experiment_e8_frontier

        report = experiment_e8_frontier(m=3, jobs_per_processor=3, displaced=4)
        makespans = [row[3] for row in report.rows]  # m-partition column
        # The frontier must end at least as low as it starts.
        assert makespans[-1] <= makespans[0] + 1e-9

    def test_e9(self):
        from repro.analysis import experiment_e9_headtohead

        report = experiment_e9_headtohead(trials=4)
        worst = {row[0]: row[3] for row in report.rows}
        assert worst["m-partition"] <= 1.5 + 1e-9
        assert worst["greedy"] <= 2.0 + 1e-9

    def test_e10(self):
        from repro.analysis import experiment_e10_hardness

        report = experiment_e10_hardness(trials=1)
        assert all(row[-1] for row in report.rows)


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_run_single(self, capsys):
        from repro.cli import main

        assert main(["E2"]) == 0
        out = capsys.readouterr().out
        assert "[E2]" in out

    def test_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["E99"])


class TestScaleAndAblations:
    def test_e11(self):
        from repro.analysis import experiment_e11_scale_oracles

        report = experiment_e11_scale_oracles(sizes=((500, 8),))
        assert all(row[-1] for row in report.rows)

    def test_a1(self):
        from repro.analysis import ablation_a1_insert_order

        report = ablation_a1_insert_order(trials=4)
        tight = {r[1]: r[3] for r in report.rows if r[0].startswith("tight")}
        assert tight["ascending"] == max(tight.values())

    def test_a2(self):
        from repro.analysis import ablation_a2_knapsack_backend

        report = ablation_a2_knapsack_backend(trials=3)
        assert all(row[-1] for row in report.rows)

    def test_a3(self):
        from repro.analysis import ablation_a3_scan_strategy

        report = ablation_a3_scan_strategy(sizes=(128, 256), m=4)
        assert all(row[-1] for row in report.rows)

    def test_cli_runs_ablation(self, capsys):
        from repro.cli import main

        assert main(["A1"]) == 0
        assert "[A1]" in capsys.readouterr().out
