"""Tests for the deterministic process-pool sweep runner."""

import numpy as np
import pytest

from repro import telemetry
from repro.core import ptas_rebalance
from repro.parallel import default_workers, run_sweep, run_until
from repro.websim import (
    DiurnalTraffic,
    MPartitionPolicy,
    Simulation,
    build_cluster,
    run_many,
)
from repro.workloads import random_instance


def _square(x):
    telemetry.count("square_calls")
    return x * x


def _is_even_square(x):
    return x * x if x % 2 == 0 else None


class TestRunSweep:
    def test_serial_matches_parallel_order(self):
        items = list(range(9))
        assert run_sweep(_square, items, workers=1) == run_sweep(
            _square, items, workers=2
        )

    def test_results_in_input_order(self):
        out = run_sweep(_square, [5, 3, 1, 4], workers=2)
        assert out == [25, 9, 1, 16]

    def test_serial_fallback_runs_inline(self):
        # Unpicklable closures are fine with workers=1: no pool involved.
        seen = []
        out = run_sweep(lambda x: seen.append(x) or x, [1, 2, 3], workers=1)
        assert out == [1, 2, 3] and seen == [1, 2, 3]

    def test_worker_telemetry_merged(self):
        with telemetry.collect() as col:
            run_sweep(_square, range(6), workers=2)
        assert col.counters.get("square_calls") == 6

    def test_serial_telemetry_still_counts(self):
        with telemetry.collect() as col:
            run_sweep(_square, range(4), workers=1)
        assert col.counters.get("square_calls") == 4

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestRunUntil:
    def test_returns_first_accepted_index(self):
        for workers in (1, 2):
            hit = run_until(
                _is_even_square, [1, 3, 4, 6, 5], lambda r: r is not None,
                workers=workers, chunk=2,
            )
            assert hit == (2, 16)

    def test_none_when_nothing_accepted(self):
        for workers in (1, 2):
            assert run_until(
                _is_even_square, [1, 3, 5], lambda r: r is not None,
                workers=workers, chunk=2,
            ) is None

    def test_serial_stops_at_hit(self):
        calls = []

        def probe(x):
            calls.append(x)
            return x

        assert run_until(probe, [1, 2, 3, 4], lambda r: r == 2, workers=1) == (
            1, 2,
        )
        assert calls == [1, 2]  # nothing past the hit is evaluated


class TestCollectorMerge:
    def test_merge_adds_spans_and_counters(self):
        a = telemetry.Collector()
        a.record_span("phase", 0.5)
        a.add("cells", 10)
        b = telemetry.Collector()
        b.record_span("phase", 0.25)
        b.record_span("other", 1.0)
        b.add("cells", 5)
        a.merge(b.as_dict())
        assert a.spans["phase"] == [2, 0.75]
        assert a.spans["other"] == [1, 1.0]
        assert a.counters["cells"] == 15


class TestParallelPTAS:
    def test_parallel_guess_search_identical_threshold(self):
        inst = random_instance(
            7, 3, np.random.default_rng(9), cost_family="random",
            integer_sizes=True,
        )
        budget = float(inst.costs.sum()) / 2.0
        serial = ptas_rebalance(inst, budget, eps=1.0, workers=1)
        fanned = ptas_rebalance(inst, budget, eps=1.0, workers=2)
        assert fanned.guessed_opt == serial.guessed_opt
        assert fanned.planned_cost == serial.planned_cost
        assert fanned.meta["guesses_tried"] == serial.meta["guesses_tried"]
        assert (
            fanned.assignment.mapping == serial.assignment.mapping
        ).all()

    def test_parallel_merges_worker_telemetry(self):
        inst = random_instance(
            6, 3, np.random.default_rng(4), cost_family="random",
            integer_sizes=True,
        )
        budget = float(inst.costs.sum())
        with telemetry.collect() as col:
            ptas_rebalance(inst, budget, eps=1.0, workers=2)
        assert "ptas.dp" in col.spans
        assert col.counters.get("ptas_dp_states", 0) > 0


class TestWebsimRunMany:
    def test_run_many_matches_serial(self):
        sims = [
            Simulation(
                cluster=build_cluster(30, 3, np.random.default_rng(s)),
                traffic=DiurnalTraffic(),
                policy=MPartitionPolicy(k=2),
                seed=s,
            )
            for s in (0, 1)
        ]
        serial = [sim.run(5) for sim in sims]
        fanned = run_many(sims, 5, workers=2)
        assert [
            [r.makespan for r in res.records] for res in serial
        ] == [[r.makespan for r in res.records] for res in fanned]

    def test_run_many_default_inline(self):
        sims = [
            Simulation(
                cluster=build_cluster(20, 2, np.random.default_rng(7)),
                traffic=DiurnalTraffic(),
                policy=MPartitionPolicy(k=1),
                seed=7,
            )
        ]
        (res,) = run_many(sims, 3)
        assert len(res.records) == 3


class TestCLIWorkers:
    def test_cli_workers_flag(self, capsys):
        from repro.cli import main

        assert main(["E2", "--workers", "2"]) == 0
        assert "[E2]" in capsys.readouterr().out

    def test_cli_workers_profile(self, capsys):
        from repro.cli import main

        assert main(["E2", "--workers", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "telemetry — E2" in out

    def test_cli_rejects_unknown(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["E99", "--workers", "2"])


class TestThreadExecutor:
    def test_thread_matches_process_results(self):
        items = list(range(12))
        assert run_sweep(_square, items, workers=3, executor="thread") == [
            x * x for x in items
        ]

    def test_thread_pool_accepts_unpicklable_callables(self):
        # The motivating case: stateful, unpicklable objects (the
        # service's shard engines) can't cross a process boundary.
        seen = []

        def record(x):
            seen.append(x)
            return x + 1

        out = run_sweep(record, [1, 2, 3, 4], workers=2, executor="thread")
        assert out == [2, 3, 4, 5]
        assert sorted(seen) == [1, 2, 3, 4]

    def test_thread_worker_telemetry_merged(self):
        with telemetry.collect() as col:
            run_sweep(_square, range(6), workers=2, executor="thread")
        assert col.counters.get("square_calls") == 6

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_square, [1], workers=2, executor="fiber")

    def test_serial_ignores_executor_kind(self):
        assert run_sweep(_square, [3], workers=1, executor="thread") == [9]


# ----------------------------------------------------------------------
# PersistentWorkerPool (module-level handlers: spawn must pickle them)
# ----------------------------------------------------------------------
_PWP_STATE = {"count": 0, "tag": ""}


def _pwp_echo(payload: bytes) -> bytes:
    return b"echo:" + payload


def _pwp_count(payload: bytes) -> bytes:
    _PWP_STATE["count"] += 1
    return b"%d" % _PWP_STATE["count"]


def _pwp_fail_on_boom(payload: bytes) -> bytes:
    if payload == b"boom":
        raise ValueError("kaput")
    return payload


def _pwp_init_tag(tag: str) -> None:
    _PWP_STATE["tag"] = tag


def _pwp_read_tag(payload: bytes) -> bytes:
    return _PWP_STATE["tag"].encode()


def _pwp_bad_init() -> None:
    raise RuntimeError("init exploded")


_PWP_RING = {}


def _pwp_ring_attach(name: str, slots: int, slot_bytes: int) -> None:
    from repro.parallel import SnapshotRing

    _PWP_RING["ring"] = SnapshotRing.attach(name, slots, slot_bytes)


def _pwp_ring_read(payload: bytes) -> bytes:
    import json

    request = json.loads(payload)
    views = _PWP_RING["ring"].read(
        request["slot"], request["gen"], request["n"]
    )
    if views is None:
        return b"stale"
    sizes, costs, initial = views
    assert not sizes.flags.writeable
    return json.dumps(
        [sizes.tolist(), costs.tolist(), initial.tolist()]
    ).encode()


class TestPersistentWorkerPool:
    def test_echo_round_trip(self):
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(_pwp_echo, workers=2) as pool:
            replies = pool.request({0: b"a", 1: b"b"})
        assert replies == {0: b"echo:a", 1: b"echo:b"}

    def test_worker_state_is_addressable(self):
        """Repeated requests to one worker index hit the same process
        (its counter keeps climbing) while another stays independent —
        the shard-affinity property the service executor relies on."""
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(_pwp_count, workers=2) as pool:
            assert pool.request({0: b"x"}) == {0: b"1"}
            assert pool.request({0: b"x"}) == {0: b"2"}
            assert pool.request({1: b"x"}) == {1: b"1"}
            assert pool.request({0: b"x", 1: b"x"}) == {0: b"3", 1: b"2"}

    def test_initializer_runs_per_worker(self):
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(
            _pwp_read_tag, workers=2,
            initializer=_pwp_init_tag, initargs=("ready",),
        ) as pool:
            assert pool.broadcast(b"?") == {0: b"ready", 1: b"ready"}

    def test_handler_error_surfaces_and_worker_survives(self):
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(_pwp_fail_on_boom, workers=1) as pool:
            with pytest.raises(RuntimeError, match="kaput"):
                pool.request({0: b"boom"})
            # The worker served the error and keeps serving.
            assert pool.request({0: b"fine"}) == {0: b"fine"}

    def test_error_drains_every_addressed_worker(self):
        """Regression: raising on the first ``_ERR`` reply used to
        leave the other workers' replies sitting in their pipes, so the
        *next* request read round-stale payloads.  All addressed
        workers must be drained before the error surfaces."""
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(_pwp_fail_on_boom, workers=2) as pool:
            with pytest.raises(RuntimeError, match="kaput"):
                pool.request({0: b"boom", 1: b"healthy"})
            # Worker 1's healthy reply from the failed round must not
            # masquerade as this round's answer.
            assert pool.request({0: b"a", 1: b"b"}) == {0: b"a", 1: b"b"}

    def test_all_workers_failing_still_drains(self):
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(_pwp_fail_on_boom, workers=2) as pool:
            with pytest.raises(RuntimeError, match="kaput"):
                pool.request({0: b"boom", 1: b"boom"})
            assert pool.request({0: b"x", 1: b"y"}) == {0: b"x", 1: b"y"}

    def test_failed_initializer_raises_at_construction(self):
        from repro.parallel import PersistentWorkerPool

        with pytest.raises(RuntimeError, match="init exploded"):
            PersistentWorkerPool(_pwp_echo, workers=1, initializer=_pwp_bad_init)

    def test_empty_payload_reserved(self):
        from repro.parallel import PersistentWorkerPool

        with PersistentWorkerPool(_pwp_echo, workers=1) as pool:
            with pytest.raises(ValueError):
                pool.request({0: b""})

    def test_close_is_idempotent(self):
        from repro.parallel import PersistentWorkerPool

        pool = PersistentWorkerPool(_pwp_echo, workers=1)
        pool.close()
        pool.close()

    def test_zero_workers_rejected(self):
        from repro.parallel import PersistentWorkerPool

        with pytest.raises(ValueError):
            PersistentWorkerPool(_pwp_echo, workers=0)


# ----------------------------------------------------------------------
# SnapshotRing: the shared-memory snapshot plane's storage layer
# ----------------------------------------------------------------------
class TestSnapshotRing:
    def _arrays(self, n: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return (
            rng.uniform(1.0, 9.0, n),
            rng.uniform(0.5, 2.0, n),
            rng.integers(0, 4, n),
        )

    def test_write_read_round_trip_zero_copy(self):
        from repro.parallel import SnapshotRing

        ring = SnapshotRing.create(slots=4, slot_bytes=4096)
        try:
            sizes, costs, initial = self._arrays(100)
            ring.write(2, 1, sizes, costs, initial)
            views = ring.read(2, 1, 100)
            assert views is not None
            np.testing.assert_array_equal(views[0], sizes)
            np.testing.assert_array_equal(views[1], costs)
            np.testing.assert_array_equal(views[2], initial)
            for view in views:
                assert not view.flags.writeable
                assert view.base is not None  # aliases the shm pages
            del view, views  # release the mapping before close()
        finally:
            ring.close()

    def test_generation_mismatch_reads_none(self):
        from repro.parallel import SnapshotRing

        ring = SnapshotRing.create(slots=2, slot_bytes=4096)
        try:
            sizes, costs, initial = self._arrays(10)
            ring.write(0, 1, sizes, costs, initial)
            assert ring.read(0, 2, 10) is None       # recycled generation
            assert ring.read(0, 1, 11) is None       # wrong length
            assert ring.read(5, 1, 10) is None       # out-of-range slot
            assert ring.read(1, 0, 10) is None       # never-written slot
            assert ring.read(0, 1, 10) is not None   # the real coordinates
        finally:
            ring.close()

    def test_rewrite_bumps_generation_and_invalidates(self):
        from repro.parallel import SnapshotRing

        ring = SnapshotRing.create(slots=1, slot_bytes=4096)
        try:
            first = self._arrays(8, seed=1)
            second = self._arrays(8, seed=2)
            ring.write(0, 1, *first)
            ring.write(0, 2, *second)
            assert ring.read(0, 1, 8) is None
            views = ring.read(0, 2, 8)
            np.testing.assert_array_equal(views[0], second[0])
            del views  # release the mapping before close()
        finally:
            ring.close()

    def test_fits_and_oversize_write_rejected(self):
        from repro.parallel import SnapshotRing

        # 16-byte header + 3 arrays * 8 bytes * n
        ring = SnapshotRing.create(slots=1, slot_bytes=16 + 24 * 10)
        try:
            assert ring.fits(10)
            assert not ring.fits(11)
            with pytest.raises(ValueError, match="exceeds"):
                ring.write(0, 1, *self._arrays(11))
        finally:
            ring.close()

    def test_reader_cannot_write(self):
        from repro.parallel import SnapshotRing

        ring = SnapshotRing.create(slots=1, slot_bytes=4096)
        try:
            reader = SnapshotRing.attach(ring.name, 1, 4096)
            try:
                with pytest.raises(RuntimeError, match="owner"):
                    reader.write(0, 1, *self._arrays(4))
            finally:
                reader.close()
        finally:
            ring.close()

    def test_owner_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        from repro.parallel import SnapshotRing

        ring = SnapshotRing.create(slots=1, slot_bytes=64)
        name = ring.name
        ring.close()
        ring.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_geometry_validated(self):
        from repro.parallel import SnapshotRing

        with pytest.raises(ValueError):
            SnapshotRing.create(slots=0, slot_bytes=64)
        with pytest.raises(ValueError):
            SnapshotRing.create(slots=1, slot_bytes=16)
        with pytest.raises(ValueError):
            SnapshotRing.create(slots=1, slot_bytes=100)  # not 8-aligned

    def test_cross_process_attach_and_generation_guard(self):
        """A spawned worker attaches by name, reads the exact bytes the
        owner wrote, and sees a recycled slot as ``None`` — the whole
        reader-side contract the service's worker pool relies on."""
        import json

        from repro.parallel import PersistentWorkerPool, SnapshotRing

        ring = SnapshotRing.create(slots=2, slot_bytes=4096)
        try:
            sizes, costs, initial = self._arrays(25, seed=3)
            ring.write(1, 7, sizes, costs, initial)
            with PersistentWorkerPool(
                _pwp_ring_read, workers=1,
                initializer=_pwp_ring_attach,
                initargs=(ring.name, 2, 4096),
            ) as pool:
                reply = pool.request({
                    0: json.dumps({"slot": 1, "gen": 7, "n": 25}).encode()
                })[0]
                got_sizes, got_costs, got_initial = json.loads(reply)
                np.testing.assert_array_equal(got_sizes, sizes)
                np.testing.assert_array_equal(got_costs, costs)
                np.testing.assert_array_equal(got_initial, initial)
                # Owner recycles the slot: the promised generation no
                # longer matches, and the reader must refuse the view.
                ring.write(1, 8, *self._arrays(25, seed=4))
                reply = pool.request({
                    0: json.dumps({"slot": 1, "gen": 7, "n": 25}).encode()
                })[0]
                assert reply == b"stale"
        finally:
            ring.close()
