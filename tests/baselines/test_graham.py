"""Tests for the Graham list-scheduling / LPT substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import list_schedule, lpt_rebalance, lpt_schedule
from repro.core import exact_rebalance, make_instance

sizes_lists = st.lists(
    st.integers(min_value=1, max_value=30), min_size=1, max_size=9
)


class TestListSchedule:
    def test_simple(self):
        mapping = list_schedule([4, 3, 2], 2)
        loads = np.zeros(2)
        np.add.at(loads, mapping, [4, 3, 2])
        assert loads.max() == 5.0

    def test_every_job_placed(self):
        mapping = list_schedule([1] * 7, 3)
        assert mapping.shape == (7,)
        assert set(mapping.tolist()) <= {0, 1, 2}

    @settings(max_examples=40, deadline=None)
    @given(sizes_lists, st.integers(min_value=1, max_value=4))
    def test_graham_bound(self, sizes, m):
        """List scheduling <= (2 - 1/m) OPT [Graham 1966]."""
        mapping = list_schedule(sizes, m)
        loads = np.zeros(m)
        np.add.at(loads, mapping, sizes)
        inst = make_instance(sizes=sizes, initial=[0] * len(sizes),
                             num_processors=m)
        opt = exact_rebalance(inst, k=len(sizes)).makespan
        assert loads.max() <= (2.0 - 1.0 / m) * opt + 1e-9


class TestLPT:
    @settings(max_examples=40, deadline=None)
    @given(sizes_lists, st.integers(min_value=1, max_value=4))
    def test_lpt_bound(self, sizes, m):
        """LPT <= (4/3 - 1/(3m)) OPT [Graham 1969]."""
        mapping = lpt_schedule(sizes, m)
        loads = np.zeros(m)
        np.add.at(loads, mapping, sizes)
        inst = make_instance(sizes=sizes, initial=[0] * len(sizes),
                             num_processors=m)
        opt = exact_rebalance(inst, k=len(sizes)).makespan
        assert loads.max() <= (4.0 / 3.0 - 1.0 / (3 * m)) * opt + 1e-9

    def test_classic_seven_sixths_example(self):
        # Classic: LPT gives 7 on {3,3,2,2,2} with 2 machines (OPT = 6),
        # exactly the 7/6 = 4/3 - 1/(3*2) worst case.
        mapping = lpt_schedule([3, 3, 2, 2, 2], 2)
        loads = np.zeros(2)
        np.add.at(loads, mapping, [3, 3, 2, 2, 2])
        assert loads.max() == 7.0


class TestLPTRebalance:
    def test_ignores_budget_but_reports_it(self):
        inst = make_instance(
            sizes=[5, 5, 5, 5], initial=[0, 0, 0, 0], num_processors=2
        )
        res = lpt_rebalance(inst, k=0)
        assert res.meta["ignores_budget"]
        assert res.meta["move_budget_violated"] == (res.num_moves > 0)

    def test_makespan_quality(self):
        inst = make_instance(
            sizes=[5, 5, 5, 5], initial=[0, 0, 0, 0], num_processors=2
        )
        res = lpt_rebalance(inst)
        assert res.makespan == 10.0
