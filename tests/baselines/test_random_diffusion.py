"""Tests for the random-move control and diffusive balancing."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines import default_topology, diffusive_rebalance, random_rebalance
from repro.core import make_instance

from ..conftest import instances_with_k


class TestRandomRebalance:
    def test_deterministic_given_seed(self):
        inst = make_instance(
            sizes=[3, 2, 1, 4], initial=[0, 0, 1, 1], num_processors=3
        )
        a = random_rebalance(inst, k=2, seed=7)
        b = random_rebalance(inst, k=2, seed=7)
        assert np.array_equal(a.assignment.mapping, b.assignment.mapping)

    def test_seed_changes_outcome(self):
        inst = make_instance(
            sizes=[3, 2, 1, 4, 5, 6], initial=[0] * 6, num_processors=4
        )
        outcomes = {
            tuple(random_rebalance(inst, k=4, seed=s).assignment.mapping.tolist())
            for s in range(8)
        }
        assert len(outcomes) > 1

    def test_single_processor_noop(self):
        inst = make_instance(sizes=[1, 2], initial=[0, 0], num_processors=1)
        res = random_rebalance(inst, k=5)
        assert res.num_moves == 0

    @settings(max_examples=30, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_budget_respected(self, case):
        inst, k = case
        res = random_rebalance(inst, k=k, seed=0)
        assert res.num_moves <= k

    def test_cost_budget_respected(self):
        inst = make_instance(
            sizes=[1, 1, 1], initial=[0, 0, 0], num_processors=2,
            costs=[5, 5, 5],
        )
        res = random_rebalance(inst, budget=5.0, seed=1)
        assert res.relocation_cost <= 5.0


class TestTopologies:
    def test_ring(self):
        g = default_topology(5, "ring")
        assert g.number_of_nodes() == 5
        assert all(d == 2 for _, d in g.degree)

    def test_complete(self):
        g = default_topology(4, "complete")
        assert g.number_of_edges() == 6

    def test_star(self):
        g = default_topology(4, "star")
        assert sorted(d for _, d in g.degree) == [1, 1, 1, 3]

    def test_grid(self):
        g = default_topology(6, "grid")
        assert g.number_of_nodes() == 6

    def test_unknown(self):
        with pytest.raises(ValueError):
            default_topology(3, "moebius")


class TestDiffusion:
    def test_reduces_imbalance_on_ring(self):
        inst = make_instance(
            sizes=[2] * 12, initial=[0] * 12, num_processors=4
        )
        res = diffusive_rebalance(inst, rounds=12)
        assert res.makespan < inst.initial_makespan

    def test_respects_move_budget(self):
        inst = make_instance(
            sizes=[2] * 12, initial=[0] * 12, num_processors=4
        )
        res = diffusive_rebalance(inst, k=3, rounds=12)
        assert res.num_moves <= 3

    def test_rejects_mismatched_graph(self):
        inst = make_instance(sizes=[1, 1], initial=[0, 0], num_processors=2)
        with pytest.raises(ValueError, match="nodes"):
            diffusive_rebalance(inst, graph=nx.path_graph(5))

    def test_custom_graph(self):
        inst = make_instance(
            sizes=[4, 4, 4, 4], initial=[0, 0, 0, 0], num_processors=2
        )
        res = diffusive_rebalance(inst, graph=nx.complete_graph(2), rounds=6)
        assert res.makespan <= inst.initial_makespan

    def test_only_neighbors_receive(self):
        """With a path graph, a one-round diffusion from node 0 can only
        reach node 1."""
        inst = make_instance(
            sizes=[2] * 8, initial=[0] * 8, num_processors=4
        )
        res = diffusive_rebalance(
            inst, graph=nx.path_graph(4), rounds=1
        )
        touched = set(np.unique(res.assignment.mapping.tolist()))
        assert touched <= {0, 1}
