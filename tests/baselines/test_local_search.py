"""Tests for hill-climbing rebalancing."""

import pytest
from hypothesis import given, settings

from repro.baselines import hill_climb_rebalance
from repro.core import make_instance

from ..conftest import instances_with_k


class TestHillClimb:
    def test_never_worse_than_initial(self):
        inst = make_instance(
            sizes=[9, 4, 4], initial=[0, 0, 0], num_processors=2
        )
        res = hill_climb_rebalance(inst, k=2)
        assert res.makespan <= inst.initial_makespan

    def test_respects_move_budget(self):
        inst = make_instance(
            sizes=[5, 5, 5, 5], initial=[0, 0, 0, 0], num_processors=4
        )
        res = hill_climb_rebalance(inst, k=1)
        assert res.num_moves <= 1

    def test_respects_cost_budget(self):
        inst = make_instance(
            sizes=[5, 5, 5], initial=[0, 0, 0], num_processors=3,
            costs=[10, 1, 1],
        )
        res = hill_climb_rebalance(inst, budget=2.0)
        assert res.relocation_cost <= 2.0

    def test_stops_at_local_optimum(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 1], num_processors=2)
        res = hill_climb_rebalance(inst, k=10)
        assert res.num_moves == 0
        assert res.meta["steps"] == 0

    def test_single_processor(self):
        inst = make_instance(sizes=[3, 2], initial=[0, 0], num_processors=1)
        res = hill_climb_rebalance(inst, k=5)
        assert res.num_moves == 0

    @settings(max_examples=40, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_monotone_improvement(self, case):
        """The makespan never increases relative to the start."""
        inst, k = case
        res = hill_climb_rebalance(inst, k=k)
        assert res.makespan <= inst.initial_makespan + 1e-9
        assert res.num_moves <= k

    @settings(max_examples=25, deadline=None)
    @given(instances_with_k(max_jobs=8, max_processors=4))
    def test_more_budget_never_hurts(self, case):
        inst, k = case
        small = hill_climb_rebalance(inst, k=k)
        large = hill_climb_rebalance(inst, k=k + 3)
        assert large.makespan <= small.makespan + 1e-9
