"""Tests for the Shmoys-Tardos LP + rounding baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    round_fractional,
    shmoys_tardos_rebalance,
    solve_fractional_lp,
)
from repro.core import exact_rebalance, make_instance

from ..conftest import small_instances


@st.composite
def weighted_cases(draw):
    inst = draw(small_instances(max_jobs=6, max_processors=3, unit_costs=False))
    total = float(inst.costs.sum())
    budget = draw(st.floats(min_value=0.0, max_value=max(total, 1.0)))
    return inst, budget


class TestFractionalLP:
    def test_identity_is_free(self):
        inst = make_instance(sizes=[5, 3], initial=[0, 1], num_processors=2)
        solved = solve_fractional_lp(inst, inst.initial_makespan)
        assert solved is not None
        cost, x = solved
        assert cost == pytest.approx(0.0, abs=1e-6)

    def test_infeasible_below_max_size(self):
        inst = make_instance(sizes=[10.0], initial=[0])
        assert solve_fractional_lp(inst, 5.0) is None

    def test_lp_cost_monotone_in_target(self):
        inst = make_instance(
            sizes=[6, 6, 6], initial=[0, 0, 0], num_processors=3,
            costs=[2, 3, 4],
        )
        costs = []
        for target in (6.0, 9.0, 12.0, 18.0):
            solved = solve_fractional_lp(inst, target)
            assert solved is not None
            costs.append(solved[0])
        assert all(a >= b - 1e-6 for a, b in zip(costs, costs[1:]))


class TestRounding:
    @settings(max_examples=25, deadline=None)
    @given(weighted_cases())
    def test_rounding_preserves_cost_and_bounds_load(self, case):
        inst, _ = case
        target = max(inst.average_load, inst.max_size) * 1.2 + 1e-9
        solved = solve_fractional_lp(inst, target)
        if solved is None:
            return
        lp_cost, x = solved
        mapping = round_fractional(inst, x)
        loads = np.zeros(inst.num_processors)
        np.add.at(loads, mapping, inst.sizes)
        # Shmoys-Tardos guarantee: load <= T + max job size.
        assert loads.max() <= target + inst.max_size + 1e-6
        moved = mapping != inst.initial
        cost = float(inst.costs[moved].sum())
        assert cost <= lp_cost + 1e-4

    def test_integral_input_passes_through(self):
        inst = make_instance(sizes=[5, 3], initial=[0, 1], num_processors=2)
        x = np.zeros((2, 2))
        x[0, 0] = 1.0
        x[1, 1] = 1.0
        mapping = round_fractional(inst, x)
        assert mapping.tolist() == [0, 1]


class TestEndToEnd:
    def test_requires_some_budget(self):
        inst = make_instance(sizes=[1.0], initial=[0])
        with pytest.raises(ValueError):
            shmoys_tardos_rebalance(inst)

    @settings(max_examples=25, deadline=None)
    @given(weighted_cases())
    def test_two_approximation(self, case):
        inst, budget = case
        opt = exact_rebalance(inst, budget=budget).makespan
        res = shmoys_tardos_rebalance(inst, budget=budget)
        assert res.relocation_cost <= budget + 1e-5 * max(1.0, budget)
        # 2-approx plus the binary-search tolerance.
        assert res.makespan <= 2.0 * opt * (1.0 + 1e-2) + 1e-6, (
            f"{res.makespan} vs opt {opt} on {inst.to_dict()} B={budget}"
        )

    def test_zero_budget_stays_home(self):
        inst = make_instance(
            sizes=[9, 1], initial=[0, 0], num_processors=2, costs=[4, 4]
        )
        res = shmoys_tardos_rebalance(inst, budget=0.0)
        assert res.relocation_cost == 0.0
        assert res.makespan == 10.0
