"""Tests for the constrained Shmoys-Tardos 2-approximation (the upper
bound paired with Corollary 1's 1.5 lower bound)."""

import numpy as np
import pytest

from repro.core import make_instance
from repro.hardness import (
    ConstrainedInstance,
    constrained_gadget_from_3dm,
    constrained_shmoys_tardos,
    exact_constrained,
    planted_yes_instance,
)


class TestConstrainedShmoysTardos:
    def test_respects_allowed_sets_on_gadget(self):
        rng = np.random.default_rng(40)
        tdm = planted_yes_instance(3, 4, rng)
        cinst, target = constrained_gadget_from_3dm(tdm)
        budget = float(cinst.instance.num_jobs)
        makespan, mapping = constrained_shmoys_tardos(cinst, budget)
        for j, p in enumerate(mapping):
            assert int(p) in cinst.allowed[j]
        exact, _ = exact_constrained(cinst, k=cinst.instance.num_jobs)
        assert makespan <= 2.0 * exact * (1 + 1e-2) + 1e-6

    def test_simple_constrained_instance(self):
        # Job 1 may only live on processors {0, 1}; job 2 anywhere.
        inst = make_instance(
            sizes=[6, 4, 4], initial=[0, 0, 0], num_processors=3
        )
        cinst = ConstrainedInstance(
            instance=inst,
            allowed=(
                frozenset({0, 1}),
                frozenset({0, 1, 2}),
                frozenset({0, 1, 2}),
            ),
        )
        makespan, mapping = constrained_shmoys_tardos(cinst, budget=3.0)
        assert int(mapping[0]) in {0, 1}
        exact, _ = exact_constrained(cinst, k=3)
        assert makespan <= 2.0 * exact * (1 + 1e-2) + 1e-6

    def test_tight_allowed_sets_force_identity(self):
        inst = make_instance(
            sizes=[6, 4], initial=[0, 0], num_processors=2
        )
        cinst = ConstrainedInstance(
            instance=inst,
            allowed=(frozenset({0}), frozenset({0})),
        )
        makespan, mapping = constrained_shmoys_tardos(cinst, budget=10.0)
        assert mapping.tolist() == [0, 0]
        assert makespan == 10.0
