"""Tests for 3DM and the Theorem 6 / Corollary 1 / Theorem 7 gadgets."""

import itertools

import numpy as np
import pytest

from repro.hardness import (
    ThreeDMInstance,
    conflict_gadget_from_3dm,
    constrained_gadget_from_3dm,
    exact_conflict_makespan,
    exact_constrained,
    exact_gap_min_makespan,
    feasible_conflict_assignment,
    gadget_from_3dm,
    greedy_constrained,
    planted_yes_instance,
    solve_3dm,
    verified_no_instance,
    verify_gadget_gap,
)


def brute_force_3dm(inst):
    for combo in itertools.combinations(range(inst.num_triples), inst.n):
        triples = [inst.triples[i] for i in combo]
        if (
            len({t[0] for t in triples}) == inst.n
            and len({t[1] for t in triples}) == inst.n
            and len({t[2] for t in triples}) == inst.n
        ):
            return combo
    return None


class TestThreeDM:
    def test_trivial_yes(self):
        inst = ThreeDMInstance(n=2, triples=((0, 0, 0), (1, 1, 1)))
        assert solve_3dm(inst) == (0, 1)

    def test_trivial_no(self):
        inst = ThreeDMInstance(n=2, triples=((0, 0, 0), (1, 0, 1)))
        assert solve_3dm(inst) is None

    def test_uncovered_a_element(self):
        inst = ThreeDMInstance(n=2, triples=((0, 0, 0), (0, 1, 1)))
        assert solve_3dm(inst) is None

    def test_rejects_bad_triples(self):
        with pytest.raises(ValueError):
            ThreeDMInstance(n=2, triples=((0, 0, 5),))
        with pytest.raises(ValueError):
            ThreeDMInstance(n=2, triples=((0, 0, 0), (0, 0, 0)))

    def test_type_counts(self):
        inst = ThreeDMInstance(
            n=2, triples=((0, 0, 0), (0, 1, 1), (1, 0, 1))
        )
        assert inst.type_counts() == [2, 1]

    @pytest.mark.parametrize("seed", range(6))
    def test_solver_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        inst = planted_yes_instance(3, 4, rng)
        assert (solve_3dm(inst) is None) == (brute_force_3dm(inst) is None)
        no = verified_no_instance(3, 6, rng)
        assert brute_force_3dm(no) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_generators(self, seed):
        rng = np.random.default_rng(seed)
        assert solve_3dm(planted_yes_instance(4, 6, rng)) is not None
        assert solve_3dm(verified_no_instance(4, 8, rng)) is None


class TestTheorem6Gadget:
    def test_gadget_job_counts(self):
        rng = np.random.default_rng(0)
        tdm = planted_yes_instance(3, 3, rng)
        gap, budget = gadget_from_3dm(tdm)
        m, n = tdm.num_triples, tdm.n
        # 2n element jobs + (m - n) dummies (when every type occupied).
        assert gap.num_jobs == 2 * n + (m - n)
        assert gap.num_machines == m
        assert budget == (m + n) * 1.0

    def test_yes_instance_hits_makespan_two(self):
        rng = np.random.default_rng(1)
        tdm = planted_yes_instance(3, 3, rng)
        gap, budget = gadget_from_3dm(tdm)
        makespan, mapping = exact_gap_min_makespan(gap, budget)
        assert makespan == 2.0
        # Budget forces every placement onto a cost-p machine.
        total = sum(gap.cost[j, mapping[j]] for j in range(gap.num_jobs))
        assert total <= budget + 1e-9

    def test_no_instance_misses_two(self):
        rng = np.random.default_rng(2)
        tdm = verified_no_instance(3, 6, rng)
        v = verify_gadget_gap(tdm)
        assert not v["has_matching"]
        assert v["gadget_makespan"] > 2.0  # >= 3 or infeasible
        assert v["consistent"]

    @pytest.mark.parametrize("seed", range(4))
    def test_gap_consistency(self, seed):
        rng = np.random.default_rng(seed)
        for tdm in (
            planted_yes_instance(3, 4, rng),
            verified_no_instance(3, 6, rng),
        ):
            assert verify_gadget_gap(tdm)["consistent"]


class TestCorollary1Gadget:
    def test_yes_instance_reaches_two(self):
        rng = np.random.default_rng(3)
        tdm = planted_yes_instance(3, 3, rng)
        cinst, target = constrained_gadget_from_3dm(tdm)
        makespan, mapping = exact_constrained(cinst, k=cinst.instance.num_jobs)
        assert makespan == target == 2.0
        # Every job landed inside its allowed set.
        for j, p in enumerate(mapping):
            assert int(p) in cinst.allowed[j]

    def test_greedy_heuristic_respects_allowed_sets(self):
        rng = np.random.default_rng(4)
        tdm = planted_yes_instance(3, 4, rng)
        cinst, _ = constrained_gadget_from_3dm(tdm)
        makespan, mapping = greedy_constrained(cinst, k=cinst.instance.num_jobs)
        for j, p in enumerate(mapping):
            assert int(p) in cinst.allowed[j]
        assert makespan >= 2.0  # never below the optimum

    def test_allowed_must_contain_home(self):
        from repro.core import make_instance
        from repro.hardness import ConstrainedInstance

        inst = make_instance(sizes=[1.0], initial=[0], num_processors=2)
        with pytest.raises(ValueError, match="home"):
            ConstrainedInstance(instance=inst, allowed=(frozenset({1}),))


class TestTheorem7Gadget:
    def test_yes_instance_feasible_and_structured(self):
        rng = np.random.default_rng(5)
        tdm = planted_yes_instance(3, 3, rng)
        g = conflict_gadget_from_3dm(tdm)
        mapping = feasible_conflict_assignment(g)
        assert mapping is not None
        m, n = tdm.num_triples, tdm.n
        # Exactly one triple job per machine.
        triple_machines = mapping[:m]
        assert len(set(triple_machines.tolist())) == m
        # No conflicting pair shares a machine.
        for a, b in g.conflicts:
            assert mapping[a] != mapping[b]

    def test_no_instance_infeasible(self):
        rng = np.random.default_rng(6)
        tdm = verified_no_instance(3, 6, rng)
        g = conflict_gadget_from_3dm(tdm)
        assert feasible_conflict_assignment(g) is None

    def test_exact_makespan_on_feasible(self):
        rng = np.random.default_rng(7)
        tdm = planted_yes_instance(2, 2, rng)
        g = conflict_gadget_from_3dm(tdm)
        solved = exact_conflict_makespan(g)
        assert solved is not None
        makespan, mapping = solved
        for a, b in g.conflicts:
            assert mapping[a] != mapping[b]
        assert makespan >= 1.0

    def test_conflict_validation(self):
        from repro.hardness import ConflictInstance

        with pytest.raises(ValueError):
            ConflictInstance(
                sizes=np.ones(2), num_machines=2, conflicts=frozenset({(0, 0)})
            )
