"""Tests for PARTITION and move minimization (Theorem 5)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_instance
from repro.hardness import (
    PartitionInstance,
    min_moves_exact,
    min_moves_greedy,
    random_no_instance,
    random_yes_instance,
    reduction_from_partition,
    solve_partition,
)


def brute_force_partition(values):
    total = sum(values)
    if total % 2:
        return None
    for r in range(len(values) + 1):
        for subset in itertools.combinations(range(len(values)), r):
            if sum(values[i] for i in subset) * 2 == total:
                return subset
    return None


class TestPartitionSolver:
    def test_simple_yes(self):
        subset = solve_partition([1, 2, 3])
        assert subset is not None
        values = [1, 2, 3]
        assert sum(values[i] for i in subset) == 3

    def test_simple_no(self):
        assert solve_partition([1, 2]) is None

    def test_odd_total(self):
        assert solve_partition([1, 1, 1]) is None

    def test_oversized_element(self):
        assert solve_partition([10, 1, 1]) is None

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=12),
                    min_size=1, max_size=8))
    def test_matches_brute_force(self, values):
        got = solve_partition(values)
        expected = brute_force_partition(values)
        assert (got is None) == (expected is None)
        if got is not None:
            assert sum(values[i] for i in got) * 2 == sum(values)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PartitionInstance(values=(0, 1))


class TestGenerators:
    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_yes_instances_solvable(self, n):
        rng = np.random.default_rng(n)
        inst = random_yes_instance(n, rng)
        assert len(inst.values) == n
        assert solve_partition(inst.values) is not None

    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_no_instances_unsolvable(self, n):
        rng = np.random.default_rng(n)
        inst = random_no_instance(n, rng)
        assert len(inst.values) == n
        assert inst.total % 2 == 1
        assert solve_partition(inst.values) is None


class TestMoveMinimization:
    def test_trivial_zero_moves(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 1], num_processors=2)
        res = min_moves_exact(inst, 5.0)
        assert res.achievable and res.moves == 0

    def test_needs_one_move(self):
        inst = make_instance(sizes=[5, 5], initial=[0, 0], num_processors=2)
        res = min_moves_exact(inst, 5.0)
        assert res.achievable and res.moves == 1

    def test_unachievable_below_max_size(self):
        inst = make_instance(sizes=[10.0], initial=[0], num_processors=2)
        res = min_moves_exact(inst, 5.0)
        assert not res.achievable and res.moves is None

    def test_mapping_achieves_bound(self):
        inst = make_instance(
            sizes=[4, 4, 4, 4], initial=[0, 0, 0, 0], num_processors=2
        )
        res = min_moves_exact(inst, 8.0)
        assert res.achievable
        loads = np.zeros(2)
        np.add.at(loads, res.mapping, inst.sizes)
        assert loads.max() <= 8.0

    def test_greedy_sound_on_random(self):
        """When greedy says achievable, it really is (with its mapping)."""
        rng = np.random.default_rng(3)
        for _ in range(20):
            n, m = int(rng.integers(3, 8)), int(rng.integers(2, 4))
            inst = make_instance(
                sizes=rng.integers(1, 15, n).astype(float),
                initial=rng.integers(0, m, n), num_processors=m,
            )
            bound = float(inst.average_load * rng.uniform(1.0, 2.0))
            greedy = min_moves_greedy(inst, bound)
            if greedy.achievable:
                loads = np.zeros(m)
                np.add.at(loads, greedy.mapping, inst.sizes)
                assert loads.max() <= bound + 1e-9


class TestTheorem5Reduction:
    @pytest.mark.parametrize("seed", range(5))
    def test_yes_gadgets_achievable(self, seed):
        rng = np.random.default_rng(seed)
        part = random_yes_instance(9, rng)
        inst, bound = reduction_from_partition(part)
        res = min_moves_exact(inst, bound)
        assert res.achievable
        # The moved set is one side of a perfect partition.
        loads = np.zeros(2)
        np.add.at(loads, res.mapping, inst.sizes)
        assert loads[0] == loads[1] == bound

    @pytest.mark.parametrize("seed", range(5))
    def test_no_gadgets_unachievable(self, seed):
        rng = np.random.default_rng(seed)
        part = random_no_instance(9, rng)
        inst, bound = reduction_from_partition(part)
        assert not min_moves_exact(inst, bound).achievable

    def test_gadget_structure(self):
        part = PartitionInstance(values=(3, 3, 2, 2, 2))
        inst, bound = reduction_from_partition(part)
        assert inst.num_processors == 2
        assert inst.initial.tolist() == [0] * 5
        assert bound == 6.0
