"""Tests for the GAP-wide Shmoys-Tardos 2-approximation (Theorem 6's
upper-bound counterpart)."""

import numpy as np
import pytest

from repro.hardness import (
    GAPInstance,
    exact_gap_min_makespan,
    gadget_from_3dm,
    gap_shmoys_tardos,
    planted_yes_instance,
)


class TestGapShmoysTardos:
    def test_empty(self):
        gap = GAPInstance(sizes=np.empty(0), cost=np.empty((0, 2)))
        makespan, mapping = gap_shmoys_tardos(gap, 0.0)
        assert makespan == 0.0

    def test_two_approx_on_gadgets(self):
        rng = np.random.default_rng(30)
        for _ in range(3):
            tdm = planted_yes_instance(3, 3, rng)
            gap, budget = gadget_from_3dm(tdm)
            exact, _ = exact_gap_min_makespan(gap, budget)
            approx, mapping = gap_shmoys_tardos(gap, budget)
            cost = sum(gap.cost[j, mapping[j]] for j in range(gap.num_jobs))
            assert cost <= budget + 1e-6
            assert approx <= 2.0 * exact + 1e-6

    def test_cannot_beat_theorem6_gap(self):
        """The 2-approx gives 3 (not 2) on some yes-gadgets — the
        approximation gap Theorem 6 proves no poly algorithm below 1.5
        can close."""
        rng = np.random.default_rng(2)
        tdm = planted_yes_instance(3, 4, rng)
        gap, budget = gadget_from_3dm(tdm)
        exact, _ = exact_gap_min_makespan(gap, budget)
        approx, _ = gap_shmoys_tardos(gap, budget)
        assert exact == 2.0
        assert approx >= exact  # and in this seeded case lands on 3.0
        assert approx <= 4.0

    def test_random_gap_instances(self):
        rng = np.random.default_rng(31)
        for _ in range(5):
            n, m = int(rng.integers(3, 7)), int(rng.integers(2, 4))
            gap = GAPInstance(
                sizes=rng.integers(1, 10, n).astype(float),
                cost=rng.uniform(0.0, 5.0, (n, m)),
            )
            budget = float(gap.cost.max(axis=1).sum())  # always feasible
            exact, _ = exact_gap_min_makespan(gap, budget)
            approx, mapping = gap_shmoys_tardos(gap, budget)
            cost = sum(gap.cost[j, mapping[j]] for j in range(n))
            assert cost <= budget + 1e-6
            assert approx <= 2.0 * exact * (1 + 1e-2) + 1e-6

    def test_infeasible_budget_raises(self):
        gap = GAPInstance(
            sizes=np.array([1.0]), cost=np.array([[5.0, 5.0]])
        )
        with pytest.raises(RuntimeError, match="budget"):
            gap_shmoys_tardos(gap, 1.0)
