#!/usr/bin/env python
"""Watching the Section-5 hardness results happen.

The paper's negative results are constructive: each one compiles a
known NP-hard problem into a rebalancing-flavored instance whose
*answer gap* any good approximation algorithm would have to bridge.
This example builds each gadget and shows the gap with exact solvers.

Run:  python examples/hardness_gadgets.py
"""

import numpy as np

from repro.hardness import (
    conflict_gadget_from_3dm,
    constrained_gadget_from_3dm,
    exact_constrained,
    feasible_conflict_assignment,
    min_moves_exact,
    min_moves_greedy,
    planted_yes_instance,
    random_no_instance,
    random_yes_instance,
    reduction_from_partition,
    solve_3dm,
    verified_no_instance,
    verify_gadget_gap,
)

rng = np.random.default_rng(2003)

# ----------------------------------------------------------------------
print("=" * 70)
print("Theorem 5: move minimization is inapproximable (from PARTITION)")
print("=" * 70)
for label, part in (
    ("yes", random_yes_instance(10, rng)),
    ("no ", random_no_instance(10, rng)),
):
    inst, bound = reduction_from_partition(part)
    exact = min_moves_exact(inst, bound)
    greedy = min_moves_greedy(inst, bound)
    print(f"PARTITION {label}-instance {part.values}")
    print(f"  gadget: all jobs on processor 0 of 2, load bound {bound}")
    print(f"  exact : achievable={exact.achievable} moves={exact.moves}")
    print(f"  greedy: achievable={greedy.achievable}  <- a polynomial "
          f"heuristic may wrongly give up (Theorem 5 says some always will)")

# ----------------------------------------------------------------------
print()
print("=" * 70)
print("Theorem 6: two-valued-cost GAP has no sub-1.5 approximation (3DM)")
print("=" * 70)
yes3 = planted_yes_instance(3, 4, rng)
no3 = verified_no_instance(3, 6, rng)
for label, tdm in (("yes", yes3), ("no ", no3)):
    v = verify_gadget_gap(tdm)
    print(f"3DM {label}-instance, {tdm.num_triples} triples over n={tdm.n}: "
          f"matching={v['has_matching']}")
    print(f"  gadget optimal makespan within budget {v['budget']}: "
          f"{v['gadget_makespan']}   (2 iff matching; else >= 3 — the 3/2 gap)")

# ----------------------------------------------------------------------
print()
print("=" * 70)
print("Corollary 1: Constrained Load Rebalancing, same 1.5 gap")
print("=" * 70)
cinst, target = constrained_gadget_from_3dm(yes3)
makespan, _ = exact_constrained(cinst, k=cinst.instance.num_jobs)
print(f"yes-gadget: {cinst.instance.num_jobs} jobs restricted to allowed "
      f"machine subsets; optimal constrained makespan = {makespan} "
      f"(target {target})")

# ----------------------------------------------------------------------
print()
print("=" * 70)
print("Theorem 7: Conflict Scheduling is inapproximable within ANY ratio")
print("=" * 70)
for label, tdm in (("yes", yes3), ("no ", no3)):
    gadget = conflict_gadget_from_3dm(tdm)
    mapping = feasible_conflict_assignment(gadget)
    print(f"3DM {label}-instance -> conflict gadget "
          f"({gadget.num_jobs} jobs, {gadget.num_machines} machines, "
          f"{len(gadget.conflicts)} conflict pairs): "
          f"feasible={'yes' if mapping is not None else 'no'}")
print(
    "\nFeasibility itself encodes 3DM, so any finite-ratio approximation\n"
    "would decide an NP-complete problem — there is nothing to\n"
    "approximate until P = NP."
)
