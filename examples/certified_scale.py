#!/usr/bin/env python
"""Certified rebalancing at 100,000 jobs.

Exact solvers top out around a dozen jobs, yet the paper's guarantees
are worth the most precisely where exhaustive checking is impossible.
Two tools close the gap:

* **oracles** — instance families with *known* optima at any scale:
  unit-size jobs (closed form; the Rudolph et al. model of Section 1)
  and planted-imbalance instances (the Lemma-1 lower bound is tight by
  construction);
* **certificates** — `repro.core.certify` re-derives loads, budgets and
  a proven approximation ratio from scratch, trusting nothing the
  algorithm reported.

Run:  python examples/certified_scale.py
"""

import time

import numpy as np

from repro.core import (
    Instance,
    certify,
    greedy_rebalance,
    m_partition_rebalance,
    unit_rebalance_exact,
)
from repro.core.partition_incremental import m_partition_rebalance_incremental
from repro.workloads import planted_imbalance_instance

N, M, K = 100_000, 128, 5_000
rng = np.random.default_rng(7)

# ----------------------------------------------------------------------
print(f"-- unit-size oracle: n={N}, m={M}, k={K}")
inst = Instance(
    sizes=np.ones(N), costs=np.ones(N), num_processors=M,
    initial=rng.integers(0, M, N),
)
t0 = time.perf_counter()
oracle = unit_rebalance_exact(inst, K)
t_oracle = time.perf_counter() - t0
print(f"closed-form optimum  : {oracle.makespan:.0f}   ({t_oracle * 1e3:.0f} ms)")

for name, fn in (
    ("greedy", greedy_rebalance),
    ("m-partition", m_partition_rebalance),
    ("m-partition-incr", m_partition_rebalance_incremental),
):
    t0 = time.perf_counter()
    res = fn(inst, K)
    elapsed = time.perf_counter() - t0
    cert = certify(res, k=K)
    cert.require()
    print(
        f"{name:>17}: makespan {res.makespan:.0f}  "
        f"ratio vs oracle {res.makespan / oracle.makespan:.4f}  "
        f"moves {res.num_moves}  certified={cert.valid}  "
        f"({elapsed * 1e3:.0f} ms)"
    )

# ----------------------------------------------------------------------
print(f"\n-- planted-imbalance oracle: m=64, 1000 jobs/processor")
inst2, k2, opt2 = planted_imbalance_instance(64, 1000, 800, rng)
print(f"planted optimum      : {opt2:.1f}  (k = {k2})")
for name, fn in (
    ("greedy", greedy_rebalance),
    ("m-partition", m_partition_rebalance),
):
    res = fn(inst2, k2)
    cert = certify(res, k=k2)
    bound = 1.5 if name == "m-partition" else 2.0 - 1.0 / 64
    cert.require(max_ratio=bound)
    print(
        f"{name:>17}: ratio {res.makespan / opt2:.4f}  "
        f"(theorem bound {bound:.3f})  proven by certificate: "
        f"{cert.proven_ratio:.4f} <= {bound:.3f}"
    )

print(
    "\nEvery number above was re-derived by an independent certificate —\n"
    "the theorems hold at a scale no exact solver could audit."
)
