#!/usr/bin/env python
"""Web-server rebalancing — the paper's motivating application.

"Consider a set of web servers, each with a set of (virtual) websites.
As information is collected about the usage of each website ... it
might become apparent that the load is not uniformly distributed
across the web servers."  (Section 1)

This example runs a 60-site / 6-server cluster through 48 epochs of
diurnal traffic with flash crowds, comparing four operating policies:

* never migrate,
* GREEDY with k = 3 migrations per epoch,
* M-PARTITION with k = 3 migrations per epoch,
* repack everything with LPT every epoch (unbounded migrations).

Run:  python examples/webserver_rebalancing.py
"""

import numpy as np

from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    FullRepackPolicy,
    GreedyPolicy,
    MPartitionPolicy,
    NoRebalance,
    Simulation,
    build_cluster,
)

SITES, SERVERS, EPOCHS, K, SEED = 60, 6, 48, 3, 2003


def run(policy):
    cluster = build_cluster(SITES, SERVERS, np.random.default_rng(SEED))
    traffic = ComposedTraffic(
        (DiurnalTraffic(period=24, amplitude=0.6),
         FlashCrowdTraffic(probability=0.15, spike_factor=8.0))
    )
    sim = Simulation(cluster=cluster, traffic=traffic, policy=policy,
                     seed=SEED + 1)
    return sim.run(EPOCHS)


results = [
    run(NoRebalance()),
    run(GreedyPolicy(k=K)),
    run(MPartitionPolicy(k=K)),
    run(FullRepackPolicy()),
]

print(f"{SITES} sites on {SERVERS} servers, {EPOCHS} epochs, "
      f"k = {K} migrations/epoch where bounded\n")
print(f"{'policy':>12} | {'mean mkspn':>10} | {'peak mkspn':>10} | "
      f"{'imbalance':>9} | {'migrations':>10}")
print("-" * 64)
for res in results:
    s = res.summary()
    print(
        f"{s['policy']:>12} | {s['mean_makespan']:10.1f} | "
        f"{s['peak_makespan']:10.1f} | {s['mean_imbalance']:9.3f} | "
        f"{s['total_migrations']:10d}"
    )

none, mpart, full = results[0], results[2], results[3]
saved = 1.0 - mpart.mean_makespan / none.mean_makespan
frac = mpart.total_migrations / max(full.total_migrations, 1)
print()
print(f"M-PARTITION cut the mean hottest-server load by {saved:.0%} while "
      f"performing only {frac:.1%} of full repacking's migrations —")
print("the bounded-relocation trade-off the paper formalizes.")

# An ASCII sparkline of the makespan trajectory, epoch by epoch.
print("\nper-epoch makespan (none vs m-partition):")
lo = min(r.makespan for r in none.records + mpart.records)
hi = max(r.makespan for r in none.records + mpart.records)
blocks = " .:-=+*#%@"
for label, res in (("none", none), ("m-part", mpart)):
    line = "".join(
        blocks[int((r.makespan - lo) / (hi - lo + 1e-9) * (len(blocks) - 1))]
        for r in res.records
    )
    print(f"  {label:>7} |{line}|")
