#!/usr/bin/env python
"""Weighted migration costs: the Section 3.2 algorithm and the PTAS.

Migrating a website is not free — a large media site costs far more to
move than a static page.  The weighted problem (Definition 1, second
form) bounds the *total relocation cost* by a budget B instead of the
move count.

This example builds a cluster where the overloaded server hosts one
huge, expensive site and several small, cheap ones, then sweeps the
budget and shows how each algorithm spends it:

* cost-partition — the paper's Section 3.2 extension (knapsack-based);
* ptas           — the Section 4 scheme, (1 + eps)-optimal;
* shmoys-tardos  — the known LP-based 2-approximation (Section 2);
* exact          — branch-and-bound ground truth.

Run:  python examples/cost_budget_rebalancing.py
"""

from repro import make_instance
from repro.baselines import shmoys_tardos_rebalance
from repro.core import cost_partition_rebalance, exact_rebalance, ptas_rebalance

# Server 0: one huge expensive site (size 10, cost 20) + small cheap ones.
instance = make_instance(
    sizes=[10, 4, 4, 3, 3, 2, 6, 5],
    initial=[0, 0, 0, 0, 0, 0, 1, 2],
    num_processors=3,
    costs=[20, 2, 2, 1, 1, 1, 3, 3],
)

print(f"initial loads    : {instance.initial_loads.tolist()}")
print(f"initial makespan : {instance.initial_makespan}")
print(f"moving the big site costs 20; the small ones cost 1-2 each\n")

print(f"{'budget':>6} | {'exact':>6} | {'cost-part':>9} | {'ptas(0.75)':>10} | "
      f"{'shmoys-tardos':>13}")
print("-" * 58)
for budget in (0.0, 2.0, 4.0, 7.0, 12.0, 33.0):
    opt = exact_rebalance(instance, budget=budget)
    cp = cost_partition_rebalance(instance, budget)
    pt = ptas_rebalance(instance, budget, eps=0.75)
    st = shmoys_tardos_rebalance(instance, budget=budget)
    for res in (cp, pt, st):
        assert res.relocation_cost <= budget + 1e-6, "budget violated!"
    print(
        f"{budget:6.1f} | {opt.makespan:6.1f} | {cp.makespan:9.1f} | "
        f"{pt.makespan:10.1f} | {st.makespan:13.1f}"
    )

print(
    "\nNote the shape: small budgets move only the cheap small sites\n"
    "(knapsack in action); the big site moves only once the budget\n"
    "affords its cost-20 migration — and the PTAS tracks the exact\n"
    "frontier within its (1 + eps) guarantee."
)
