#!/usr/bin/env python
"""The PTAS accuracy/runtime trade-off (Section 4, Theorem 4).

A PTAS trades eps for time: makespan at most (1 + eps) OPT, at a cost
that grows steeply as eps shrinks (the number of geometric size classes
is ceil(log_{1+delta}(1/delta)) with delta = eps/6, and the dynamic
program is exponential in that count).

This example sweeps eps on a batch of small weighted instances and
reports measured ratio vs bound, DP sizes and runtime.

Run:  python examples/ptas_tradeoff.py
"""

import time

import numpy as np

from repro.core import exact_rebalance, ptas_rebalance
from repro.workloads import random_instance

rng = np.random.default_rng(42)
CASES = []
for _ in range(10):
    inst = random_instance(7, 3, rng, cost_family="random", integer_sizes=True)
    budget = float(inst.costs.sum()) * 0.4
    CASES.append((inst, budget, exact_rebalance(inst, budget=budget).makespan))

print(f"{len(CASES)} instances, n=7 jobs, m=3 processors, budget = 40% of "
      f"total cost\n")
print(f"{'eps':>5} | {'bound':>6} | {'mean ratio':>10} | {'worst ratio':>11} | "
      f"{'classes':>7} | {'time/instance':>13}")
print("-" * 68)
for eps in (3.0, 2.0, 1.5, 1.0, 0.75, 0.5):
    ratios = []
    classes = 0
    start = time.perf_counter()
    for inst, budget, opt in CASES:
        res = ptas_rebalance(inst, budget, eps=eps)
        assert res.relocation_cost <= budget + 1e-9
        ratios.append(res.makespan / opt if opt else 1.0)
        classes = res.meta["num_classes"]
    elapsed = (time.perf_counter() - start) / len(CASES)
    print(
        f"{eps:5.2f} | {1 + eps:6.2f} | {np.mean(ratios):10.4f} | "
        f"{np.max(ratios):11.4f} | {classes:7d} | {elapsed * 1e3:10.1f} ms"
    )

print(
    "\nEvery measured ratio sits below its 1 + eps bound, and the ratio\n"
    "column marches toward 1.0 as eps shrinks — while runtime explodes,\n"
    "which is exactly why the paper recommends the O(n log n)\n"
    "1.5-approximation 'in practice' and keeps the PTAS for the\n"
    "complexity-theoretic record."
)
