#!/usr/bin/env python
"""Quickstart: rebalance an overloaded cluster with every algorithm.

The scenario from the paper's Definition 1: jobs already live on
processors, the assignment has drifted out of balance, and we may
relocate at most ``k`` jobs to shrink the makespan.

Run:  python examples/quickstart.py
"""

from repro import make_instance, rebalance
from repro.core import combined_lower_bound, exact_rebalance

# A small cluster gone bad: processor 0 carries almost everything.
instance = make_instance(
    sizes=[9, 7, 5, 4, 3, 2, 2, 1],
    initial=[0, 0, 0, 0, 0, 1, 1, 2],
    num_processors=3,
)
K = 3  # we may relocate at most three jobs

print(f"initial loads    : {instance.initial_loads.tolist()}")
print(f"initial makespan : {instance.initial_makespan}")
print(f"lower bound OPT  : >= {combined_lower_bound(instance, K):.2f} "
      f"(avg load / max job / Lemma-1 removal bound)")
print()

print(f"{'algorithm':>14} | {'makespan':>8} | {'moves':>5} | note")
print("-" * 60)
for algorithm, note in [
    ("greedy", "Theorem 1: <= (2 - 1/m) OPT, O(n log n)"),
    ("m-partition", "Theorem 3: <= 1.5 OPT, O(n log n), no OPT oracle"),
    ("hill-climb", "engineering baseline, no worst-case bound"),
    ("exact", "branch & bound ground truth (small n only)"),
]:
    result = rebalance(instance, algorithm=algorithm, k=K)
    print(
        f"{algorithm:>14} | {result.makespan:8.1f} | "
        f"{result.num_moves:5d} | {note}"
    )

# The theorems in action: measure the actual ratios.
opt = exact_rebalance(instance, k=K).makespan
greedy = rebalance(instance, algorithm="greedy", k=K)
mpart = rebalance(instance, algorithm="m-partition", k=K)
print()
print(f"OPT({K} moves)          = {opt}")
print(f"greedy ratio          = {greedy.makespan / opt:.3f}  "
      f"(bound {2 - 1 / instance.num_processors:.3f})")
print(f"m-partition ratio     = {mpart.makespan / opt:.3f}  (bound 1.500)")
print(f"m-partition's guess   = {mpart.guessed_opt:.3f}  (never exceeds OPT)")
