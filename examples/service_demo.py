#!/usr/bin/env python
"""The rebalancing service, end to end in one process.

`repro.service` puts the paper's online setting on the wire: a
stdlib-asyncio TCP server holds one warm `RebalanceEngine` per named
shard behind an admission queue and a fingerprint-deduping
micro-batcher.  This demo walks the whole loop:

1. start a server in a background thread,
2. solve one snapshot remotely and check it matches the in-process
   solver byte for byte (the service's core contract),
3. fan out duplicate submissions with the async client and watch the
   batcher collapse them into a single solve,
4. read the server's own account of all that from ``status``,
5. run a short open-loop load-generation burst and print the report.

Run:  python examples/service_demo.py
"""

import asyncio

import numpy as np

from repro import make_instance
from repro.core import m_partition_rebalance
from repro.service import (
    AsyncServiceClient,
    LoadGenConfig,
    ServerConfig,
    ServiceClient,
    run_loadgen,
    start_background,
)

K = 4
rng = np.random.default_rng(11)
instance = make_instance(
    sizes=rng.integers(1, 50, 200).astype(float),
    initial=rng.integers(0, 8, 200),
    num_processors=8,
)

with start_background(ServerConfig()) as server:
    print(f"-- server listening on {server.host}:{server.port}\n")

    # 1. one remote solve, checked against the in-process solver ------
    with ServiceClient(server.host, server.port) as client:
        remote = client.rebalance(instance, K, shard="demo")
        local = m_partition_rebalance(instance, K)
        assert np.array_equal(
            remote.assignment.mapping, local.assignment.mapping
        ), "wire changed the decision!"
        svc = remote.meta["service"]
        print(
            f"remote makespan {remote.makespan:.0f} == local "
            f"{local.makespan:.0f}  (round trip "
            f"{svc['latency_s'] * 1e3:.1f} ms, batch {svc['batch']})"
        )

        # 2. duplicate submissions collapse into one solve ------------
        async def storm(copies: int = 6):
            clients = [
                AsyncServiceClient(server.host, server.port)
                for _ in range(copies)
            ]
            try:
                return await asyncio.gather(
                    *(c.rebalance(instance, K, shard="demo") for c in clients)
                )
            finally:
                for c in clients:
                    await c.close()

        results = asyncio.run(storm())
        batches = [r.meta["service"]["batch"] for r in results]
        print(f"6 concurrent identical requests -> batches {batches[0]} ...")
        assert any(b["unique"] < b["size"] for b in batches), "no dedupe?"

        # 3. the server's own view ------------------------------------
        status = client.status()
        shard = status["shards"]["demo"]
        print(
            f"shard 'demo': {shard['decisions']} decisions, engine stats "
            f"{shard['engine']}"
        )
        print(f"queue: {status['queue']}\n")

# 4. a short open-loop burst against a fresh server -------------------
with start_background(ServerConfig()) as server:
    config = LoadGenConfig(
        rate=40.0, duration_s=1.5, duplicates=4,
        num_sites=300, num_servers=8, k=K, deadline_ms=500.0, seed=3,
    )
    report = run_loadgen(server.host, server.port, config)
    print("-- loadgen (open loop, 40 req/s for 1.5 s, 4x duplicates)")
    print(report.render())
    assert report.errors == 0
