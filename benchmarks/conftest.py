"""Shared helpers for the benchmark harness.

Every ``bench_eN_*.py`` file pairs kernel micro-benchmarks (timed by
pytest-benchmark) with a ``test_*_table`` entry that regenerates the
corresponding experiment table from DESIGN.md section 3 and prints it
to the terminal (bypassing capture), so::

    pytest benchmarks/ --benchmark-only

reproduces the full result set of EXPERIMENTS.md in one run.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show_report(capsys):
    """Print an ExperimentReport to the real terminal."""

    def _show(report):
        with capsys.disabled():
            print()
            print(report.render())

    return _show
