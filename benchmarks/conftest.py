"""Shared helpers for the benchmark harness.

Every ``bench_eN_*.py`` file pairs kernel micro-benchmarks (timed by
pytest-benchmark) with a ``test_*_table`` entry that regenerates the
corresponding experiment table from DESIGN.md section 3 and prints it
to the terminal (bypassing capture), so::

    pytest benchmarks/ --benchmark-only

reproduces the full result set of EXPERIMENTS.md in one run.

Phase breakdowns use the shared :mod:`repro.telemetry` collector: run
with ``--telemetry`` to wrap every benchmark in a collection scope and
attach the per-phase spans and counters to pytest-benchmark's
``extra_info``, so BENCH_*.json files produced with
``--benchmark-json`` carry phase breakdowns alongside the wall-clock
numbers.  Collection is off by default — telemetry must never distort
the timings it is meant to explain unless explicitly requested.
"""

from __future__ import annotations

import pytest

from repro import telemetry


def pytest_addoption(parser):
    parser.addoption(
        "--telemetry",
        action="store_true",
        default=False,
        help="collect repro.telemetry phase breakdowns during benchmarks "
        "and attach them to pytest-benchmark extra_info",
    )


@pytest.fixture(autouse=True)
def _telemetry_scope(request):
    """Wrap each benchmark in a telemetry collection scope on demand."""
    if not request.config.getoption("--telemetry"):
        yield None
        return
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    with telemetry.collect() as collector:
        yield collector
    if benchmark is not None:
        benchmark.extra_info["telemetry"] = collector.as_dict()


@pytest.fixture
def telemetry_collector():
    """An explicit collection scope for tests that inspect telemetry."""
    with telemetry.collect() as collector:
        yield collector


@pytest.fixture
def show_report(capsys):
    """Print an ExperimentReport to the real terminal."""

    def _show(report):
        with capsys.disabled():
            print()
            print(report.render())

    return _show
