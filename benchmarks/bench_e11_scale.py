"""E11 — theorem guarantees certified at 50k-job scale."""

import numpy as np

from repro.analysis import experiment_e11_scale_oracles
from repro.core import Instance, greedy_rebalance, m_partition_rebalance
from repro.core.unit_jobs import unit_rebalance_exact


def test_e11_table(benchmark, show_report):
    report = benchmark.pedantic(
        experiment_e11_scale_oracles, rounds=1, iterations=1
    )
    show_report(report)
    assert all(row[-1] for row in report.rows), "a certificate failed at scale"


def _unit_instance(n: int = 50_000, m: int = 64, seed: int = 21):
    rng = np.random.default_rng(seed)
    return Instance(
        sizes=np.ones(n), costs=np.ones(n), num_processors=m,
        initial=rng.integers(0, m, n),
    )


def test_unit_oracle_kernel_n50k(benchmark):
    inst = _unit_instance()
    result = benchmark(unit_rebalance_exact, inst, 2500)
    assert result.meta["optimal"]


def test_greedy_kernel_n50k(benchmark):
    inst = _unit_instance(seed=22)
    result = benchmark(greedy_rebalance, inst, 2500)
    assert result.num_moves <= 2500


def test_m_partition_kernel_n50k(benchmark):
    inst = _unit_instance(seed=23)
    result = benchmark(m_partition_rebalance, inst, 2500)
    assert result.num_moves <= 2500
