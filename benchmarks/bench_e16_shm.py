"""E16 — the shared-memory snapshot plane for the process executor.

The acceptance configuration for the snapshot transport: on a
churn-traffic workload calibrated so one inline worker-pipe marshal
round costs a fixed time on this host, the shm plane must sustain at
least 5x the goodput of the PR 5 inline-codec process executor under
the same offered load, solve requests crossing the pipe must not scale
with the snapshot size, and the steady-state decision-memo fast path
must answer repeated snapshots at sub-millisecond p50.  Results land
in ``BENCH_e16.json`` for the CI smoke step.
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis import experiment_e16_shm
from repro.core import make_instance
from repro.service import (
    ServerConfig,
    ServiceClient,
    build_snapshots,
    calibrate_shm_workload,
    run_loadgen,
    start_background,
)

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e16.json"

DURATION_S = 2.0       # arrival window per run
DEADLINE_MS = 300.0    # per-request deadline (goodput cutoff)
LOAD_FACTOR = 0.12     # inline marshal work per core at the offered rate
RATE_CAP = 100.0       # calibrated starting rate ceiling
RATE_STEP = 1.15       # window-hunt step, under the ~20% window width
RATE_LEAP = 1.3        # coarse step while clearly below the edge
MAX_ROUNDS = 8         # window-hunt round budget
STEADY_RATE = 200.0    # quiet-cluster leg (memo fast path, n=600)
STEADY_DEADLINE_MS = 100.0


def _primed_run(server_config, loadgen_config, prime_passes=2):
    """One load-generation run against a fresh in-process server, after
    walking the whole epoch stream through one delta client so worker
    decision caches, delta bases, and ring slots start warm.  Returns
    the loadgen report, post-run liveness, and the final status."""
    snapshots = build_snapshots(loadgen_config)
    with start_background(server_config) as handle:
        with ServiceClient(
            handle.host, handle.port, protocol="binary", delta=True
        ) as primer:
            for _ in range(prime_passes):
                for snapshot in snapshots:
                    primer.rebalance(
                        snapshot, loadgen_config.k,
                        shard=loadgen_config.shard,
                    )
        report = run_loadgen(handle.host, handle.port, loadgen_config)
        with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
            alive = probe.ping()
            status = probe.status()
    return report, alive, status


def _record(report, alive):
    out = report.as_dict()
    del out["latency_ms"]  # bucket dump; the percentiles are retained
    out["alive_after"] = alive
    return out


def test_e16_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e16_shm, rounds=1, iterations=1)
    show_report(report)
    alive_col = report.columns.index("alive")
    err_col = report.columns.index("err")
    assert len(report.rows) == 3
    assert all(row[alive_col] for row in report.rows)
    assert all(row[err_col] == 0 for row in report.rows)


def test_solve_ipc_bytes_independent_of_n():
    """The tentpole wire property, pinned across a 4x snapshot growth:
    with the plane on, the bytes a solve pushes over the worker pipe
    are a slot reference, so quadrupling the snapshot must not move
    them (the inline sizes array alone would grow by 8n)."""
    per_solve = {}
    for n in (6_000, 24_000):
        rng = np.random.default_rng(n)
        inst = make_instance(
            sizes=rng.uniform(1.0, 9.0, n),
            initial=rng.integers(0, 12, n),
            num_processors=12,
        )
        config = ServerConfig(
            executor="process", process_workers=1,
            shm_slot_bytes=1 << 20,
        )
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.rebalance(inst, 8, shard="ipc")
                counters = client.status()["metrics"]["counters"]
        assert counters["service.shm_writes"] == 1
        per_solve[n] = counters["service.ipc_bytes_out"]
    small, big = per_solve[6_000], per_solve[24_000]
    print(f"\n[E16 ipc] solve request bytes: n=6000 -> {small}B, "
          f"n=24000 -> {big}B (ratio {big / small:.2f})")
    assert big < 8 * 24_000          # nowhere near one inline array
    assert big <= 1.5 * small        # flat across 4x snapshot growth


def test_shm_goodput_acceptance():
    """The shm plane sustains a churn load the inline-codec process
    executor collapses under (>= 5x goodput at the same offered rate),
    and the steady-state memo leg answers at sub-ms p50.

    The differential lives in a rate window: above the inline codec's
    capacity, below the shm plane's — the window is the inline leg's
    per-dispatch marshal cost, roughly the top ~20% of its capacity.
    Both capacities track the host's momentary speed, which on a
    shared host swings faster than one up-front calibration can pin,
    so the window is *hunted*, not precomputed: climb the offered rate
    until the inline leg collapses, then confirm the shm leg sustains
    that exact rate; if the shm leg collapses too (the window moved
    down mid-search), step back down.  Finding any such rate *is* the
    E16 claim: a load exists that only the shm transport can carry.
    """
    base, marshal_s = calibrate_shm_workload()
    rate = min(RATE_CAP, LOAD_FACTOR / marshal_s)
    slot_bytes = 1 << max(20, (16 + 24 * base.num_sites).bit_length())

    # Both overload legs run with the decision memo off: the cycled
    # epoch stream would otherwise be answered from the memo after
    # priming and neither leg would ever touch the worker pipe — the
    # exact transport under comparison.
    shm_config = ServerConfig(executor="process", process_workers=2,
                              max_queue=64, shm_slot_bytes=slot_bytes,
                              decision_cache_size=0)
    inline_config = ServerConfig(executor="process", process_workers=2,
                                 max_queue=64, shm=False,
                                 decision_cache_size=0)

    attempts = []
    found = None
    for _ in range(MAX_ROUNDS):
        lg = replace(base, rate=rate, duration_s=DURATION_S,
                     deadline_ms=DEADLINE_MS, connections=8)
        inline_leg, inline_alive, inline_status = _primed_run(
            inline_config, lg)
        if inline_leg.goodput_per_s >= 0.6 * rate:
            # Below the inline collapse edge: probe higher — coarsely
            # while the leg has full margin, finely once it strains.
            attempts.append({"rate_per_s": rate,
                             "outcome": "inline sustained",
                             "inline_goodput_per_s": inline_leg.goodput_per_s})
            print(f"[E16 acceptance] {rate:.0f}/s: inline sustained "
                  f"({inline_leg.goodput_per_s:.1f}/s), climbing")
            strained = inline_leg.goodput_per_s < 0.95 * rate
            rate *= RATE_STEP if strained else RATE_LEAP
            continue
        shm_leg, shm_alive, shm_status = _primed_run(shm_config, lg)
        ratio = shm_leg.goodput_per_s / max(inline_leg.goodput_per_s, 1e-9)
        attempts.append({"rate_per_s": rate, "outcome": f"ratio {ratio:.1f}x",
                         "shm_goodput_per_s": shm_leg.goodput_per_s,
                         "inline_goodput_per_s": inline_leg.goodput_per_s})
        print(f"[E16 acceptance] {rate:.0f}/s: "
              f"shm {shm_leg.goodput_per_s:.1f}/s (p50 {shm_leg.p50_ms:.1f}ms)"
              f" vs inline {inline_leg.goodput_per_s:.1f}/s "
              f"(p50 {inline_leg.p50_ms:.1f}ms): {ratio:.1f}x")
        if shm_leg.goodput_per_s >= 0.6 * rate:
            if ratio >= 5.0:
                found = (rate, shm_leg, shm_alive, shm_status,
                         inline_leg, inline_alive, inline_status, ratio)
                break
            # shm sustains but inline is only grazing its edge
            # (partial collapse): climb to deepen the differential.
            rate *= RATE_STEP
        else:
            # shm collapsed too: the window slid below this rate (or
            # the host stalled) — back off.
            rate /= RATE_STEP

    steady_leg, steady_alive, steady_status = _primed_run(
        ServerConfig(executor="process", process_workers=2,
                     max_wait_ms=0.0),
        replace(base, num_sites=600, rate=STEADY_RATE,
                duration_s=DURATION_S, deadline_ms=STEADY_DEADLINE_MS,
                connections=4),
    )
    print(f"[E16 acceptance] steady state (n=600, {STEADY_RATE:.0f}/s): "
          f"p50 {steady_leg.p50_ms:.3f}ms p99 {steady_leg.p99_ms:.3f}ms")

    results = {
        "workload": {
            "num_sites": base.num_sites, "num_servers": base.num_servers,
            "k": base.k, "traffic": base.traffic, "duplicates": 1,
            "marshal_round_ms": 1e3 * marshal_s,
            "calibrated_rate_per_s": min(RATE_CAP, LOAD_FACTOR / marshal_s),
            "duration_s": DURATION_S, "deadline_ms": DEADLINE_MS,
            "load_factor": LOAD_FACTOR,
        },
        "attempts": attempts,
        "steady_state_memo": _record(steady_leg, steady_alive),
        "steady_p50_ms": steady_leg.p50_ms,
    }
    if found is not None:
        rate, shm_leg, shm_alive, shm_status, \
            inline_leg, inline_alive, inline_status, ratio = found
        shm_ipc = shm_status["metrics"]["counters"]["service.ipc_bytes_out"]
        inline_ipc = inline_status["metrics"]["counters"]["service.ipc_bytes_out"]
        results["rate_per_s"] = rate
        results["shm_plane_process"] = _record(shm_leg, shm_alive)
        results["inline_codec_process"] = _record(inline_leg, inline_alive)
        results["goodput_ratio"] = ratio
        results["ipc_bytes_out"] = {"shm": shm_ipc, "inline": inline_ipc}
        print(f"[E16 acceptance] ipc request bytes: shm {shm_ipc / 1e6:.2f}MB"
              f" vs inline {inline_ipc / 1e6:.2f}MB")
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")

    # A rate only the shm transport can carry exists on this host.
    assert found is not None, f"no differential rung: {attempts}"
    assert ratio >= 5.0
    assert shm_leg.goodput_per_s >= 0.6 * rate
    # The snapshot plane, not the pipe, carried the arrays.
    assert shm_ipc < 0.1 * inline_ipc
    # Every offered request got exactly one recorded outcome.
    for report in (shm_leg, inline_leg, steady_leg):
        accounted = (report.completed + report.late + report.rejected
                     + report.shed + report.errors)
        assert accounted == report.offered
        assert report.errors == 0
    # Steady state: memo fast path answers in sub-millisecond p50.
    assert steady_leg.p50_ms < 1.0
    assert steady_leg.errors == 0 and steady_leg.late == 0
    assert shm_alive and inline_alive and steady_alive
    assert shm_status["queue"]["depth"] == 0
    assert inline_status["queue"]["depth"] == 0
