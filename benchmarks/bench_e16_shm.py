"""E16 — the shared-memory snapshot plane for the process executor.

The acceptance configuration for the snapshot transport — the shm
plane sustains a churn load the inline-codec process executor collapses
under (>= 5x goodput via a hunted rate window), solve requests crossing
the pipe do not scale with the snapshot, and the steady-state decision
memo answers at sub-ms p50 — lives in the scenario catalog
(``repro.scenarios``, scenario E16, bench runner ``e16-shm``); the
acceptance test here is a thin shim over ``run_scenario``, which also
refreshes the ``BENCH_e16.json`` working copy.  The single-solve ipc
smoke remains local for fast feedback.
"""

import numpy as np

from repro.analysis import experiment_e16_shm
from repro.core import make_instance
from repro.scenarios import run_scenario
from repro.service import ServerConfig, ServiceClient, start_background


def test_e16_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e16_shm, rounds=1, iterations=1)
    show_report(report)
    alive_col = report.columns.index("alive")
    err_col = report.columns.index("err")
    assert len(report.rows) == 3
    assert all(row[alive_col] for row in report.rows)
    assert all(row[err_col] == 0 for row in report.rows)


def test_solve_ipc_bytes_independent_of_n():
    """The tentpole wire property, pinned across a 4x snapshot growth:
    with the plane on, the bytes a solve pushes over the worker pipe
    are a slot reference, so quadrupling the snapshot must not move
    them (the inline sizes array alone would grow by 8n)."""
    per_solve = {}
    for n in (6_000, 24_000):
        rng = np.random.default_rng(n)
        inst = make_instance(
            sizes=rng.uniform(1.0, 9.0, n),
            initial=rng.integers(0, 12, n),
            num_processors=12,
        )
        config = ServerConfig(
            executor="process", process_workers=1,
            shm_slot_bytes=1 << 20,
        )
        with start_background(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.rebalance(inst, 8, shard="ipc")
                counters = client.status()["metrics"]["counters"]
        assert counters["service.shm_writes"] == 1
        per_solve[n] = counters["service.ipc_bytes_out"]
    small, big = per_solve[6_000], per_solve[24_000]
    print(f"\n[E16 ipc] solve request bytes: n=6000 -> {small}B, "
          f"n=24000 -> {big}B (ratio {big / small:.2f})")
    assert big < 8 * 24_000          # nowhere near one inline array
    assert big <= 1.5 * small        # flat across 4x snapshot growth


def test_shm_goodput_acceptance():
    """The shm plane sustains a churn load the inline-codec process
    executor collapses under, with the decision-memo steady leg at
    sub-ms p50 (catalog scenario E16)."""
    result = run_scenario("E16")
    assert result.acceptance_ok, result.failure_summary()
