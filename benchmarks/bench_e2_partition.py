"""E2 — (M-)PARTITION's tight 1.5 approximation (Theorems 2-3)."""

import numpy as np

from repro.analysis import experiment_e2_partition
from repro.core import m_partition_rebalance
from repro.workloads import random_instance


def test_e2_table(benchmark, show_report):
    report = benchmark.pedantic(
        experiment_e2_partition, rounds=1, iterations=1
    )
    show_report(report)
    assert all(row[-1] for row in report.rows), "a ratio exceeded 1.5"


def test_m_partition_kernel_n4096(benchmark):
    rng = np.random.default_rng(1)
    inst = random_instance(4096, 16, rng)
    result = benchmark(m_partition_rebalance, inst, 400)
    assert result.num_moves <= 400


def test_m_partition_kernel_skewed(benchmark):
    rng = np.random.default_rng(2)
    inst = random_instance(2048, 8, rng, placement="skewed",
                           size_family="zipf")
    result = benchmark(m_partition_rebalance, inst, 200)
    assert result.num_moves <= 200
