"""E6 — web-cluster rebalancing simulation (Section 1 motivation)."""

import numpy as np

from repro.analysis import experiment_e6_websim
from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    MPartitionPolicy,
    Simulation,
    build_cluster,
)


def test_e6_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e6_websim, rounds=1, iterations=1)
    show_report(report)
    rows = {row[0]: row for row in report.rows}
    # Bounded rebalancing must beat doing nothing...
    assert rows["m-partition"][1] < rows["none"][1]
    # ...and full repack needs far more migrations than bounded policies.
    assert rows["full-repack"][4] > 5 * rows["m-partition"][4]


def test_simulation_epoch_kernel(benchmark):
    def run():
        cluster = build_cluster(100, 8, np.random.default_rng(10))
        traffic = ComposedTraffic(
            (DiurnalTraffic(), FlashCrowdTraffic(probability=0.1))
        )
        sim = Simulation(
            cluster=cluster, traffic=traffic, policy=MPartitionPolicy(k=4),
            seed=11,
        )
        return sim.run(20)

    result = benchmark(run)
    assert len(result.records) == 20
