"""E1 — GREEDY's tight (2 - 1/m) approximation (Theorem 1).

Regenerates the E1 table (tightness family + random families vs exact)
and micro-benchmarks the GREEDY kernel at realistic scale.
"""

import numpy as np

from repro.analysis import experiment_e1_greedy
from repro.core import greedy_rebalance
from repro.workloads import greedy_tight_instance, random_instance


def test_e1_table(benchmark, show_report):
    report = benchmark.pedantic(
        experiment_e1_greedy, rounds=1, iterations=1
    )
    show_report(report)
    assert all(row[-1] for row in report.rows), "a ratio exceeded 2 - 1/m"


def test_greedy_kernel_n4096(benchmark):
    rng = np.random.default_rng(0)
    inst = random_instance(4096, 16, rng)
    result = benchmark(greedy_rebalance, inst, 400)
    assert result.num_moves <= 400


def test_greedy_kernel_tight_family(benchmark):
    inst, k, opt = greedy_tight_instance(32)
    result = benchmark(greedy_rebalance, inst, k, "ascending")
    assert result.makespan <= (2 - 1 / 32) * opt + 1e-9
