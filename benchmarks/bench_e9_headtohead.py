"""E9 — head-to-head: GREEDY / M-PARTITION / baselines vs exact."""

import numpy as np

from repro.analysis import experiment_e9_headtohead
from repro.baselines import hill_climb_rebalance
from repro.workloads import random_instance


def test_e9_table(benchmark, show_report):
    report = benchmark.pedantic(
        experiment_e9_headtohead, rounds=1, iterations=1
    )
    show_report(report)
    worst = {row[0]: row[3] for row in report.rows}
    assert worst["m-partition"] <= 1.5 + 1e-9
    assert worst["greedy"] <= 2.0 + 1e-9


def test_hill_climb_kernel_n1024(benchmark):
    rng = np.random.default_rng(14)
    inst = random_instance(1024, 8, rng, placement="skewed")
    result = benchmark(hill_climb_rebalance, inst, 50)
    assert result.num_moves <= 50
