"""E12 — warm-start engine vs from-scratch M-PARTITION in the epoch loop.

The acceptance configuration for the engine (n=5000 sites, m=64
servers, 200 epochs) plus smaller kernels for pytest-benchmark.  The
engine must beat the from-scratch policy on wall clock while producing
the byte-identical trajectory.
"""

import time

import numpy as np

from repro.analysis import experiment_e12_engine
from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    EngineMPartitionPolicy,
    FlashCrowdTraffic,
    MPartitionPolicy,
    Simulation,
    build_cluster,
)


def _run(policy, *, num_sites, num_servers, epochs, seed=12):
    cluster = build_cluster(num_sites, num_servers, np.random.default_rng(seed))
    traffic = ComposedTraffic(
        (DiurnalTraffic(), FlashCrowdTraffic(probability=0.1))
    )
    sim = Simulation(cluster=cluster, traffic=traffic, policy=policy,
                     seed=seed + 1)
    t0 = time.perf_counter()
    result = sim.run(epochs)
    wall = time.perf_counter() - t0
    return result, wall


def test_e12_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e12_engine, rounds=1, iterations=1)
    show_report(report)
    for row in report.rows:
        assert row[-1] is True  # identical trajectories everywhere
    engine_rows = [r for r in report.rows if r[1] == "m-partition-engine"]
    assert engine_rows and all(row[3] > 1.0 for row in engine_rows)


def test_engine_beats_scratch_at_acceptance_scale():
    """n=5k sites, m=64 servers, 200 epochs: identical decisions, less
    wall clock, and a multiple less decide time."""
    config = dict(num_sites=5_000, num_servers=64, epochs=200)
    scratch, scratch_wall = _run(MPartitionPolicy(k=16), **config)
    engine, engine_wall = _run(EngineMPartitionPolicy(k=16), **config)
    assert [r.makespan for r in scratch.records] == [
        r.makespan for r in engine.records
    ]
    assert [r.migrations for r in scratch.records] == [
        r.migrations for r in engine.records
    ]
    scratch_decide = sum(r.decide_seconds for r in scratch.records)
    engine_decide = sum(r.decide_seconds for r in engine.records)
    assert engine_wall < scratch_wall
    assert engine_decide < scratch_decide / 1.5
    print(
        f"\n[E12 acceptance] wall {scratch_wall:.2f}s -> {engine_wall:.2f}s "
        f"({scratch_wall / engine_wall:.2f}x), decide {scratch_decide:.2f}s "
        f"-> {engine_decide:.2f}s ({scratch_decide / engine_decide:.2f}x)"
    )


def test_scratch_epoch_kernel(benchmark):
    def run():
        result, _ = _run(
            MPartitionPolicy(k=8), num_sites=1_000, num_servers=16, epochs=20
        )
        return result

    result = benchmark(run)
    assert len(result.records) == 20


def test_engine_epoch_kernel(benchmark):
    def run():
        result, _ = _run(
            EngineMPartitionPolicy(k=8), num_sites=1_000, num_servers=16,
            epochs=20,
        )
        return result

    result = benchmark(run)
    assert len(result.records) == 20
