"""E10 — Theorem 6/7 and Corollary 1 gadget gaps."""

import numpy as np

from repro.analysis import experiment_e10_hardness
from repro.hardness import (
    conflict_gadget_from_3dm,
    feasible_conflict_assignment,
    gadget_from_3dm,
    exact_gap_min_makespan,
    planted_yes_instance,
)


def test_e10_table(benchmark, show_report):
    report = benchmark.pedantic(
        experiment_e10_hardness, rounds=1, iterations=1
    )
    show_report(report)
    assert all(row[-1] for row in report.rows), "a gadget was inconsistent"


def test_gap_gadget_kernel(benchmark):
    rng = np.random.default_rng(15)
    tdm = planted_yes_instance(3, 4, rng)
    gap, budget = gadget_from_3dm(tdm)
    makespan, _ = benchmark(exact_gap_min_makespan, gap, budget)
    assert makespan == 2.0


def test_conflict_gadget_kernel(benchmark):
    rng = np.random.default_rng(16)
    tdm = planted_yes_instance(4, 5, rng)
    gadget = conflict_gadget_from_3dm(tdm)
    mapping = benchmark(feasible_conflict_assignment, gadget)
    assert mapping is not None
