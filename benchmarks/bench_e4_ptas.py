"""E4 — PTAS quality/runtime trade-off (Theorem 4)."""

import numpy as np

from repro.analysis import experiment_e4_ptas
from repro.core import ptas_rebalance
from repro.workloads import random_instance


def test_e4_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e4_ptas, rounds=1, iterations=1)
    show_report(report)
    for eps, bound, mean_r, worst_r, budget_ok, _ in report.rows:
        assert budget_ok, f"budget violated at eps={eps}"
        assert worst_r <= bound + 1e-9, f"ratio {worst_r} > {bound} at eps={eps}"


def test_ptas_kernel_eps1(benchmark):
    rng = np.random.default_rng(6)
    inst = random_instance(7, 3, rng, cost_family="random", integer_sizes=True)
    budget = float(inst.costs.sum()) / 2
    result = benchmark(ptas_rebalance, inst, budget, 1.0)
    assert result.relocation_cost <= budget + 1e-9


def test_ptas_kernel_eps05(benchmark):
    rng = np.random.default_rng(7)
    inst = random_instance(6, 3, rng, cost_family="random", integer_sizes=True)
    budget = float(inst.costs.sum()) / 2
    result = benchmark(ptas_rebalance, inst, budget, 0.5)
    assert result.relocation_cost <= budget + 1e-9
