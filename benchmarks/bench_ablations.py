"""Ablation benches: the design-choice studies of DESIGN.md.

Also benchmarks the incremental vs rescan scan kernels head-to-head.
"""

import numpy as np

from repro.analysis.ablations import (
    ablation_a1_insert_order,
    ablation_a2_knapsack_backend,
    ablation_a3_scan_strategy,
)
from repro.core import m_partition_rebalance
from repro.core.partition_incremental import m_partition_rebalance_incremental
from repro.workloads import random_instance


def test_a1_table(benchmark, show_report):
    report = benchmark.pedantic(
        ablation_a1_insert_order, rounds=1, iterations=1
    )
    show_report(report)
    tight = {row[1]: row[3] for row in report.rows if row[0].startswith("tight")}
    # Ascending reinsertion realizes the adversarial 2 - 1/m exactly.
    assert tight["ascending"] == max(tight.values())


def test_a2_table(benchmark, show_report):
    report = benchmark.pedantic(
        ablation_a2_knapsack_backend, rounds=1, iterations=1
    )
    show_report(report)
    assert all(row[-1] for row in report.rows), "a backend broke the budget"


def test_a3_table(benchmark, show_report):
    report = benchmark.pedantic(
        ablation_a3_scan_strategy, rounds=1, iterations=1
    )
    show_report(report)
    assert all(row[-1] for row in report.rows), "scan strategies diverged"


def _skewed(n: int = 4096, m: int = 8, seed: int = 20):
    rng = np.random.default_rng(seed)
    return random_instance(n, m, rng, placement="skewed"), max(1, n // 20)


def test_rescan_kernel(benchmark):
    inst, k = _skewed()
    result = benchmark(m_partition_rebalance, inst, k)
    assert result.num_moves <= k


def test_incremental_kernel(benchmark):
    inst, k = _skewed()
    result = benchmark(m_partition_rebalance_incremental, inst, k)
    assert result.num_moves <= k
