"""E13 — vectorized DP kernels + parallel sweep vs the reference paths.

The acceptance configuration for the kernel backends (the E4 PTAS and
E5 cost-partition seed-size cases must speed up by at least 3x while
producing byte-identical solutions) now lives in the scenario catalog
(``repro.scenarios``, scenario E13); the acceptance test here is a thin
shim over ``run_scenario``, which also refreshes the machine-readable
``BENCH_e13.json`` working copy.  The pytest-benchmark kernels for both
backends remain local.
"""

import numpy as np

from repro.analysis import experiment_e13_kernels
from repro.core import cost_partition_rebalance, ptas_rebalance
from repro.scenarios import run_scenario
from repro.workloads import random_instance


def _ptas_cases(trials: int = 4, seed: int = 13):
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(7, 3, rng, cost_family="random",
                               integer_sizes=True)
        cases.append((inst, float(inst.costs.sum()) / 2.0))
    return cases


def _cost_cases(trials: int = 4, seed: int = 8):
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(64, 6, rng, cost_family="random")
        cases.append((inst, float(inst.costs.sum()) / 4.0))
    return cases


def test_e13_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e13_kernels, rounds=1, iterations=1)
    show_report(report)
    for row in report.rows:
        assert row[-1] is True  # identical solutions everywhere
    kernel_rows = [r for r in report.rows if r[1] == "kernel"]
    assert kernel_rows and all(row[3] > 1.0 for row in kernel_rows)


def test_kernel_speedup_acceptance():
    """E4/E5 seed sizes: >= 3x decide-time speedup, identical solutions
    (catalog scenario E13)."""
    result = run_scenario("E13")
    assert result.acceptance_ok, result.failure_summary()


def test_ptas_reference_kernel(benchmark):
    inst, budget = _ptas_cases(trials=1)[0]
    result = benchmark(ptas_rebalance, inst, budget, eps=0.75,
                       backend="reference")
    assert result.relocation_cost <= budget + 1e-9


def test_ptas_kernel_kernel(benchmark):
    inst, budget = _ptas_cases(trials=1)[0]
    result = benchmark(ptas_rebalance, inst, budget, eps=0.75,
                       backend="kernel")
    assert result.relocation_cost <= budget + 1e-9


def test_cost_partition_reference_kernel(benchmark):
    inst, budget = _cost_cases(trials=1)[0]
    result = benchmark(cost_partition_rebalance, inst, budget,
                       backend="reference")
    assert result.relocation_cost <= budget + 1e-6


def test_cost_partition_kernel_kernel(benchmark):
    inst, budget = _cost_cases(trials=1)[0]
    result = benchmark(cost_partition_rebalance, inst, budget,
                       backend="kernel")
    assert result.relocation_cost <= budget + 1e-6
