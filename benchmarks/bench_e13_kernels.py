"""E13 — vectorized DP kernels + parallel sweep vs the reference paths.

The acceptance configuration for the kernel backends (the E4 PTAS and
E5 cost-partition seed-size cases must speed up by at least 3x while
producing byte-identical solutions), pytest-benchmark kernels for both
backends, and a machine-readable ``BENCH_e13.json`` drop for CI.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis import experiment_e13_kernels
from repro.core import cost_partition_rebalance, ptas_rebalance
from repro.workloads import random_instance

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e13.json"


def _ptas_cases(trials: int = 4, seed: int = 13):
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(7, 3, rng, cost_family="random",
                               integer_sizes=True)
        cases.append((inst, float(inst.costs.sum()) / 2.0))
    return cases


def _cost_cases(trials: int = 4, seed: int = 8):
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(64, 6, rng, cost_family="random")
        cases.append((inst, float(inst.costs.sum()) / 4.0))
    return cases


def _best_of_pair(ref_fn, ker_fn, cases, reps: int):
    """Per-case best-of-``reps`` wall clock for both backends, summed.

    The two backends are timed interleaved (ref, kernel, ref, kernel,
    ... within every rep) and the minimum is taken per case.  Both
    choices exist to strip transient scheduler/allocator spikes, which
    otherwise dominate the millisecond-scale kernel timings on a busy
    single-core host: interleaving spreads each backend's samples over
    the whole measurement window, and the per-case minimum keeps only
    the clean ones.
    """
    ref_best = [float("inf")] * len(cases)
    ker_best = [float("inf")] * len(cases)
    for _ in range(reps):
        for i, case in enumerate(cases):
            start = time.perf_counter()
            ref_fn(case)
            ref_best[i] = min(ref_best[i], time.perf_counter() - start)
            start = time.perf_counter()
            ker_fn(case)
            ker_best[i] = min(ker_best[i], time.perf_counter() - start)
    return sum(ref_best), sum(ker_best)


def test_e13_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e13_kernels, rounds=1, iterations=1)
    show_report(report)
    for row in report.rows:
        assert row[-1] is True  # identical solutions everywhere
    kernel_rows = [r for r in report.rows if r[1] == "kernel"]
    assert kernel_rows and all(row[3] > 1.0 for row in kernel_rows)


def test_kernel_speedup_acceptance():
    """E4/E5 seed sizes: >= 3x decide-time speedup, identical solutions,
    recorded to BENCH_e13.json for the CI smoke step."""
    results = {}

    def key(res):
        return (res.guessed_opt, res.planned_cost,
                tuple(int(x) for x in res.assignment.mapping))

    # --- E4 PTAS seed size -------------------------------------------
    cases = _ptas_cases()
    ref_out = [ptas_rebalance(i, b, eps=0.75, backend="reference")
               for i, b in cases]
    ker_out = [ptas_rebalance(i, b, eps=0.75, backend="kernel")
               for i, b in cases]
    assert [key(r) for r in ref_out] == [key(r) for r in ker_out]
    ref_s, ker_s = _best_of_pair(
        lambda c: ptas_rebalance(c[0], c[1], eps=0.75, backend="reference"),
        lambda c: ptas_rebalance(c[0], c[1], eps=0.75, backend="kernel"),
        cases, reps=3,
    )
    results["e4_ptas"] = {
        "n": 7, "m": 3, "eps": 0.75, "trials": len(cases),
        "reference_s": ref_s, "kernel_s": ker_s,
        "speedup": ref_s / ker_s,
    }

    # --- E5 cost-partition seed size ---------------------------------
    cases = _cost_cases()
    ref_out = [cost_partition_rebalance(i, b, backend="reference")
               for i, b in cases]
    ker_out = [cost_partition_rebalance(i, b, backend="kernel")
               for i, b in cases]
    assert [key(r) for r in ref_out] == [key(r) for r in ker_out]
    ref_s, ker_s = _best_of_pair(
        lambda c: cost_partition_rebalance(c[0], c[1], backend="reference"),
        lambda c: cost_partition_rebalance(c[0], c[1], backend="kernel"),
        cases, reps=12,
    )
    results["e5_cost_partition"] = {
        "n": 64, "m": 6, "trials": len(cases),
        "reference_s": ref_s, "kernel_s": ker_s,
        "speedup": ref_s / ker_s,
    }

    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")
    for name, r in results.items():
        print(f"\n[E13 acceptance] {name}: {r['reference_s'] * 1e3:.2f}ms -> "
              f"{r['kernel_s'] * 1e3:.2f}ms ({r['speedup']:.2f}x)")
    assert results["e4_ptas"]["speedup"] >= 3.0
    assert results["e5_cost_partition"]["speedup"] >= 3.0


def test_ptas_reference_kernel(benchmark):
    inst, budget = _ptas_cases(trials=1)[0]
    result = benchmark(ptas_rebalance, inst, budget, eps=0.75,
                       backend="reference")
    assert result.relocation_cost <= budget + 1e-9


def test_ptas_kernel_kernel(benchmark):
    inst, budget = _ptas_cases(trials=1)[0]
    result = benchmark(ptas_rebalance, inst, budget, eps=0.75,
                       backend="kernel")
    assert result.relocation_cost <= budget + 1e-9


def test_cost_partition_reference_kernel(benchmark):
    inst, budget = _cost_cases(trials=1)[0]
    result = benchmark(cost_partition_rebalance, inst, budget,
                       backend="reference")
    assert result.relocation_cost <= budget + 1e-6


def test_cost_partition_kernel_kernel(benchmark):
    inst, budget = _cost_cases(trials=1)[0]
    result = benchmark(cost_partition_rebalance, inst, budget,
                       backend="kernel")
    assert result.relocation_cost <= budget + 1e-6
