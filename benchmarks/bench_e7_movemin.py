"""E7 — move minimization hardness gadgets (Theorem 5)."""

import numpy as np

from repro.analysis import experiment_e7_movemin
from repro.hardness import (
    min_moves_exact,
    random_yes_instance,
    reduction_from_partition,
)


def test_e7_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e7_movemin, rounds=1, iterations=1)
    show_report(report)
    yes_rows = [r for r in report.rows if r[0].startswith("yes")]
    no_rows = [r for r in report.rows if r[0].startswith("no")]
    assert all(r[1] for r in yes_rows), "a yes-gadget was not achievable"
    assert not any(r[1] for r in no_rows), "a no-gadget was achievable"
    assert all(r[-1] for r in report.rows), "greedy was unsound"


def test_min_moves_exact_kernel(benchmark):
    rng = np.random.default_rng(12)
    part = random_yes_instance(10, rng)
    inst, bound = reduction_from_partition(part)
    result = benchmark(min_moves_exact, inst, bound)
    assert result.achievable
