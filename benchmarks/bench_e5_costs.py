"""E5 — weighted rebalancing: Section 3.2 vs Shmoys-Tardos LP."""

import numpy as np

from repro.analysis import experiment_e5_costs
from repro.baselines import shmoys_tardos_rebalance
from repro.core import cost_partition_rebalance
from repro.workloads import random_instance


def test_e5_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e5_costs, rounds=1, iterations=1)
    show_report(report)
    assert all(row[-1] for row in report.rows), "a budget was violated"


def _case(seed: int, n: int = 64, m: int = 6):
    rng = np.random.default_rng(seed)
    inst = random_instance(n, m, rng, cost_family="random")
    return inst, float(inst.costs.sum()) / 4


def test_cost_partition_kernel(benchmark):
    inst, budget = _case(8)
    result = benchmark(cost_partition_rebalance, inst, budget)
    assert result.relocation_cost <= budget + 1e-6


def test_shmoys_tardos_kernel(benchmark):
    inst, budget = _case(9, n=40, m=4)
    result = benchmark(shmoys_tardos_rebalance, inst, budget)
    assert result.relocation_cost <= budget + 1e-5
