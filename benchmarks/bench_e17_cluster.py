"""E17 — the cluster tier: router over backend processes, failover.

The acceptance configuration for the multi-node tier: each backend
solves one request at a time behind a synthetic service-time floor
(``--solve-delay-ms``, slept on the solve thread so the GIL and the
core are released), so per-node capacity is pinned by construction
even on a one-core CI host.  Loadgen through the router across two
backend OS processes must reach at least 1.8x single-node goodput; a
``kill -9`` of one backend mid-run must yield **zero** failed client
requests with a bounded p99 blip (the router promotes the
delta-replicated standby and replays in-flight requests); and a websim
trajectory driven through the router must stay byte-identical to the
in-process solver.  Results land in ``BENCH_e17.json`` for the CI
record step.
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis import experiment_e17_cluster
from repro.analysis.experiments import (
    _e17_balanced_shard_base,
    _e17_leg,
    _e17_workload,
)
from repro.service import (
    BackendSpec,
    RouterConfig,
    ServerConfig,
    ServiceClient,
    start_background,
    start_router_background,
)
from repro.websim import (
    ComposedTraffic,
    DiurnalTraffic,
    EngineMPartitionPolicy,
    FlashCrowdTraffic,
    ServicePolicy,
    Simulation,
    build_cluster,
)

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e17.json"

DURATION_S = 2.5       # arrival window per leg
DEADLINE_MS = 500.0    # per-request deadline (goodput cutoff)
RATE_CAP = 150.0       # calibrated rate ceiling
SHARDS = 8             # loadgen lanes (split 4/4 across the ring)
SOLVE_DELAY_MS = 80.0  # per-solve service floor: pins node capacity
OVERLOADS = (2.4, 3.0)  # offered rate as a multiple of one backend
EPOCHS = 12            # trajectory-differential length
K = 3


def _cluster_lg(overload, seed=17):
    base, solve_s = _e17_workload(seed)
    service_s = solve_s + SOLVE_DELAY_MS / 1e3
    capacity = 1.0 / service_s
    rate = min(RATE_CAP, overload * capacity)
    # Full-queue drain ~70% of the deadline (see
    # experiment_e17_cluster): deep enough to smooth bursts, shallow
    # enough that admitted requests clear the deadline.
    max_queue = max(2, int(0.7 * (DEADLINE_MS / 1e3) / service_s))
    shard_base = _e17_balanced_shard_base(["backend-0", "backend-1"], SHARDS)
    lg = replace(
        base, rate=rate, duration_s=DURATION_S, deadline_ms=DEADLINE_MS,
        connections=16, duplicates=1, shards=SHARDS, shard=shard_base,
        protocol="binary", delta=True,
    )
    return lg, solve_s, capacity, max_queue


def _simulation(policy, seed):
    rng = np.random.default_rng(seed)
    cluster = build_cluster(80, 6, rng)
    traffic = ComposedTraffic(
        (DiurnalTraffic(), FlashCrowdTraffic(probability=0.2))
    )
    return Simulation(cluster=cluster, traffic=traffic, policy=policy,
                      seed=seed)


def _trajectory_differential():
    """Websim through the router == in-process engine, record for
    record — across two in-process backends so the decision stream
    crosses the ring, the delta replication path, and both protocols'
    worth of re-encoding."""
    want = _simulation(EngineMPartitionPolicy(k=K), seed=36).run(EPOCHS)
    with start_background(ServerConfig()) as b0, \
            start_background(ServerConfig()) as b1:
        config = RouterConfig(backends=(
            BackendSpec("backend-0", b0.host, b0.port),
            BackendSpec("backend-1", b1.host, b1.port),
        ))
        with start_router_background(config) as router:
            policy = ServicePolicy(
                router.host, router.port, k=K, shard="bench-traj",
                protocol="binary", delta=True,
            )
            try:
                got = _simulation(policy, seed=36).run(EPOCHS)
            finally:
                policy.close()
            with ServiceClient(router.host, router.port) as probe:
                counters = probe.status()["router"]["metrics"]["counters"]
    assert len(got.records) == len(want.records) == EPOCHS
    for ours, theirs in zip(got.records, want.records):
        assert ours.makespan == theirs.makespan
        assert ours.migrations == theirs.migrations
        assert ours.migration_cost == theirs.migration_cost
        assert ours.imbalance == theirs.imbalance
    return counters


def _record(report):
    out = report.as_dict()
    del out["latency_ms"]  # bucket dump; the percentiles are retained
    return out


def test_e17_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e17_cluster, rounds=1, iterations=1)
    show_report(report)
    err_col = report.columns.index("err")
    deaths_col = report.columns.index("deaths")
    assert len(report.rows) == 3
    assert all(row[err_col] == 0 for row in report.rows)
    assert report.rows[2][deaths_col] >= 1  # the kill -9 was observed


def test_cluster_goodput_failover_acceptance():
    """The tentpole numbers: >= 1.8x scale-out across two backend
    processes, zero client errors through a mid-run kill -9, bounded
    p99 blip, byte-identical trajectories through the router.

    Capacity is pinned by calibration, but a loaded host can still
    depress one leg mid-run, so the overload factor is hunted over a
    short ladder: a higher offered rate deepens the single leg's
    saturation without moving the cluster leg's ceiling.
    """
    traj_counters = _trajectory_differential()
    print(f"\n[E17 acceptance] trajectory identical through the router "
          f"({traj_counters.get('router.replicated', 0)} replica frames)")

    attempts = []
    found = None
    for overload in OVERLOADS:
        lg, solve_s, capacity, max_queue = _cluster_lg(overload)
        single, _ = _e17_leg(
            lg, 1, router=False, max_queue=max_queue,
            solve_delay_ms=SOLVE_DELAY_MS,
        )
        cluster, counters = _e17_leg(
            lg, 2, router=True, max_queue=max_queue,
            solve_delay_ms=SOLVE_DELAY_MS,
        )
        ratio = cluster.goodput_per_s / max(single.goodput_per_s, 1e-9)
        attempts.append({
            "overload": overload, "rate_per_s": lg.rate,
            "single_goodput_per_s": single.goodput_per_s,
            "cluster_goodput_per_s": cluster.goodput_per_s,
            "ratio": ratio,
        })
        print(f"[E17 acceptance] {lg.rate:.0f}/s ({overload:.1f}x one "
              f"backend): single {single.goodput_per_s:.1f}/s, cluster "
              f"{cluster.goodput_per_s:.1f}/s -> {ratio:.2f}x")
        if ratio >= 1.8:
            found = (lg, solve_s, capacity, max_queue, single, cluster,
                     counters, ratio)
            break
    assert found is not None, (
        f"cluster never reached 1.8x single-node goodput: {attempts}"
    )
    lg, solve_s, capacity, max_queue, single, cluster, counters, ratio = found

    failover, f_counters = _e17_leg(
        lg, 2, router=True, kill_at_s=DURATION_S / 2, max_queue=max_queue,
        solve_delay_ms=SOLVE_DELAY_MS,
    )
    print(f"[E17 acceptance] failover: goodput "
          f"{failover.goodput_per_s:.1f}/s, errors {failover.errors}, "
          f"p99 {failover.p99_ms:.0f}ms, deaths "
          f"{f_counters.get('router.backend_deaths', 0)}, replays "
          f"{f_counters.get('router.failover_replays', 0)}")

    results = {
        "workload": {
            "num_sites": lg.num_sites, "num_servers": lg.num_servers,
            "k": lg.k, "shards": SHARDS, "shard_base": lg.shard,
            "scratch_solve_ms": 1e3 * solve_s,
            "solve_delay_ms": SOLVE_DELAY_MS,
            "per_backend_capacity_per_s": capacity,
            "rate_per_s": lg.rate, "duration_s": DURATION_S,
            "deadline_ms": DEADLINE_MS, "max_queue": max_queue,
        },
        "attempts": attempts,
        "goodput": {
            "single_per_s": single.goodput_per_s,
            "cluster_per_s": cluster.goodput_per_s,
            "ratio": ratio,
        },
        "single": _record(single),
        "cluster": {**_record(cluster), "router_counters": counters},
        "failover": {**_record(failover), "router_counters": f_counters},
        "trajectory_identical": True,
        "trajectory_replicated_frames":
            traj_counters.get("router.replicated", 0),
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2, sort_keys=True))

    assert ratio >= 1.8, (
        f"cluster goodput only {ratio:.2f}x single-node"
    )
    assert failover.errors == 0, (
        f"{failover.errors} client errors through the kill -9"
    )
    assert f_counters.get("router.backend_deaths", 0) >= 1
    assert failover.p99_ms <= 4 * DEADLINE_MS, (
        f"failover p99 blip {failover.p99_ms:.0f}ms is unbounded"
    )
    assert failover.completed > 0
