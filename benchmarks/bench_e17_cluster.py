"""E17 — the cluster tier: router over backend processes, failover.

The acceptance configuration for the multi-node tier — >= 1.8x
single-node goodput across two backend OS processes (overload hunted
over a short ladder), zero failed client requests through a mid-run
``kill -9`` with a bounded p99 blip, and a websim trajectory through
the router byte-identical to the in-process solver — lives in the
scenario catalog (``repro.scenarios``, scenario E17, bench runner
``e17-cluster``); the acceptance test here is a thin shim over
``run_scenario``, which also refreshes the ``BENCH_e17.json`` working
copy.
"""

from repro.analysis import experiment_e17_cluster
from repro.scenarios import run_scenario


def test_e17_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e17_cluster, rounds=1, iterations=1)
    show_report(report)
    err_col = report.columns.index("err")
    deaths_col = report.columns.index("deaths")
    assert len(report.rows) == 3
    assert all(row[err_col] == 0 for row in report.rows)
    assert report.rows[2][deaths_col] >= 1  # the kill -9 was observed


def test_cluster_goodput_failover_acceptance():
    """>= 1.8x scale-out, zero client errors through a mid-run kill -9,
    bounded p99 blip, byte-identical trajectories through the router
    (catalog scenario E17)."""
    result = run_scenario("E17")
    assert result.acceptance_ok, result.failure_summary()
