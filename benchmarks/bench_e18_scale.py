"""E18 — O(churn) steady-state decides at a million sites.

The tentpole claim of the incremental epoch path: once a shard's
snapshot is resident everywhere (client, router, backend, engine),
one epoch's decide costs O(churn * polylog n) end to end — so growing
``n`` by 10x at fixed churn must barely move the steady-state decide
latency.  This benchmark pins that asymptotic with *real* CPU-bound
solves (no ``--solve-delay-ms`` floor anywhere): six churn-stream
shards (16 sites churned per shard per epoch, 64 servers per shard,
k=512) through the cluster router over three backend OS processes,
first at ~100k total sites and then at ~1M.

Both ratio legs run *paced* (``EPOCH_INTERVAL_MS`` per shard epoch,
identical at both scales, shard streams staggered across the
interval): the paper's regime is periodic reconfiguration epochs, and
pacing measures the per-decide cost itself rather than the queueing
amplification a saturating closed loop adds when six decide streams,
three backend processes, the router and the client all contend for
the same host cores.  Zero-error, byte-identity and O(churn)-counter
acceptance all run on the same paced legs.

The ratio legs run with standby replication disabled: replication is
off the decide critical path by design (the router acks the client
before draining the standby replay), but on a shared-core
measurement host the standby's wakeups add multi-ms scheduling
jitter that swamps the single-digit-ms decides being measured.  A
fourth leg re-runs the large scale with replication *on* and pins
what replication must and must not do: every epoch still replays to
the standby (``router.replicated``), nothing errors, and the decide
trajectory is byte-identical to the replication-off leg — the
standby plane observes the decision stream without perturbing it.

Acceptance (recorded in ``BENCH_e18.json``):

* >= 1,000,000 total sites across >= 3 backend processes on the large
  leg, zero client errors and zero fingerprint mismatches on every leg;
* steady-epoch client RTT p50 grows <= 2x when n grows 10x;
* the engines actually decided incrementally (``incremental_decides``
  > 0 on the backends);
* the small-scale trajectory is byte-identical across two independent
  runs through freshly spawned clusters — the decision stream is a
  pure function of the workload, not of process lifetimes or timing;
* with replication enabled, every steady epoch replays at the standby
  with zero replication errors and the decide trajectory stays
  byte-identical to the replication-off leg.

``E18_SITES_SMALL`` / ``E18_SITES_LARGE`` (per-shard site counts)
scale the legs down for CI smoke runs; the committed record is from
the full-scale run.
"""

import json
import os
from pathlib import Path

from repro.service import (
    BackendSpec,
    ChurnStreamConfig,
    HashRing,
    ServiceClient,
    run_churn_stream,
    spawn_router_process,
    spawn_serve_process,
)

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e18.json"

BACKENDS = 3
SHARDS = 6
SERVERS = 64           # per shard
K = 512
CHURN = 16             # sites per shard per epoch
EPOCHS = 24
WARMUP = 3
SITES_SMALL = int(os.environ.get("E18_SITES_SMALL", 16_700))
SITES_LARGE = int(os.environ.get("E18_SITES_LARGE", 167_000))
EPOCH_INTERVAL_MS = float(os.environ.get("E18_EPOCH_INTERVAL_MS", 300.0))
P50_GROWTH_BOUND = 2.0

NODE_NAMES = tuple(f"backend-{i}" for i in range(BACKENDS))


def _balanced_shard_base() -> str:
    """A shard-name base whose ``SHARDS`` streams cover every backend.

    Consistent hashing places 6 shards on 3 nodes unevenly for most
    name bases; the claim "1M sites across 3 backend processes" needs
    every backend to own at least one stream, so hunt for a base that
    spreads them (preferring a perfect 2/2/2 split).
    """
    ring = HashRing(NODE_NAMES)
    best, best_spread = "e18", 0
    for attempt in range(1000):
        base = f"e18-{attempt}"
        owners = {ring.owner(f"{base}-{i}") for i in range(SHARDS)}
        if len(owners) == BACKENDS:
            counts = [
                sum(
                    1 for i in range(SHARDS)
                    if ring.owner(f"{base}-{i}") == node
                )
                for node in NODE_NAMES
            ]
            if max(counts) == SHARDS // BACKENDS:
                return base
            if len(owners) > best_spread:
                best, best_spread = base, len(owners)
    assert best_spread == BACKENDS, "no shard base covers all backends"
    return best


def _run_leg(
    sites_per_shard: int,
    shard_base: str,
    seed: int = 18,
    replicate: bool = False,
):
    """One churn-stream leg through a freshly spawned cluster.

    Returns the loadgen report plus the router's counters and the
    summed backend engine statistics.  A fresh cluster per leg keeps
    the legs independent — nothing warm carries over, so the byte-
    identity check across legs is meaningful.
    """
    processes = []
    try:
        for _ in range(BACKENDS):
            processes.append(spawn_serve_process())
        specs = tuple(
            BackendSpec(name, proc.host, proc.port)
            for name, proc in zip(NODE_NAMES, processes)
        )
        # The router must be its own OS process (as deployed): a
        # daemon-thread router inside this interpreter would share the
        # GIL with the six client streams and every forward would wait
        # on the loadgen's own numpy work.
        router_args = () if replicate else ("--no-replicate",)
        router = spawn_router_process(specs, *router_args)
        processes.append(router)
        config = ChurnStreamConfig(
            shard=shard_base, shards=SHARDS, k=K,
            num_sites=sites_per_shard, num_servers=SERVERS,
            churn=CHURN, epochs=EPOCHS, warmup_epochs=WARMUP,
            seed=seed, timeout=600.0,
            epoch_interval_ms=EPOCH_INTERVAL_MS,
        )
        report = run_churn_stream(router.host, router.port, config)
        with ServiceClient(router.host, router.port, timeout=120.0) as probe:
            status = probe.status()
    finally:
        for proc in processes:
            proc.terminate()
    counters = status["router"]["metrics"]["counters"]
    engines = {"incremental_decides": 0, "decisions": 0, "churn_fallbacks": 0}
    for backend in status["backends"].values():
        for shard_stats in backend.get("shards", {}).values():
            engine = shard_stats.get("engine") or {}
            for key in engines:
                engines[key] += engine.get(key, 0)
    return report, counters, engines


def _clean(report, total_sites: int) -> None:
    assert report.errors == 0, f"{report.errors} client errors at n={total_sites}"
    assert report.fp_mismatches == 0, (
        f"{report.fp_mismatches} fingerprint mismatches at n={total_sites}"
    )
    assert report.completed == SHARDS * EPOCHS
    assert report.deltas_sent == SHARDS * (EPOCHS - 1), (
        "steady epochs did not all ship as deltas"
    )


def _record(report) -> dict:
    out = report.as_dict()
    del out["steady_ms"], out["warmup_ms"]  # bucket dumps
    return out


def test_e18_decide_latency_scale_acceptance():
    """The tentpole numbers: steady-epoch decide p50 through the
    3-backend cluster grows <= 2x while total sites grow 10x (100k ->
    1M), with byte-identical small-scale trajectories across freshly
    spawned clusters."""
    shard_base = _balanced_shard_base()

    small, small_counters, small_engines = _run_leg(SITES_SMALL, shard_base)
    _clean(small, SHARDS * SITES_SMALL)
    print(f"\n[E18] small n={SHARDS * SITES_SMALL}: steady p50 "
          f"{small.steady_p50_ms:.2f}ms p95 {small.steady_p95_ms:.2f}ms "
          f"({small.duration_s:.1f}s wall)")

    rerun, _, _ = _run_leg(SITES_SMALL, shard_base)
    _clean(rerun, SHARDS * SITES_SMALL)
    assert rerun.trajectories == small.trajectories, (
        "small-scale trajectory not byte-identical across clusters"
    )
    print(f"[E18] small rerun byte-identical "
          f"({len(small.trajectories)} shard trajectories)")

    large, large_counters, large_engines = _run_leg(SITES_LARGE, shard_base)
    _clean(large, SHARDS * SITES_LARGE)
    ratio = large.steady_p50_ms / max(small.steady_p50_ms, 1e-9)
    print(f"[E18] large n={SHARDS * SITES_LARGE}: steady p50 "
          f"{large.steady_p50_ms:.2f}ms p95 {large.steady_p95_ms:.2f}ms "
          f"({large.duration_s:.1f}s wall) -> p50 growth {ratio:.2f}x "
          f"for {SITES_LARGE / SITES_SMALL:.0f}x sites")

    repl, repl_counters, repl_engines = _run_leg(
        SITES_LARGE, shard_base, replicate=True
    )
    _clean(repl, SHARDS * SITES_LARGE)
    print(f"[E18] large+replication: steady p50 {repl.steady_p50_ms:.2f}ms, "
          f"{repl_counters.get('router.replicated', 0)} standby replays")

    results = {
        "workload": {
            "backends": BACKENDS, "shards": SHARDS,
            "servers_per_shard": SERVERS, "k": K,
            "churn_per_shard_per_epoch": CHURN,
            "epochs": EPOCHS, "warmup_epochs": WARMUP,
            "sites_per_shard_small": SITES_SMALL,
            "sites_per_shard_large": SITES_LARGE,
            "total_sites_small": SHARDS * SITES_SMALL,
            "total_sites_large": SHARDS * SITES_LARGE,
            "shard_base": shard_base,
            "solve_delay_ms": 0.0,
            "epoch_interval_ms": EPOCH_INTERVAL_MS,
        },
        "steady_p50_ms": {
            "small": small.steady_p50_ms,
            "large": large.steady_p50_ms,
            "growth": ratio,
            "bound": P50_GROWTH_BOUND,
        },
        "small": {
            **_record(small),
            "router_counters": small_counters,
            "engines": small_engines,
        },
        "large": {
            **_record(large),
            "router_counters": large_counters,
            "engines": large_engines,
        },
        "large_with_replication": {
            **_record(repl),
            "router_counters": repl_counters,
            "engines": repl_engines,
        },
        "trajectory_identical": True,
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2, sort_keys=True))

    total_large = SHARDS * SITES_LARGE
    if int(os.environ.get("E18_SITES_LARGE", 167_000)) == 167_000:
        assert total_large >= 1_000_000
    assert small_engines["incremental_decides"] > 0
    assert large_engines["incremental_decides"] > 0, (
        "large leg never decided incrementally"
    )
    assert large_counters.get("router.resident_deltas", 0) >= (
        SHARDS * (EPOCHS - 1)
    ), "router did not stay on its O(churn) passthrough"
    assert repl_counters.get("router.replicated", 0) >= SHARDS * (
        EPOCHS - 1
    ), "replication leg did not replay every epoch at the standby"
    assert repl_counters.get("router.replication_errors", 0) == 0
    assert repl.trajectories == large.trajectories, (
        "standby replication perturbed the decision stream"
    )
    assert ratio <= P50_GROWTH_BOUND, (
        f"steady decide p50 grew {ratio:.2f}x for 10x sites "
        f"(small {small.steady_p50_ms:.2f}ms, large "
        f"{large.steady_p50_ms:.2f}ms)"
    )
