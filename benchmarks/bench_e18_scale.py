"""E18 — O(churn) steady-state decides at a million sites.

The tentpole claim of the incremental epoch path: once a shard's
snapshot is resident everywhere (client, router, backend, engine),
one epoch's decide costs O(churn * polylog n) end to end — so growing
``n`` by 10x at fixed churn must barely move the steady-state decide
latency.  The full configuration (six paced churn-stream shards
through the cluster router over three backend OS processes, ratio
legs at ~100k and ~1M total sites, a rerun byte-identity leg and a
replication-on leg) lives in the scenario catalog
(``repro.scenarios``, scenario E18, bench runner ``e18-scale``); the
acceptance test here is a thin shim over ``run_scenario``, which also
refreshes the ``BENCH_e18.json`` working copy.

Tier selection: the ``full`` tier is the canonical million-site run;
the ``ci`` tier (2,000/20,000 sites per shard) asserts the same
invariants at CI scale and is what the tracked record under
``benchmarks/records/ci/E18.json`` pins.  ``REPRO_TIER`` picks the tier here
(default: full); ``E18_SITES_SMALL`` / ``E18_SITES_LARGE`` /
``E18_EPOCH_INTERVAL_MS`` still override the per-shard site counts
and pacing directly, and disarm the million-site floor when they
scale the large leg down.
"""

import os

from repro.scenarios import run_scenario


def _overrides() -> dict:
    bench: dict = {}
    if "E18_SITES_SMALL" in os.environ:
        bench["sites_small"] = int(os.environ["E18_SITES_SMALL"])
    if "E18_SITES_LARGE" in os.environ:
        bench["sites_large"] = int(os.environ["E18_SITES_LARGE"])
        if bench["sites_large"] < 167_000:
            bench["required_total_large"] = 0
    if "E18_EPOCH_INTERVAL_MS" in os.environ:
        bench["epoch_interval_ms"] = float(os.environ["E18_EPOCH_INTERVAL_MS"])
    return {"bench": bench} if bench else {}


def test_e18_decide_latency_scale_acceptance():
    """The tentpole numbers: steady-epoch decide p50 through the
    3-backend cluster grows <= 2x while total sites grow 10x, with
    byte-identical trajectories across freshly spawned clusters and a
    replication leg that observes without perturbing (catalog scenario
    E18)."""
    tier = os.environ.get("REPRO_TIER", "full")
    result = run_scenario("E18", tier=tier, overrides=_overrides())
    assert result.acceptance_ok, result.failure_summary()
