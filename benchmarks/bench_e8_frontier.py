"""E8 — the makespan-vs-k frontier on the planted-imbalance family."""

import numpy as np

from repro.analysis import experiment_e8_frontier
from repro.core import m_partition_rebalance
from repro.workloads import planted_imbalance_instance


def test_e8_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e8_frontier, rounds=1, iterations=1)
    show_report(report)
    mp = [row[3] for row in report.rows]
    lb = [row[1] for row in report.rows]
    # The frontier never goes below the Lemma-1 lower bound and the
    # final point is within 1.5x of it.
    assert all(v >= b - 1e-9 for v, b in zip(mp, lb))
    assert mp[-1] <= 1.5 * lb[-1] + 1e-9


def test_frontier_sweep_kernel(benchmark):
    rng = np.random.default_rng(13)
    instance, k_star, opt = planted_imbalance_instance(8, 40, 60, rng)

    def sweep():
        return [
            m_partition_rebalance(instance, k).makespan
            for k in range(0, k_star + 1, 10)
        ]

    values = benchmark(sweep)
    assert values[-1] <= 1.5 * opt + 1e-9
