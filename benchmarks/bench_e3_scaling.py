"""E3 — O(n log n) runtime scaling (Theorems 1 and 3)."""

import numpy as np

from repro.analysis import experiment_e3_scaling
from repro.core import build_tables, greedy_rebalance, m_partition_rebalance
from repro.workloads import random_instance


def test_e3_table(benchmark, show_report):
    report = benchmark.pedantic(
        experiment_e3_scaling, rounds=1, iterations=1
    )
    show_report(report)
    slopes = [row[2] for row in report.rows]
    assert all(s < 1.7 for s in slopes), f"super-quasi-linear slopes: {slopes}"


def test_greedy_scaling_point_n16384(benchmark):
    rng = np.random.default_rng(3)
    inst = random_instance(16384, 16, rng)
    benchmark(greedy_rebalance, inst, 1600)


def test_m_partition_scaling_point_n16384(benchmark):
    rng = np.random.default_rng(4)
    inst = random_instance(16384, 16, rng)
    benchmark(m_partition_rebalance, inst, 1600)


def test_threshold_table_build_n16384(benchmark):
    rng = np.random.default_rng(5)
    inst = random_instance(16384, 16, rng)
    benchmark(build_tables, inst)
