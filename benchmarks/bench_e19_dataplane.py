"""E19 — the sharded router data plane scales goodput with workers.

The tentpole claim of the multi-process data plane: router throughput
is bounded by worker processes, not by the router abstraction — N
shard-affine workers behind one shared port deliver ~N times the
goodput of one worker at no p99 cost, while staying byte-identical to
the single-process router (including kill -9 backend failover and
live migration mid-run).

The measurement pins per-worker capacity *by construction* — a relay
concurrency gate plus a synthetic per-relay service floor
(``relay_concurrency`` / ``relay_delay_ms``), the same device E17's
``--solve-delay-ms`` uses — so the 1-to-N goodput ratio is a property
of the architecture and holds on a one-core CI box exactly as it does
on a many-core host.  The full configuration (capacity-pinned scaling
legs, three differential trajectory legs, and the client-side
frame-encoder CPU A/B) lives in the scenario catalog
(``repro.scenarios``, scenario E19, bench runner ``e19-dataplane``);
this acceptance test is a thin shim over ``run_scenario``, which also
refreshes the ``BENCH_e19.json`` working copy.

Tier selection: the ``full`` tier runs 4 workers and demands >= 2.5x;
the ``ci`` tier runs 2 workers, demands >= 1.6x, and is what the
tracked record under ``benchmarks/records/ci/E19.json`` pins.
``REPRO_TIER`` picks the tier here (default: full);
``E19_WORKERS`` / ``E19_DURATION_S`` override the worker count and
per-leg window directly (a down-scaled worker count relaxes the
scaling floor to the ci tier's).
"""

import os

from repro.scenarios import run_scenario


def _overrides() -> dict:
    bench: dict = {}
    if "E19_WORKERS" in os.environ:
        bench["workers"] = int(os.environ["E19_WORKERS"])
        if bench["workers"] < 4:
            bench["min_ratio"] = 1.6
    if "E19_DURATION_S" in os.environ:
        bench["duration_s"] = float(os.environ["E19_DURATION_S"])
    return {"bench": bench} if bench else {}


def test_e19_dataplane_scaleout_acceptance():
    """The tentpole numbers: goodput through the sharded router scales
    >= min_ratio from 1 worker to N at <= single-worker p99 (capacity
    pinned per worker by construction), trajectories stay
    byte-identical through the data plane under failover and live
    migration, and the reusable frame encoder does not cost client CPU
    (catalog scenario E19)."""
    tier = os.environ.get("REPRO_TIER", "full")
    result = run_scenario("E19", tier=tier, overrides=_overrides())
    assert result.acceptance_ok, result.failure_summary()
