"""E14 — the rebalancing service: batched vs naive serving.

The acceptance configuration for the service layer — batching +
admission must sustain at least 3x the naive server's goodput at an
equal-or-better p99, and overload must degrade gracefully — lives in
the scenario catalog (``repro.scenarios``, scenario E14, bench runner
``e14-service``); the acceptance test here is a thin shim over
``run_scenario``, which also refreshes the ``BENCH_e14.json`` working
copy.
"""

from repro.analysis import experiment_e14_service
from repro.scenarios import run_scenario


def test_e14_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e14_service, rounds=1, iterations=1)
    show_report(report)
    alive_col = report.columns.index("alive")
    err_col = report.columns.index("err")
    assert all(row[alive_col] for row in report.rows)
    assert all(row[err_col] == 0 for row in report.rows)


def test_service_goodput_acceptance():
    """Batched >= 3x naive goodput at equal-or-better p99; overload
    sheds load via rejections with the server alive throughout
    (catalog scenario E14)."""
    result = run_scenario("E14")
    assert result.acceptance_ok, result.failure_summary()
