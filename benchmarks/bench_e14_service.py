"""E14 — the rebalancing service: batched vs naive serving.

The acceptance configuration for the service layer: on a workload
calibrated to this host, the batching + admission server must sustain
at least 3x the goodput of the naive one-request-per-solve server at
an equal-or-better p99, and overload must degrade gracefully —
admission rejections and deadline sheds, a live server afterwards,
never an unbounded queue or a crash.  Results land in
``BENCH_e14.json`` for the CI smoke step.
"""

import json
from dataclasses import replace
from pathlib import Path

from repro.analysis import experiment_e14_service
from repro.service import (
    ServerConfig,
    ServiceClient,
    calibrate_workload,
    run_loadgen,
    start_background,
)

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e14.json"

RATE = 120.0          # offered arrivals/s; calibration keeps the naive
                      # server's capacity well below this on any host
DURATION_S = 2.0      # arrival window per run
DUPLICATES = 4        # identical submissions per snapshot (frontends)
DEADLINE_MS = 300.0   # per-request deadline (goodput cutoff)


def _run(server_config, loadgen_config):
    """One run against a fresh in-process server; returns the loadgen
    report, whether the server answered ``ping`` afterwards, and its
    final ``status`` snapshot."""
    with start_background(server_config) as handle:
        report = run_loadgen(handle.host, handle.port, loadgen_config)
        with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
            alive = probe.ping()
            status = probe.status()
    return report, alive, status


def _record(report, alive):
    out = report.as_dict()
    del out["latency_ms"]  # bucket dump; the percentiles are retained
    out["alive_after"] = alive
    return out


def test_e14_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e14_service, rounds=1, iterations=1)
    show_report(report)
    alive_col = report.columns.index("alive")
    err_col = report.columns.index("err")
    assert all(row[alive_col] for row in report.rows)
    assert all(row[err_col] == 0 for row in report.rows)


def test_service_goodput_acceptance():
    """Batched >= 3x naive goodput at equal-or-better p99; overload
    sheds load via rejections with the server alive throughout."""
    base, scratch_s = calibrate_workload()
    lg = replace(
        base, rate=RATE, duration_s=DURATION_S,
        duplicates=DUPLICATES, deadline_ms=DEADLINE_MS,
    )

    batched, batched_alive, _ = _run(ServerConfig(max_queue=64), lg)
    naive, naive_alive, _ = _run(ServerConfig.naive(max_queue=64), lg)
    # Overload rows: past capacity with a tight admission queue.  The
    # naive solver is the slow path, so its queue is where rejections
    # must appear; the batched server gets twice the offered rate.
    over_b, over_b_alive, over_b_status = _run(
        ServerConfig(max_queue=24), replace(lg, rate=2 * RATE)
    )
    over_n, over_n_alive, over_n_status = _run(
        ServerConfig.naive(max_queue=24), lg
    )

    ratio = batched.goodput_per_s / max(naive.goodput_per_s, 1e-9)
    results = {
        "workload": {
            "num_sites": base.num_sites, "num_servers": base.num_servers,
            "k": base.k, "scratch_solve_ms": 1e3 * scratch_s,
            "rate_per_s": RATE, "duration_s": DURATION_S,
            "duplicates": DUPLICATES, "deadline_ms": DEADLINE_MS,
        },
        "batched": _record(batched, batched_alive),
        "naive": _record(naive, naive_alive),
        "overload_batched_2x": _record(over_b, over_b_alive),
        "overload_naive": _record(over_n, over_n_alive),
        "goodput_ratio": ratio,
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")

    print(f"\n[E14 acceptance] batched {batched.goodput_per_s:.1f}/s "
          f"(p99 {batched.p99_ms:.1f}ms) vs naive "
          f"{naive.goodput_per_s:.1f}/s (p99 {naive.p99_ms:.1f}ms): "
          f"{ratio:.1f}x")
    print(f"[E14 acceptance] overload: naive rejected {over_n.rejected}, "
          f"shed {over_n.shed}; batched@2x rejected {over_b.rejected}, "
          f"late {over_b.late}; all alive")

    # Every offered request gets exactly one recorded outcome.
    for report in (batched, naive, over_b, over_n):
        accounted = (report.completed + report.late + report.rejected
                     + report.shed + report.errors)
        assert accounted == report.offered
        assert report.errors == 0

    # Goodput: >= 3x at an equal-or-better tail.
    assert ratio >= 3.0
    assert batched.p99_ms <= naive.p99_ms

    # Graceful overload: backpressure visible as rejections on the
    # saturated solver, queues bounded and drained, servers alive.
    assert over_n.rejected > 0
    assert batched_alive and naive_alive and over_b_alive and over_n_alive
    for status in (over_b_status, over_n_status):
        assert status["queue"]["depth"] == 0
        assert status["queue"]["max_depth"] == 24
