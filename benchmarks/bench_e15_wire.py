"""E15 — the v2 wire protocol: binary frames + delta snapshots.

The acceptance configuration for the transport layer: on a workload
calibrated so a single v1-JSON codec round costs a fixed time on this
host, the v2 binary frame must be strictly smaller on the wire than the
v1 JSON frame for the same snapshot (and decode bit-exactly), the
steady-state delta stream must be at least 5x smaller per request than
v1 fulls, and the binary+delta transport over the multi-process shard
executor must sustain at least 2x the goodput of the v1-JSON thread
server at an equal-or-better p99 under the same offered load.  Results
land in ``BENCH_e15.json`` for the CI smoke step.
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis import experiment_e15_wire, wire_sizes
from repro.core.instance import Instance
from repro.service import (
    PROTOCOL_V1,
    PROTOCOL_V2,
    ServerConfig,
    ServiceClient,
    build_snapshots,
    calibrate_wire_workload,
    encode_frame,
    run_loadgen,
    start_background,
    unpack_payload,
)

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e15.json"

DURATION_S = 2.0      # arrival window per run
DEADLINE_MS = 300.0   # per-request deadline (goodput cutoff)
OVERLOAD = 1.35       # offered rate vs the v1 codec's own capacity
RATE_CAP = 400.0      # open-loop ceiling; keeps slow-host runs bounded


def _run(server_config, loadgen_config):
    """One run against a fresh in-process server; returns the loadgen
    report, whether the server answered ``ping`` afterwards, and its
    final ``status`` snapshot."""
    with start_background(server_config) as handle:
        report = run_loadgen(handle.host, handle.port, loadgen_config)
        with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
            alive = probe.ping()
            status = probe.status()
    return report, alive, status


def _record(report, alive):
    out = report.as_dict()
    del out["latency_ms"]  # bucket dump; the percentiles are retained
    out["alive_after"] = alive
    return out


def test_e15_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e15_wire, rounds=1, iterations=1)
    show_report(report)
    alive_col = report.columns.index("alive")
    err_col = report.columns.index("err")
    served = [row for row in report.rows if row[alive_col] != "-"]
    assert len(served) == 2
    assert all(row[alive_col] for row in served)
    assert all(row[err_col] == 0 for row in served)


def test_wire_bytes_smoke():
    """Fast invariants, no server: v2 binary strictly smaller than v1
    JSON for the reference snapshot, bit-exact through the codec, and
    the steady-state delta stream >= 5x smaller than v1 fulls."""
    config, _ = calibrate_wire_workload()
    reference = build_snapshots(replace(config, epochs=1))[0]
    message = {"op": "rebalance", "shard": "smoke", "k": config.k,
               "deadline_ms": DEADLINE_MS}
    v1 = encode_frame(message | {"instance": reference.to_dict()},
                      version=PROTOCOL_V1)
    v2 = encode_frame(message | {"instance": reference.to_wire()},
                      version=PROTOCOL_V2)
    assert len(v2) < len(v1)

    # Decode the v2 body (past the 8-byte header) and rebuild the
    # instance exactly as the server does: bit-for-bit equality.
    decoded = Instance.from_dict(unpack_payload(v2[8:])["instance"])
    np.testing.assert_array_equal(decoded.sizes, reference.sizes)
    np.testing.assert_array_equal(decoded.costs, reference.costs)
    np.testing.assert_array_equal(decoded.initial, reference.initial)

    sizes = wire_sizes(replace(config, epochs=12))
    assert sizes["v2_full_bytes"] < sizes["v1_full_bytes"]
    assert sizes["delta_reduction"] >= 5.0


def test_wire_goodput_acceptance():
    """Binary+delta over the process executor >= 2x the goodput of the
    v1-JSON thread server at an equal-or-better p99, on the same
    steady multi-shard load offered past the v1 codec's capacity."""
    base, codec_s = calibrate_wire_workload()
    sizes = wire_sizes(base)
    rate = min(RATE_CAP, OVERLOAD / codec_s)
    lg = replace(base, rate=rate, duration_s=DURATION_S,
                 deadline_ms=DEADLINE_MS)

    baseline, base_alive, base_status = _run(ServerConfig(max_queue=64), lg)
    optimized, opt_alive, opt_status = _run(
        ServerConfig(executor="process", process_workers=2, max_queue=64),
        replace(lg, protocol="binary", delta=True),
    )

    ratio = optimized.goodput_per_s / max(baseline.goodput_per_s, 1e-9)
    results = {
        "workload": {
            "num_sites": base.num_sites, "num_servers": base.num_servers,
            "k": base.k, "shards": base.shards,
            "duplicates": base.duplicates, "traffic": base.traffic,
            "codec_round_ms": 1e3 * codec_s, "rate_per_s": rate,
            "duration_s": DURATION_S, "deadline_ms": DEADLINE_MS,
            "overload": OVERLOAD,
        },
        "wire": sizes,
        "baseline_v1_thread": _record(baseline, base_alive),
        "optimized_v2_delta_process": _record(optimized, opt_alive),
        "goodput_ratio": ratio,
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")

    print(f"\n[E15 acceptance] wire: v1 full {sizes['v1_full_bytes']:.0f}B, "
          f"v2 full {sizes['v2_full_bytes']:.0f}B "
          f"({sizes['binary_reduction']:.2f}x), delta "
          f"{sizes['v2_delta_bytes']:.0f}B ({sizes['delta_reduction']:.0f}x)")
    print(f"[E15 acceptance] goodput at {rate:.0f}/s: v2+delta+process "
          f"{optimized.goodput_per_s:.1f}/s (p99 {optimized.p99_ms:.1f}ms, "
          f"deltas {optimized.deltas_sent}/{optimized.offered}) vs v1 json "
          f"{baseline.goodput_per_s:.1f}/s (p99 {baseline.p99_ms:.1f}ms): "
          f"{ratio:.1f}x")

    # Every offered request gets exactly one recorded outcome.
    for report in (baseline, optimized):
        accounted = (report.completed + report.late + report.rejected
                     + report.shed + report.errors)
        assert accounted == report.offered
        assert report.errors == 0

    # Wire: binary strictly smaller, steady-state deltas >= 5x smaller.
    assert sizes["v2_full_bytes"] < sizes["v1_full_bytes"]
    assert sizes["delta_reduction"] >= 5.0
    # The optimized leg really ran on deltas once its bases warmed up.
    assert optimized.deltas_sent > 0

    # Goodput: >= 2x at an equal-or-better tail, both servers alive.
    assert ratio >= 2.0
    assert optimized.p99_ms <= baseline.p99_ms
    assert base_alive and opt_alive
    assert opt_status["config"]["executor"] == "process"
    assert base_status["queue"]["depth"] == 0
    assert opt_status["queue"]["depth"] == 0
