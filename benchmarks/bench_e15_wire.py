"""E15 — the v2 wire protocol: binary frames + delta snapshots.

The acceptance configuration for the transport layer — v2 strictly
smaller than v1 and bit-exact through the codec, steady-state deltas
>= 5x smaller, binary+delta over the process executor >= 2x the v1
thread server's goodput — lives in the scenario catalog
(``repro.scenarios``, scenario E15, bench runner ``e15-wire``); the
acceptance test here is a thin shim over ``run_scenario``, which also
refreshes the ``BENCH_e15.json`` working copy.  The serverless wire
smoke remains local for fast feedback.
"""

from dataclasses import replace

import numpy as np

from repro.analysis import experiment_e15_wire, wire_sizes
from repro.core.instance import Instance
from repro.scenarios import run_scenario
from repro.service import (
    PROTOCOL_V1,
    PROTOCOL_V2,
    build_snapshots,
    calibrate_wire_workload,
    encode_frame,
    unpack_payload,
)

DEADLINE_MS = 300.0


def test_e15_table(benchmark, show_report):
    report = benchmark.pedantic(experiment_e15_wire, rounds=1, iterations=1)
    show_report(report)
    alive_col = report.columns.index("alive")
    err_col = report.columns.index("err")
    served = [row for row in report.rows if row[alive_col] != "-"]
    assert len(served) == 2
    assert all(row[alive_col] for row in served)
    assert all(row[err_col] == 0 for row in served)


def test_wire_bytes_smoke():
    """Fast invariants, no server: v2 binary strictly smaller than v1
    JSON for the reference snapshot, bit-exact through the codec, and
    the steady-state delta stream >= 5x smaller than v1 fulls."""
    config, _ = calibrate_wire_workload()
    reference = build_snapshots(replace(config, epochs=1))[0]
    message = {"op": "rebalance", "shard": "smoke", "k": config.k,
               "deadline_ms": DEADLINE_MS}
    v1 = encode_frame(message | {"instance": reference.to_dict()},
                      version=PROTOCOL_V1)
    v2 = encode_frame(message | {"instance": reference.to_wire()},
                      version=PROTOCOL_V2)
    assert len(v2) < len(v1)

    # Decode the v2 body (past the 8-byte header) and rebuild the
    # instance exactly as the server does: bit-for-bit equality.
    decoded = Instance.from_dict(unpack_payload(v2[8:])["instance"])
    np.testing.assert_array_equal(decoded.sizes, reference.sizes)
    np.testing.assert_array_equal(decoded.costs, reference.costs)
    np.testing.assert_array_equal(decoded.initial, reference.initial)

    sizes = wire_sizes(replace(config, epochs=12))
    assert sizes["v2_full_bytes"] < sizes["v1_full_bytes"]
    assert sizes["delta_reduction"] >= 5.0


def test_wire_goodput_acceptance():
    """Binary+delta over the process executor >= 2x the goodput of the
    v1-JSON thread server at an equal-or-better p99 (catalog scenario
    E15)."""
    result = run_scenario("E15")
    assert result.acceptance_ok, result.failure_summary()
