"""The paper's tightness constructions, as parametric instance families.

These are the instances the theorems use to show their bounds cannot be
improved:

* :func:`greedy_tight_instance` — Theorem 1's example: GREEDY's ratio
  approaches ``2 - 1/m`` exactly;
* :func:`partition_tight_instance` — Theorem 2's example: PARTITION
  returns exactly ``1.5 * OPT``;
* :func:`planted_imbalance_instance` — a "planted optimum" family with
  a known perfectly balanced reachable state, for controlled sweeps.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance, make_instance

__all__ = [
    "greedy_tight_instance",
    "partition_tight_instance",
    "planted_imbalance_instance",
]


def greedy_tight_instance(m: int) -> tuple[Instance, int, float]:
    """Theorem 1's tight example for GREEDY.

    ``m`` processors; one job of size ``m`` and ``m^2 - m`` unit jobs.
    Initially each processor holds ``m - 1`` unit jobs, and processor 0
    additionally holds the size-``m`` job; the budget is
    ``k = m - 1``.

    * ``OPT = m``: relocating the ``m - 1`` unit jobs off processor 0
      leaves it with just the big job (load ``m``) and raises the others
      to ``m`` each.
    * GREEDY (reinserting the big job last, which the removal order
      arranges) reproduces a configuration of makespan ``2m - 1``,
      giving ratio ``(2m - 1) / m = 2 - 1/m`` exactly.

    Returns ``(instance, k, opt)``.
    """
    if m < 2:
        raise ValueError("need at least two processors")
    sizes: list[float] = []
    initial: list[int] = []
    # The big job first on processor 0 — GREEDY's Step 1 removes it
    # first (it is the largest on the max-loaded processor), and the
    # "arbitrary" Step-2 order of the paper considers it last.  Our
    # implementation reinserts in removal order, so to realize the
    # worst case we list unit jobs afterwards and rely on the documented
    # adversarial insert order (see tests) — the instance itself is the
    # paper's.
    sizes.append(float(m))
    initial.append(0)
    for p in range(m):
        for _ in range(m - 1):
            sizes.append(1.0)
            initial.append(p)
    instance = make_instance(sizes=sizes, initial=initial, num_processors=m)
    return instance, m - 1, float(m)


def partition_tight_instance() -> tuple[Instance, int, float]:
    """Theorem 2's tight example for PARTITION.

    Two processors; processor 0 holds jobs of sizes ``1/2`` and ``1``,
    processor 1 holds a job of size ``1/2``; budget ``k = 1``; the
    optimum is ``1`` (move the size-``1/2`` job from processor 0 to
    processor 1).  At guess ``OPT = 1`` PARTITION computes
    ``L_T = 1, a = (0, 0), b = (1, 0)`` and makes no moves whatsoever,
    achieving exactly ``3/2``.

    Returns ``(instance, k, opt)``.
    """
    instance = make_instance(
        sizes=[0.5, 1.0, 0.5], initial=[0, 0, 1], num_processors=2
    )
    return instance, 1, 1.0


def planted_imbalance_instance(
    m: int,
    jobs_per_processor: int,
    displaced: int,
    rng: np.random.Generator,
) -> tuple[Instance, int, float]:
    """A planted-optimum family.

    Build a perfectly balanced assignment (every processor holds the
    same multiset of sizes), then displace ``displaced`` random jobs
    onto processor 0.  Undoing the displacement restores balance, so
    the optimum with ``k = displaced`` moves is the balanced makespan —
    a known ground truth at any scale, no exact solver needed.

    Returns ``(instance, k, opt)``.
    """
    if displaced > (m - 1) * jobs_per_processor:
        raise ValueError("cannot displace more jobs than other processors hold")
    base_sizes = rng.uniform(1.0, 100.0, jobs_per_processor)
    sizes: list[float] = []
    initial: list[int] = []
    for p in range(m):
        for s in base_sizes:
            sizes.append(float(s))
            initial.append(p)
    opt = float(base_sizes.sum())
    # Displace jobs from processors 1..m-1 onto processor 0.
    candidates = [i for i in range(len(initial)) if initial[i] != 0]
    chosen = rng.choice(len(candidates), size=displaced, replace=False)
    for c in chosen:
        initial[candidates[int(c)]] = 0
    instance = make_instance(sizes=sizes, initial=initial, num_processors=m)
    return instance, displaced, opt
