"""Seeded random instance families for experiments and tests.

Every generator routes randomness through a caller-supplied
``numpy.random.Generator`` so experiments are exactly reproducible.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..core.instance import Instance

__all__ = ["random_instance", "SIZE_FAMILIES", "COST_FAMILIES", "PLACEMENTS"]

SIZE_FAMILIES = ("uniform", "exponential", "lognormal", "zipf", "unit")
COST_FAMILIES = ("unit", "proportional", "inverse", "random")
PLACEMENTS = ("random", "skewed", "packed", "round-robin")


def _sizes(
    family: str, n: int, rng: np.random.Generator
) -> np.ndarray:
    if family == "uniform":
        return rng.uniform(1.0, 100.0, n)
    if family == "exponential":
        return 1.0 + rng.exponential(20.0, n)
    if family == "lognormal":
        return np.exp(rng.normal(2.0, 1.0, n)) + 0.1
    if family == "zipf":
        ranks = rng.permutation(n) + 1
        return 100.0 / ranks.astype(np.float64)
    if family == "unit":
        return np.ones(n)
    raise ValueError(f"unknown size family {family!r}; options: {SIZE_FAMILIES}")


def _costs(
    family: str, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    if family == "unit":
        return np.ones_like(sizes)
    if family == "proportional":
        return sizes.copy()  # big sites are expensive to move
    if family == "inverse":
        return 100.0 / sizes  # big sites are *cheap* to move (adversarial)
    if family == "random":
        return rng.uniform(0.5, 10.0, sizes.shape[0])
    raise ValueError(f"unknown cost family {family!r}; options: {COST_FAMILIES}")


def _placement(
    kind: str, n: int, m: int, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    if kind == "random":
        return rng.integers(0, m, n)
    if kind == "round-robin":
        return np.arange(n, dtype=np.int64) % m
    if kind == "packed":
        # Everything on processor 0: the maximally unbalanced start.
        return np.zeros(n, dtype=np.int64)
    if kind == "skewed":
        # Geometric preference for low-index processors.
        probs = 0.5 ** np.arange(m, dtype=np.float64)
        probs /= probs.sum()
        return rng.choice(m, size=n, p=probs)
    raise ValueError(f"unknown placement {kind!r}; options: {PLACEMENTS}")


def random_instance(
    n: int,
    m: int,
    rng: np.random.Generator,
    size_family: str = "uniform",
    cost_family: str = "unit",
    placement: str = "random",
    integer_sizes: bool = False,
) -> Instance:
    """One random instance from the named family.

    Parameters
    ----------
    n, m:
        Jobs and processors.
    size_family:
        One of :data:`SIZE_FAMILIES`.
    cost_family:
        One of :data:`COST_FAMILIES`.
    placement:
        One of :data:`PLACEMENTS` — how the *initial* (suboptimal)
        assignment is drawn.
    integer_sizes:
        Round sizes up to integers (useful for exact-solver ground
        truth with clean arithmetic).
    """
    sizes = _sizes(size_family, n, rng)
    if integer_sizes:
        sizes = np.ceil(sizes)
    costs = _costs(cost_family, sizes, rng)
    initial = _placement(placement, n, m, sizes, rng)
    return Instance(
        sizes=sizes, costs=costs, num_processors=m, initial=initial
    )
