"""Workload generators: random families and the paper's tightness
constructions."""

from .adversarial import (
    greedy_tight_instance,
    partition_tight_instance,
    planted_imbalance_instance,
)
from .generators import (
    COST_FAMILIES,
    PLACEMENTS,
    SIZE_FAMILIES,
    random_instance,
)

__all__ = [
    "COST_FAMILIES",
    "PLACEMENTS",
    "SIZE_FAMILIES",
    "greedy_tight_instance",
    "partition_tight_instance",
    "planted_imbalance_instance",
    "random_instance",
]
