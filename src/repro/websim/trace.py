"""Load-trace recording and replay.

The cited Linder–Shah deployment rebalanced against *measured* website
loads.  Production traces are unavailable (see DESIGN.md §4), but the
simulator supports the same workflow: record any traffic model's
per-epoch load matrix to a trace, persist it as JSON or CSV, and replay
it later — so experiments can be re-run bit-for-bit against a frozen
workload, and real traces can be dropped in whenever someone has them
(one row per epoch, one column per site).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .traffic import TrafficModel
from .website import Website

__all__ = ["LoadTrace", "record_trace", "ReplayTraffic"]


@dataclass(frozen=True)
class LoadTrace:
    """A frozen (epochs x sites) matrix of observed loads."""

    loads: np.ndarray

    def __post_init__(self) -> None:
        loads = np.asarray(self.loads, dtype=np.float64).copy()
        if loads.ndim != 2:
            raise ValueError("trace must be a 2-d (epochs x sites) matrix")
        if loads.size and loads.min() <= 0:
            raise ValueError("trace loads must be positive")
        loads.setflags(write=False)
        object.__setattr__(self, "loads", loads)

    @property
    def num_epochs(self) -> int:
        return int(self.loads.shape[0])

    @property
    def num_sites(self) -> int:
        return int(self.loads.shape[1])

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"loads": self.loads.tolist()})

    @classmethod
    def from_json(cls, text: str) -> "LoadTrace":
        return cls(loads=np.asarray(json.loads(text)["loads"]))

    def to_csv(self) -> str:
        """One row per epoch; header names the site columns."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([f"site_{i}" for i in range(self.num_sites)])
        for row in self.loads:
            writer.writerow([f"{v:.9g}" for v in row])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "LoadTrace":
        rows = list(csv.reader(io.StringIO(text)))
        data = [[float(v) for v in row] for row in rows[1:] if row]
        return cls(loads=np.asarray(data))


def record_trace(
    sites: Sequence[Website],
    traffic: TrafficModel,
    epochs: int,
    seed: int = 0,
) -> LoadTrace:
    """Drive ``traffic`` for ``epochs`` and capture the load matrix.

    The sites are mutated exactly as a live simulation would mutate
    them; pass copies if the originals must stay pristine.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for epoch in range(epochs):
        traffic.step(sites, epoch, rng)
        rows.append([s.load for s in sites])
    return LoadTrace(loads=np.asarray(rows))


@dataclass
class ReplayTraffic:
    """A traffic model that replays a recorded trace verbatim.

    Epochs beyond the trace's length hold the final epoch's loads (a
    simulation can outlive its trace without crashing mid-experiment).
    """

    trace: LoadTrace

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        if len(sites) != self.trace.num_sites:
            raise ValueError(
                f"trace has {self.trace.num_sites} sites, cluster has "
                f"{len(sites)}"
            )
        row = self.trace.loads[min(epoch, self.trace.num_epochs - 1)]
        for site, load in zip(sites, row):
            site.set_load(float(load))
