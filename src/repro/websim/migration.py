"""Migration cost models.

"Moving websites from one server to another could incur substantial
cost" (Section 1).  These models decide what moving a site costs; the
unit model recovers the paper's ``k``-move problem, the others exercise
the arbitrary-cost variant (Section 3.2) and the PTAS (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .website import Website

__all__ = [
    "MigrationCostModel",
    "UnitCost",
    "BytesProportionalCost",
    "BandwidthCost",
]


class MigrationCostModel(Protocol):
    """Anything that prices the migration of one website."""

    def cost(self, site: Website) -> float:
        """Cost of migrating ``site`` to any other server."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class UnitCost:
    """Every migration costs 1 — the paper's move-count model."""

    def cost(self, site: Website) -> float:
        return 1.0


@dataclass(frozen=True)
class BytesProportionalCost:
    """Cost proportional to the site's content size.

    Models copying the site's data: a large media site is expensive to
    move, a small static page nearly free.
    """

    per_byte: float = 1.0

    def cost(self, site: Website) -> float:
        return self.per_byte * site.content_bytes


@dataclass(frozen=True)
class BandwidthCost:
    """Content bytes over a shared migration bandwidth, plus a fixed
    per-migration overhead (connection draining, DNS propagation)."""

    bandwidth: float = 100.0
    overhead: float = 0.1

    def cost(self, site: Website) -> float:
        return self.overhead + site.content_bytes / self.bandwidth
