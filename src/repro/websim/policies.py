"""Rebalancing policies for the web-cluster simulator.

A policy looks at the cluster's current snapshot (as a rebalancing
:class:`~repro.core.instance.Instance`) and returns the assignment to
migrate to.  Policies adapt the paper's algorithms and the baselines to
the epoch loop, under a per-epoch migration budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from ..core.assignment import Assignment
from ..core.engine import RebalanceEngine
from ..core.greedy import greedy_rebalance
from ..core.instance import Instance
from ..core.partition import m_partition_rebalance
from ..core.cost_partition import cost_partition_rebalance
from ..baselines.graham import lpt_rebalance
from ..baselines.local_search import hill_climb_rebalance

if TYPE_CHECKING:  # pragma: no cover - import cycle: service.loadgen uses websim
    from ..service.client import ServiceClient

__all__ = [
    "RebalancePolicy",
    "NoRebalance",
    "GreedyPolicy",
    "MPartitionPolicy",
    "EngineMPartitionPolicy",
    "CostPartitionPolicy",
    "FullRepackPolicy",
    "HillClimbPolicy",
    "ServicePolicy",
]


class RebalancePolicy(Protocol):
    """Decides the new placement for one epoch."""

    name: str

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        """Return the assignment the cluster should migrate to."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class NoRebalance:
    """Never migrate — the do-nothing control."""

    name: str = "none"

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return Assignment.initial(instance)


@dataclass(frozen=True)
class GreedyPolicy:
    """The paper's GREEDY with a per-epoch move budget ``k``."""

    k: int = 2
    name: str = "greedy"

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return greedy_rebalance(instance, self.k).assignment


@dataclass(frozen=True)
class MPartitionPolicy:
    """The paper's M-PARTITION with a per-epoch move budget ``k``."""

    k: int = 2
    name: str = "m-partition"

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return m_partition_rebalance(instance, self.k).assignment


@dataclass
class EngineMPartitionPolicy:
    """M-PARTITION served by a warm :class:`~repro.core.engine.RebalanceEngine`.

    Decision-for-decision identical to :class:`MPartitionPolicy` (the
    differential tests enforce it) but amortizes threshold tables across
    epochs and answers byte-identical snapshots from the decision cache.
    Stateful: :class:`~repro.websim.simulator.Simulation` deep-copies the
    policy per run, so the cache warms within a run and every run starts
    cold — repeated ``run()`` calls stay deterministic.
    """

    k: int = 2
    cache_size: int = 64
    name: str = "m-partition-engine"

    def __post_init__(self) -> None:
        self._engine = RebalanceEngine(k=self.k, cache_size=self.cache_size)

    @property
    def engine(self) -> RebalanceEngine:
        """The live engine (e.g. for reading cache statistics)."""
        return self._engine

    def reset(self) -> None:
        """Drop all warm state; the next decision starts cold."""
        self._engine.reset()

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return self._engine.rebalance(instance).assignment


@dataclass
class ServicePolicy:
    """M-PARTITION answered by a :mod:`repro.service` server over TCP.

    The policy's shard on the server owns a warm engine whose decisions
    are byte-identical to from-scratch M-PARTITION, so a simulation
    driven through the wire must match :class:`EngineMPartitionPolicy`
    in-process decision for decision (the differential test enforces
    it) — regardless of the transport: ``protocol="json"`` (v1 frames),
    ``protocol="binary"`` (v2 raw-buffer frames), or binary with
    ``delta=True`` (changed-site snapshots) all carry the same
    decisions.  The client socket is created lazily and is *not*
    deep-copied: :class:`~repro.websim.simulator.Simulation` deep-copies
    policies per run, and each copy opens its own connection (with its
    own delta bases) to the same server.
    """

    host: str
    port: int
    k: int = 2
    shard: str = "websim"
    timeout: float = 30.0
    retries: int = 3
    protocol: str = "json"
    delta: bool = False
    name: str = "service"

    def __post_init__(self) -> None:
        self._client: ServiceClient | None = None

    @property
    def client(self) -> ServiceClient:
        """The live blocking client (connects on first use)."""
        if self._client is None:
            # Lazy import: service.loadgen imports websim, so a
            # module-level import here would be circular.
            from ..service.client import ServiceClient

            self._client = ServiceClient(
                self.host, self.port,
                timeout=self.timeout, retries=self.retries,
                protocol=self.protocol, delta=self.delta,
            )
        return self._client

    def __deepcopy__(self, memo: dict) -> "ServicePolicy":
        return ServicePolicy(
            host=self.host, port=self.port, k=self.k, shard=self.shard,
            timeout=self.timeout, retries=self.retries,
            protocol=self.protocol, delta=self.delta, name=self.name,
        )

    def reset(self) -> None:
        """Drop the server-side shard state; the next decision starts
        cold (engine-contract: decisions are unchanged either way)."""
        self.client.reset(self.shard)

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return self.client.rebalance(
            instance, self.k, shard=self.shard
        ).assignment


@dataclass(frozen=True)
class CostPartitionPolicy:
    """The Section-3.2 weighted algorithm with a per-epoch migration
    *cost* budget (pairs with non-unit migration models)."""

    budget: float = 5.0
    alpha: float = 0.1
    name: str = "cost-partition"

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return cost_partition_rebalance(
            instance, self.budget, alpha=self.alpha
        ).assignment


@dataclass(frozen=True)
class FullRepackPolicy:
    """LPT from scratch every epoch — unbounded migrations."""

    name: str = "full-repack"

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return lpt_rebalance(instance).assignment


@dataclass(frozen=True)
class HillClimbPolicy:
    """Best-improvement hill climbing with a per-epoch move budget."""

    k: int = 2
    name: str = "hill-climb"

    def decide(self, instance: Instance, epoch: int) -> Assignment:
        return hill_climb_rebalance(instance, k=self.k).assignment
