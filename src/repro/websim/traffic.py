"""Synthetic traffic models.

Substitution note (see DESIGN.md): the paper's cited deployment (Linder
& Shah at Ensim) used production web traces we do not have.  These
models generate the standard published workload shapes for web serving —
Zipf site popularity, diurnal modulation, multiplicative random walks
and flash crowds — which exercise the identical rebalancing code path.

All models mutate site loads in place, epoch by epoch, through a seeded
``numpy.random.Generator`` for full reproducibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from .website import Website

__all__ = [
    "TrafficModel",
    "StaticZipf",
    "DiurnalTraffic",
    "RandomWalkTraffic",
    "FlashCrowdTraffic",
    "ComposedTraffic",
    "make_traffic",
    "zipf_popularities",
]

TRAFFIC_KINDS = ("static", "diurnal", "random-walk", "flash",
                 "diurnal+flash")


def make_traffic(kind: str, *, flash_probability: float = 0.1
                 ) -> "TrafficModel":
    """Build a traffic model from its declarative name.

    This is the traffic axis of the scenario catalog
    (:mod:`repro.scenarios`): scenarios name a kind instead of
    constructing model objects, so a record file's ``axes.traffic``
    fully documents what drove the load.
    """
    if kind == "static":
        return StaticZipf()
    if kind == "diurnal":
        return DiurnalTraffic()
    if kind == "random-walk":
        return RandomWalkTraffic()
    if kind == "flash":
        return FlashCrowdTraffic(probability=flash_probability)
    if kind == "diurnal+flash":
        return ComposedTraffic(
            (DiurnalTraffic(),
             FlashCrowdTraffic(probability=flash_probability))
        )
    raise ValueError(
        f"unknown traffic kind {kind!r}; valid kinds: "
        f"{', '.join(TRAFFIC_KINDS)}"
    )


def zipf_popularities(
    num_sites: int, exponent: float = 1.0, scale: float = 100.0
) -> np.ndarray:
    """Zipf popularity weights: site ``r`` gets ``scale / (r+1)^exponent``.

    The classical fit for website popularity distributions.
    """
    ranks = np.arange(1, num_sites + 1, dtype=np.float64)
    return scale / ranks**exponent


class TrafficModel(Protocol):
    """Anything that advances site loads by one epoch."""

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        """Mutate ``site.load`` for the new epoch."""
        ...  # pragma: no cover


@dataclass
class StaticZipf:
    """Loads pinned to base popularity plus small multiplicative noise."""

    noise: float = 0.05

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        for site in sites:
            factor = 1.0 + self.noise * float(rng.standard_normal())
            site.set_load(site.base_popularity * max(factor, 0.05))


@dataclass
class DiurnalTraffic:
    """Sinusoidal day/night modulation with per-site phase offsets.

    Sites peak at different times (think geographic audiences), so the
    *relative* load across servers keeps shifting — the drift that makes
    periodic rebalancing necessary.
    """

    period: int = 24
    amplitude: float = 0.6
    noise: float = 0.05
    _phases: np.ndarray | None = field(default=None, repr=False)

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        if self._phases is None or self._phases.shape[0] != len(sites):
            self._phases = rng.uniform(0.0, 2.0 * math.pi, size=len(sites))
        omega = 2.0 * math.pi * epoch / self.period
        for site, phase in zip(sites, self._phases):
            swing = 1.0 + self.amplitude * math.sin(omega + float(phase))
            factor = swing * (1.0 + self.noise * float(rng.standard_normal()))
            site.set_load(site.base_popularity * max(factor, 0.05))


@dataclass
class RandomWalkTraffic:
    """Multiplicative random walk with mean reversion toward the base
    popularity — slow organic drift."""

    volatility: float = 0.1
    reversion: float = 0.05

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        for site in sites:
            shock = math.exp(self.volatility * float(rng.standard_normal()))
            drifted = site.load * shock
            target = site.base_popularity
            site.set_load(drifted + self.reversion * (target - drifted))


@dataclass
class FlashCrowdTraffic:
    """Occasional flash crowds: a random site's load spikes by a large
    factor, then decays geometrically over subsequent epochs."""

    probability: float = 0.1
    spike_factor: float = 10.0
    decay: float = 0.5
    _boost: dict[int, float] = field(default_factory=dict, repr=False)

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        # Decay existing crowds.
        for sid in list(self._boost):
            self._boost[sid] *= self.decay
            if self._boost[sid] < 1.05:
                del self._boost[sid]
        # Maybe start a new one.
        if sites and rng.random() < self.probability:
            victim = int(rng.integers(0, len(sites)))
            self._boost[victim] = self.spike_factor
        for site in sites:
            boost = self._boost.get(site.site_id, 1.0)
            site.set_load(site.base_popularity * boost)


@dataclass
class ComposedTraffic:
    """Apply several models in sequence (later models see the loads the
    earlier ones produced via ``site.load``).

    Note: models that assign from ``base_popularity`` overwrite their
    predecessors; compose base-driven models first, multiplicative ones
    after.
    """

    models: tuple[TrafficModel, ...]

    def step(
        self, sites: Sequence[Website], epoch: int, rng: np.random.Generator
    ) -> None:
        for model in self.models:
            model.step(sites, epoch, rng)
