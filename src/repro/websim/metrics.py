"""Imbalance and fairness metrics for the web-cluster simulator."""

from __future__ import annotations

import numpy as np

__all__ = ["imbalance_ratio", "coefficient_of_variation", "jain_fairness"]


def imbalance_ratio(loads: np.ndarray) -> float:
    """Max load over mean load; 1.0 means perfectly balanced.

    The per-epoch analogue of the paper's approximation ratio relative
    to the average-load lower bound.
    """
    loads = np.asarray(loads, dtype=np.float64)
    mean = float(loads.mean())
    if mean == 0.0:
        return 1.0
    return float(loads.max()) / mean


def coefficient_of_variation(loads: np.ndarray) -> float:
    """Standard deviation over mean of the server loads."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = float(loads.mean())
    if mean == 0.0:
        return 0.0
    return float(loads.std()) / mean


def jain_fairness(loads: np.ndarray) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``; 1.0 is
    perfectly fair, ``1/n`` maximally unfair."""
    loads = np.asarray(loads, dtype=np.float64)
    denom = loads.shape[0] * float((loads**2).sum())
    if denom == 0.0:
        return 1.0
    return float(loads.sum()) ** 2 / denom
