"""Web-server cluster state.

A :class:`Cluster` holds websites, their placement on servers, and the
bridge to the rebalancing library: :meth:`Cluster.to_instance` snapshots
the current loads and placement as a :class:`repro.core.Instance`, and
:meth:`Cluster.apply_assignment` migrates sites according to a solver's
answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance
from .migration import MigrationCostModel, UnitCost
from .website import Website

__all__ = ["Cluster"]

# Zero-load sites are clamped to this when snapshotting: small enough
# never to influence a rebalancing decision, positive so the Instance
# invariant (strictly positive sizes) holds.
_MIN_SITE_LOAD = 1e-12


@dataclass
class Cluster:
    """Websites placed on servers."""

    sites: list[Website]
    num_servers: int
    placement: np.ndarray  # site -> server
    migration_model: MigrationCostModel = field(default_factory=UnitCost)

    def __post_init__(self) -> None:
        self.placement = np.asarray(self.placement, dtype=np.int64).copy()
        if self.placement.shape != (len(self.sites),):
            raise ValueError("placement must map every site to a server")
        if len(self.sites) and (
            self.placement.min() < 0 or self.placement.max() >= self.num_servers
        ):
            raise ValueError("placement refers to unknown servers")

    # ------------------------------------------------------------------
    @classmethod
    def place_round_robin(
        cls,
        sites: list[Website],
        num_servers: int,
        migration_model: MigrationCostModel | None = None,
    ) -> "Cluster":
        """Initial placement: sites dealt round-robin across servers —
        balanced by count, typically unbalanced by load."""
        placement = np.arange(len(sites), dtype=np.int64) % num_servers
        return cls(
            sites=sites,
            num_servers=num_servers,
            placement=placement,
            migration_model=migration_model or UnitCost(),
        )

    # ------------------------------------------------------------------
    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def loads(self) -> np.ndarray:
        """Per-server total load under the current placement."""
        out = np.zeros(self.num_servers)
        np.add.at(out, self.placement, [s.load for s in self.sites])
        return out

    def makespan(self) -> float:
        """The hottest server's load."""
        return float(self.loads().max()) if self.num_servers else 0.0

    def to_instance(self) -> Instance:
        """Snapshot the cluster as a rebalancing instance.

        Job sizes are current site loads; relocation costs come from the
        migration cost model.  A site whose traffic decayed to zero (or
        that a custom traffic model drove negative, bypassing
        :meth:`Website.set_load`) is clamped to a tiny positive load:
        :class:`~repro.core.instance.Instance` requires strictly
        positive sizes, and a dead site must stay placeable rather than
        crash the epoch loop.
        """
        sizes = np.array([s.load for s in self.sites])
        sizes = np.maximum(sizes, _MIN_SITE_LOAD)
        costs = np.array(
            [self.migration_model.cost(s) for s in self.sites]
        )
        return Instance(
            sizes=sizes,
            costs=costs,
            num_processors=self.num_servers,
            initial=self.placement,
        )

    def apply_assignment(self, assignment: Assignment) -> tuple[int, float]:
        """Migrate sites per ``assignment``.

        Returns ``(migrations, migration_cost)`` actually incurred.
        The assignment must have been computed against a snapshot with
        the same site order and server count.
        """
        if assignment.instance.num_jobs != self.num_sites:
            raise ValueError("assignment was computed for a different cluster")
        moved = assignment.mapping != self.placement
        cost = float(
            sum(
                self.migration_model.cost(self.sites[i])
                for i in np.flatnonzero(moved)
            )
        )
        self.placement = np.asarray(assignment.mapping, dtype=np.int64).copy()
        return int(moved.sum()), cost
