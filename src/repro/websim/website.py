"""Website model for the web-cluster simulator.

Section 1 of the paper motivates load rebalancing with web servers
hosting (virtual) websites whose observed load drifts over time.  A
:class:`Website` couples a base popularity weight with a mutable
current load; the traffic models in :mod:`repro.websim.traffic` evolve
the loads epoch by epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Website"]


@dataclass
class Website:
    """One website hosted somewhere in the cluster.

    Attributes
    ----------
    site_id:
        Stable identifier (index into the cluster's site list).
    base_popularity:
        Long-run popularity weight (e.g. a Zipf weight); traffic models
        modulate around it.
    content_bytes:
        Size of the site's content; migration cost models can charge
        proportionally to it.
    load:
        Current observed load (requests/sec equivalent); strictly
        positive so a site always contributes to its server's load.
    """

    site_id: int
    base_popularity: float
    content_bytes: float = 1.0
    load: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.base_popularity <= 0:
            raise ValueError("base_popularity must be positive")
        if self.content_bytes <= 0:
            raise ValueError("content_bytes must be positive")
        if self.load == 0.0:
            self.load = self.base_popularity

    def set_load(self, load: float) -> None:
        """Update the current load (floored at a tiny positive value so
        instances built from the cluster stay valid)."""
        self.load = max(load, 1e-9)
