"""Epoch-driven web-cluster rebalancing simulation.

The loop the paper's introduction describes: traffic shifts, the
operator observes per-site loads, relocates a bounded number of sites,
and the cycle repeats.  Experiment E6 runs this loop under every policy
and compares the makespan trajectories.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from .cluster import Cluster
from .metrics import coefficient_of_variation, imbalance_ratio, jain_fairness
from .policies import RebalancePolicy
from .traffic import TrafficModel
from .website import Website
from .migration import MigrationCostModel, UnitCost

__all__ = [
    "EpochRecord",
    "SimulationResult",
    "Simulation",
    "build_cluster",
    "run_many",
]


@dataclass(frozen=True)
class EpochRecord:
    """Measurements from one epoch (after migration)."""

    epoch: int
    makespan: float
    average_load: float
    imbalance: float
    cv: float
    fairness: float
    migrations: int
    migration_cost: float
    pre_makespan: float  # before this epoch's migrations
    decide_seconds: float = 0.0  # policy.decide wall clock
    migrate_seconds: float = 0.0  # apply_assignment wall clock


@dataclass
class SimulationResult:
    """Full trajectory of one simulation run."""

    policy: str
    records: list[EpochRecord] = field(default_factory=list)

    @property
    def mean_makespan(self) -> float:
        return float(np.mean([r.makespan for r in self.records]))

    @property
    def peak_makespan(self) -> float:
        return float(np.max([r.makespan for r in self.records]))

    @property
    def mean_imbalance(self) -> float:
        return float(np.mean([r.imbalance for r in self.records]))

    @property
    def total_migrations(self) -> int:
        return int(sum(r.migrations for r in self.records))

    @property
    def total_migration_cost(self) -> float:
        return float(sum(r.migration_cost for r in self.records))

    def summary(self) -> dict:
        return {
            "policy": self.policy,
            "mean_makespan": self.mean_makespan,
            "peak_makespan": self.peak_makespan,
            "mean_imbalance": self.mean_imbalance,
            "total_migrations": self.total_migrations,
            "total_migration_cost": self.total_migration_cost,
        }


def build_cluster(
    num_sites: int,
    num_servers: int,
    rng: np.random.Generator,
    zipf_exponent: float = 0.9,
    migration_model: MigrationCostModel | None = None,
) -> Cluster:
    """A cluster of Zipf-popular sites placed round-robin.

    Content sizes are lognormal so byte-proportional migration models
    see realistic heterogeneity.
    """
    from .traffic import zipf_popularities

    pops = zipf_popularities(num_sites, exponent=zipf_exponent)
    sites = [
        Website(
            site_id=i,
            base_popularity=float(pops[i]),
            content_bytes=float(np.exp(rng.normal(3.0, 1.0))),
        )
        for i in range(num_sites)
    ]
    return Cluster.place_round_robin(
        sites, num_servers, migration_model=migration_model or UnitCost()
    )


@dataclass
class Simulation:
    """One policy driving one cluster under one traffic model."""

    cluster: Cluster
    traffic: TrafficModel
    policy: RebalancePolicy
    seed: int = 0

    def run(self, epochs: int) -> SimulationResult:
        """Run the epoch loop and collect a full trajectory.

        The simulation operates on deep copies of the cluster, the
        traffic model *and the policy*, so ``self.cluster`` /
        ``self.traffic`` / ``self.policy`` stay in their constructed
        state and repeated ``run()`` calls produce identical
        trajectories (the RNG is re-seeded *and* every piece of mutable
        state it drives starts from the same point each time).  Copying
        the policy matters for stateful ones — an engine-backed policy
        warms its caches within a run; without the copy a second
        ``run()`` would start from the first run's internal state and
        any policy whose decisions depend on its history would diverge.
        """
        rng = np.random.default_rng(self.seed)
        cluster = copy.deepcopy(self.cluster)
        traffic = copy.deepcopy(self.traffic)
        policy = copy.deepcopy(self.policy)
        result = SimulationResult(policy=policy.name)
        for epoch in range(epochs):
            traffic.step(cluster.sites, epoch, rng)
            pre_makespan = cluster.makespan()
            instance = cluster.to_instance()
            t0 = time.perf_counter()
            assignment = policy.decide(instance, epoch)
            t1 = time.perf_counter()
            migrations, cost = cluster.apply_assignment(assignment)
            t2 = time.perf_counter()
            telemetry.record("websim.decide", t1 - t0)
            telemetry.record("websim.migrate", t2 - t1)
            loads = cluster.loads()
            result.records.append(
                EpochRecord(
                    epoch=epoch,
                    makespan=float(loads.max()),
                    average_load=float(loads.mean()),
                    imbalance=imbalance_ratio(loads),
                    cv=coefficient_of_variation(loads),
                    fairness=jain_fairness(loads),
                    migrations=migrations,
                    migration_cost=cost,
                    pre_makespan=pre_makespan,
                    decide_seconds=t1 - t0,
                    migrate_seconds=t2 - t1,
                )
            )
        return result


def _run_one_simulation(payload: tuple[Simulation, int]) -> SimulationResult:
    sim, epochs = payload
    return sim.run(epochs)


def run_many(
    sims: list[Simulation], epochs: int, *, workers: int | None = 1
) -> list[SimulationResult]:
    """Run independent simulations, optionally across worker processes.

    Results come back in the order of ``sims`` and are identical to
    calling ``sim.run(epochs)`` serially (each run deep-copies its own
    state, so runs share nothing).  ``workers=None`` uses every core;
    ``workers=1`` (default) runs inline.
    """
    from ..parallel import run_sweep

    return run_sweep(
        _run_one_simulation,
        [(sim, epochs) for sim in sims],
        workers=workers,
    )
