"""Web-cluster rebalancing simulator — the paper's motivating scenario.

Websites with drifting loads live on web servers; each epoch a policy
may migrate a bounded number of sites (or a bounded migration cost) to
re-minimize the hottest server's load.  See DESIGN.md for the
substitution rationale (synthetic Zipf/diurnal/flash-crowd traffic in
place of the unavailable production traces).
"""

from .cluster import Cluster
from .metrics import coefficient_of_variation, imbalance_ratio, jain_fairness
from .migration import (
    BandwidthCost,
    BytesProportionalCost,
    MigrationCostModel,
    UnitCost,
)
from .policies import (
    CostPartitionPolicy,
    EngineMPartitionPolicy,
    FullRepackPolicy,
    GreedyPolicy,
    HillClimbPolicy,
    MPartitionPolicy,
    NoRebalance,
    RebalancePolicy,
    ServicePolicy,
)
from .trace import LoadTrace, ReplayTraffic, record_trace
from .simulator import (
    EpochRecord,
    Simulation,
    SimulationResult,
    build_cluster,
    run_many,
)
from .traffic import (
    ComposedTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    RandomWalkTraffic,
    StaticZipf,
    TrafficModel,
    make_traffic,
    zipf_popularities,
)
from .website import Website

__all__ = [
    "BandwidthCost",
    "BytesProportionalCost",
    "Cluster",
    "ComposedTraffic",
    "CostPartitionPolicy",
    "DiurnalTraffic",
    "EngineMPartitionPolicy",
    "EpochRecord",
    "FlashCrowdTraffic",
    "FullRepackPolicy",
    "GreedyPolicy",
    "HillClimbPolicy",
    "MPartitionPolicy",
    "MigrationCostModel",
    "NoRebalance",
    "RandomWalkTraffic",
    "RebalancePolicy",
    "LoadTrace",
    "ReplayTraffic",
    "Simulation",
    "ServicePolicy",
    "SimulationResult",
    "StaticZipf",
    "TrafficModel",
    "UnitCost",
    "Website",
    "coefficient_of_variation",
    "imbalance_ratio",
    "jain_fairness",
    "build_cluster",
    "run_many",
    "record_trace",
    "make_traffic",
    "zipf_popularities",
]
