"""Shmoys–Tardos LP rounding for generalized assignment (GAP).

Section 2 of the paper reduces load rebalancing to GAP: assigning job
``i`` to its home machine costs 0, to any other machine costs ``c_i``,
and the goal is minimum makespan within a cost budget.  "By the results
of Shmoys and Tardos [14], we obtain a 2-approximation algorithm for
load rebalancing."  This module implements that pipeline — the known
baseline the paper's 1.5-approximation and PTAS improve on:

1. **Binary search** over the target makespan ``T``.
2. **LP** (scipy/HiGHS): fractional assignment ``x[i, j] >= 0`` with
   ``sum_j x[i, j] = 1``, machine loads at most ``T``, ``x[i, j] = 0``
   whenever ``s_i > T``, minimizing total relocation cost.  ``T`` is
   feasible when the LP optimum is within the budget.
3. **Slot rounding** [Shmoys & Tardos 1993]: machine ``j`` gets
   ``ceil(sum_i x[i, j])`` slots; its fractional jobs, sorted by
   non-increasing size, are poured into the slots one unit at a time.
   The resulting bipartite job/slot graph carries a fractional perfect
   matching of cost equal to the LP optimum, so an integral min-cost
   perfect matching (computed via ``networkx`` min-cost flow, which is
   integral on integral capacities) costs no more.  Each machine's
   slots then hold at most one job each, giving makespan at most
   ``T + max_i s_i <= 2 T``.

The end-to-end guarantee: relocation cost at most ``B`` and makespan at
most ``2 * (1 + tol)`` times the optimal makespan within budget.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from .. import telemetry
from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.result import RebalanceResult

__all__ = ["shmoys_tardos_rebalance", "solve_fractional_lp", "round_fractional"]

_COST_SCALE = 10**6  # networkx min-cost flow wants integer weights


def solve_fractional_lp(
    instance: Instance,
    target: float,
    allowed: tuple[frozenset[int], ...] | None = None,
) -> tuple[float, np.ndarray] | None:
    """Minimum-cost fractional assignment with loads at most ``target``.

    Returns ``(cost, x)`` with ``x`` of shape ``(n, m)``, or ``None``
    when no fractional assignment fits (some job exceeds ``target`` on
    every machine, or the loads cannot fit).

    ``allowed`` restricts each job to a machine subset (the Constrained
    Load Rebalancing model of Corollary 1); forbidden pairs are priced
    out of the LP entirely.
    """
    n = instance.num_jobs
    m = instance.num_processors
    if n == 0:
        return 0.0, np.zeros((0, m))
    if instance.max_size > target + 1e-12:
        return None

    _FORBIDDEN = 1e9
    nv = n * m
    c = np.empty(nv)
    for i in range(n):
        h = int(instance.initial[i])
        for j in range(m):
            if allowed is not None and j not in allowed[i]:
                c[i * m + j] = _FORBIDDEN
            else:
                c[i * m + j] = 0.0 if j == h else float(instance.costs[i])

    a_eq = np.zeros((n, nv))
    for i in range(n):
        a_eq[i, i * m : (i + 1) * m] = 1.0
    b_eq = np.ones(n)

    a_ub = np.zeros((m, nv))
    for j in range(m):
        for i in range(n):
            a_ub[j, i * m + j] = instance.sizes[i]
    b_ub = np.full(m, target)

    res = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
        bounds=(0.0, 1.0), method="highs",
    )
    if not res.success:
        return None
    return float(res.fun), res.x.reshape(n, m)


def round_fractional(instance: Instance, x: np.ndarray) -> np.ndarray:
    """Shmoys–Tardos slot rounding of a fractional assignment.

    Returns an integral job-to-machine mapping whose total relocation
    cost does not exceed the fractional cost (up to the integer weight
    scaling) and whose per-machine load exceeds the fractional load by
    less than one job.
    """
    n, m = x.shape
    graph = nx.DiGraph()
    graph.add_node("src")
    graph.add_node("sink")
    for i in range(n):
        graph.add_edge("src", ("job", i), capacity=1, weight=0)

    for j in range(m):
        jobs = [i for i in range(n) if x[i, j] > 1e-9]
        jobs.sort(key=lambda i: (-instance.sizes[i], i))
        slot = 0
        cap = 1.0
        slots_used = set()
        for i in jobs:
            frac = float(x[i, j])
            while frac > 1e-9:
                take = min(frac, cap)
                home = int(instance.initial[i])
                move_cost = 0.0 if j == home else float(instance.costs[i])
                graph.add_edge(
                    ("job", i),
                    ("slot", j, slot),
                    capacity=1,
                    weight=int(round(move_cost * _COST_SCALE)),
                )
                slots_used.add(slot)
                frac -= take
                cap -= take
                if cap <= 1e-9:
                    slot += 1
                    cap = 1.0
        for s in slots_used:
            graph.add_edge(("slot", j, s), "sink", capacity=1, weight=0)

    graph.nodes["src"]["demand"] = -n
    graph.nodes["sink"]["demand"] = n
    flow = nx.min_cost_flow(graph)

    mapping = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for node, amount in flow[("job", i)].items():
            if amount >= 1:
                mapping[i] = node[1]
                break
    assert (mapping >= 0).all(), "rounding failed to place every job"
    return mapping


def shmoys_tardos_rebalance(
    instance: Instance,
    budget: float | None = None,
    k: int | None = None,
    tol: float = 1e-3,
    max_iterations: int = 60,
    allowed: tuple[frozenset[int], ...] | None = None,
    **_: object,
) -> RebalanceResult:
    """The full 2-approximation pipeline under a relocation budget.

    ``k`` on a unit-cost instance is interpreted as ``budget = k``
    (their optima coincide for the LP's cost objective).  Note the
    *integral* solution may then move up to ``k`` jobs' worth of cost
    but never more.

    With ``allowed`` this becomes the 2-approximation for Constrained
    Load Rebalancing the paper cites as the best known upper bound
    (Corollary 1 shows nothing below 1.5 is possible).
    """
    if budget is None:
        if k is None:
            raise ValueError("need a budget (or k on a unit-cost instance)")
        budget = float(k)
    lo = max(instance.average_load, instance.max_size)
    hi = instance.initial_makespan
    if hi <= lo:
        lo = hi  # already as balanced as structurally possible

    # Identity check: the initial assignment always costs 0.
    best_t = hi
    best_lp = (0.0, None)

    tmark = telemetry.mark()
    iterations = 0
    lp_solves = 0
    while hi - lo > tol * max(1.0, lo) and iterations < max_iterations:
        iterations += 1
        mid = 0.5 * (lo + hi)
        with telemetry.span("shmoys_tardos.lp"):
            solved = solve_fractional_lp(instance, mid, allowed=allowed)
        lp_solves += 1
        if solved is not None and solved[0] <= budget + 1e-7 * max(1.0, budget):
            best_t = mid
            best_lp = solved
            hi = mid
        else:
            lo = mid

    if best_lp[1] is None:
        with telemetry.span("shmoys_tardos.lp"):
            solved = solve_fractional_lp(instance, best_t, allowed=allowed)
        lp_solves += 1
        assert solved is not None and solved[0] <= budget + 1e-6 * max(1.0, budget)
        best_lp = solved
    telemetry.count("lp_solves", lp_solves)
    lp_cost, x = best_lp
    with telemetry.span("shmoys_tardos.round"):
        mapping = round_fractional(instance, x)
    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(budget=budget * (1.0 + 1e-6) + 1e-9)
    return RebalanceResult(
        assignment=assignment,
        algorithm="shmoys-tardos",
        guessed_opt=best_t,
        planned_cost=lp_cost,
        meta=telemetry.attach(
            {"lp_cost": lp_cost, "iterations": iterations}, tmark
        ),
    )
