"""Baselines the paper positions its algorithms against.

* :mod:`repro.baselines.graham` — Graham list scheduling / LPT from
  scratch (classical load balancing; unbounded moves);
* :mod:`repro.baselines.shmoys_tardos` — the known 2-approximation for
  the GAP reduction of Section 2 (LP + slot rounding);
* :mod:`repro.baselines.local_search` — best-improvement hill climbing
  under a move budget (the natural engineering baseline);
* :mod:`repro.baselines.random_moves` — random relocation control;
* :mod:`repro.baselines.diffusion` — diffusive balancing on a proximity
  graph (Hu et al., related work in Section 1).

Importing this package registers every baseline with
:func:`repro.core.rebalance` under the names ``"lpt-full"``,
``"shmoys-tardos"``, ``"hill-climb"``, ``"random"`` and
``"diffusion"``.
"""

from ..core.solvers import register_algorithm
from .diffusion import default_topology, diffusive_rebalance
from .graham import list_schedule, lpt_rebalance, lpt_schedule
from .local_search import hill_climb_rebalance
from .random_moves import random_rebalance
from .shmoys_tardos import (
    round_fractional,
    shmoys_tardos_rebalance,
    solve_fractional_lp,
)

for _name, _fn in [
    ("lpt-full", lpt_rebalance),
    ("shmoys-tardos", shmoys_tardos_rebalance),
    ("hill-climb", hill_climb_rebalance),
    ("random", random_rebalance),
    ("diffusion", diffusive_rebalance),
]:
    try:
        register_algorithm(_name, _fn)
    except ValueError:
        pass  # idempotent re-import

__all__ = [
    "default_topology",
    "diffusive_rebalance",
    "hill_climb_rebalance",
    "list_schedule",
    "lpt_rebalance",
    "lpt_schedule",
    "random_rebalance",
    "round_fractional",
    "shmoys_tardos_rebalance",
    "solve_fractional_lp",
]
