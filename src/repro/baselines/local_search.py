"""Local-search rebalancing baselines.

Practical systems often rebalance with hill climbing: repeatedly apply
the single job move that most reduces the makespan until the budget is
exhausted or no move helps.  The paper's algorithms dominate this in
the worst case (hill climbing has no constant-factor guarantee under a
move budget), but it is the natural engineering baseline for the
head-to-head experiment (E9).
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.result import RebalanceResult

__all__ = ["hill_climb_rebalance"]


def _best_single_move(
    instance: Instance, loads: np.ndarray, mapping: np.ndarray
) -> tuple[int, int, float] | None:
    """The single job move that minimizes the resulting makespan.

    Only moves off a currently maximum-loaded processor can reduce the
    makespan, so the scan is restricted to those jobs.  Returns
    ``(job, target, new_makespan)`` or ``None`` if no move strictly
    improves.
    """
    if loads.shape[0] < 2:
        return None
    makespan = float(loads.max())
    donors = np.flatnonzero(loads == makespan)
    best: tuple[int, int, float] | None = None
    for d in donors:
        jobs = np.flatnonzero(mapping == d)
        for j in jobs:
            size = float(instance.sizes[j])
            # For a fixed job the least-loaded other processor is the
            # best target (everything else is unchanged).
            order = np.argsort(loads, kind="stable")
            p = int(order[0]) if order[0] != d else int(order[1])
            rest = loads.copy()
            rest[d] = makespan - size
            rest[p] += size
            peak = float(rest.max())
            if peak < makespan - 1e-12 and (best is None or peak < best[2]):
                best = (int(j), int(p), peak)
    return best


def hill_climb_rebalance(
    instance: Instance,
    k: int | None = None,
    budget: float | None = None,
    **_: object,
) -> RebalanceResult:
    """Best-improvement hill climbing under a move (or cost) budget.

    Each step applies the single relocation that most reduces the
    makespan; stops when the budget is spent or at a local optimum.
    """
    mapping = np.array(instance.initial, dtype=np.int64)
    loads = np.array(instance.initial_loads, dtype=np.float64)
    moves = 0
    cost = 0.0
    steps = 0
    while True:
        if k is not None and moves >= k:
            break
        found = _best_single_move(instance, loads, mapping)
        if found is None:
            break
        j, p, _ = found
        if budget is not None and cost + float(instance.costs[j]) > budget + 1e-12:
            break
        d = int(mapping[j])
        loads[d] -= instance.sizes[j]
        loads[p] += instance.sizes[j]
        mapping[j] = p
        moves += 1
        cost += float(instance.costs[j])
        steps += 1
    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(max_moves=k, budget=budget)
    return RebalanceResult(
        assignment=assignment,
        algorithm="hill-climb",
        planned_moves=moves,
        planned_cost=cost,
        meta={"steps": steps},
    )
