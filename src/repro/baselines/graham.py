"""Graham's classical multiprocessor scheduling heuristics.

The paper's GREEDY (Section 2) is "a simple variant of Graham's greedy
algorithm for makespan" [Graham 1966].  This module provides the
originals, both as substrates (list scheduling / LPT over bare sizes)
and wrapped as *from-scratch* rebalancers that ignore the initial
assignment — the natural upper-envelope baseline: what you could do
with an unbounded move budget, at the price of moving almost
everything.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.result import RebalanceResult

__all__ = ["list_schedule", "lpt_schedule", "lpt_rebalance"]


def list_schedule(
    sizes: Sequence[float], num_processors: int, order: Sequence[int] | None = None
) -> np.ndarray:
    """Graham list scheduling: place each job, in ``order``, on the
    processor with the smallest current load.

    Returns the job-to-processor mapping.  Guarantees makespan at most
    ``(2 - 1/m) * OPT`` for any order [Graham 1966].
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    n = sizes_arr.shape[0]
    if order is None:
        order = range(n)
    mapping = np.zeros(n, dtype=np.int64)
    heap = [(0.0, p) for p in range(num_processors)]
    heapq.heapify(heap)
    for j in order:
        load, p = heapq.heappop(heap)
        mapping[j] = p
        heapq.heappush(heap, (load + float(sizes_arr[j]), p))
    return mapping


def lpt_schedule(sizes: Sequence[float], num_processors: int) -> np.ndarray:
    """Longest Processing Time first: list scheduling in non-increasing
    size order; makespan at most ``(4/3 - 1/(3m)) * OPT`` [Graham 1969].
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    order = sorted(range(sizes_arr.shape[0]), key=lambda j: (-sizes_arr[j], j))
    return list_schedule(sizes_arr, num_processors, order)


def lpt_rebalance(
    instance: Instance,
    k: int | None = None,
    budget: float | None = None,
    **_: object,
) -> RebalanceResult:
    """Repack everything with LPT, ignoring the move budget.

    This is the paper's implicit "classical load balancing" comparison:
    near-optimal makespan, but the number of moved jobs is unbounded
    (typically almost ``n``).  Budget arguments are accepted for
    dispatch compatibility and recorded as violated when exceeded.
    """
    mapping = lpt_schedule(instance.sizes, instance.num_processors)
    assignment = Assignment(instance=instance, mapping=mapping)
    meta: dict = {"ignores_budget": True}
    if k is not None:
        meta["move_budget_violated"] = assignment.num_moves > k
    if budget is not None:
        meta["cost_budget_violated"] = assignment.relocation_cost > budget
    return RebalanceResult(
        assignment=assignment, algorithm="lpt-full", meta=meta
    )
