"""Diffusive load balancing on a processor proximity graph.

Section 1 of the paper cites Hu, Blake and Emerson's diffusive
technique for load balancing with *nearby* migrations.  This module
implements first-order diffusion as a related-work baseline: processors
are vertices of a proximity graph; each round every edge carries a flow
proportional to the load gradient across it, realized by migrating
individual jobs (smallest first, so the flow is matched as closely as
the job granularity allows).

Unlike the paper's algorithms, diffusion bounds *where* jobs may move
(neighbors only), not *how many* move; the optional ``k`` budget caps
total migrations so it can be compared under the paper's model.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.result import RebalanceResult

__all__ = ["diffusive_rebalance", "default_topology"]


def default_topology(num_processors: int, kind: str = "ring") -> nx.Graph:
    """Standard proximity graphs: ``"ring"``, ``"grid"`` (near-square),
    ``"star"`` or ``"complete"``."""
    if kind == "ring":
        return nx.cycle_graph(num_processors)
    if kind == "complete":
        return nx.complete_graph(num_processors)
    if kind == "star":
        return nx.star_graph(num_processors - 1)
    if kind == "grid":
        rows = int(np.floor(np.sqrt(num_processors)))
        while num_processors % rows:
            rows -= 1
        g = nx.grid_2d_graph(rows, num_processors // rows)
        return nx.convert_node_labels_to_integers(g, ordering="sorted")
    raise ValueError(f"unknown topology {kind!r}")


def diffusive_rebalance(
    instance: Instance,
    k: int | None = None,
    budget: float | None = None,
    graph: nx.Graph | None = None,
    rounds: int = 8,
    alpha: float | None = None,
    **_: object,
) -> RebalanceResult:
    """First-order diffusion with job-granularity flows.

    Parameters
    ----------
    graph:
        Proximity graph on ``range(m)``; defaults to a ring.
    rounds:
        Diffusion sweeps to run.
    alpha:
        Diffusion coefficient; defaults to ``1 / (1 + max_degree)``,
        which keeps the iteration stable (non-negative diagonal of the
        diffusion matrix).
    k / budget:
        Optional migration budgets; diffusion stops when either is hit.
    """
    m = instance.num_processors
    if graph is None:
        graph = default_topology(m)
    if set(graph.nodes) != set(range(m)):
        raise ValueError("graph nodes must be exactly range(num_processors)")
    if alpha is None:
        max_deg = max((d for _, d in graph.degree), default=0)
        alpha = 1.0 / (1.0 + max_deg) if max_deg else 0.0

    mapping = np.array(instance.initial, dtype=np.int64)
    loads = np.array(instance.initial_loads, dtype=np.float64)
    # Per-processor job pools, smallest last (pop the smallest first so
    # flows can be matched at fine granularity).
    pools: list[list[int]] = [[] for _ in range(m)]
    for j in range(instance.num_jobs):
        pools[int(mapping[j])].append(j)
    for pool in pools:
        pool.sort(key=lambda j: (-instance.sizes[j], j))

    moves = 0
    cost = 0.0
    for _ in range(rounds):
        snapshot = loads.copy()
        for u, v in sorted(graph.edges):
            gap = float(snapshot[u] - snapshot[v])
            donor, recv = (u, v) if gap > 0 else (v, u)
            want = alpha * abs(gap)
            sent = 0.0
            while pools[donor] and sent < want:
                j = pools[donor][-1]  # smallest job
                size = float(instance.sizes[j])
                if sent + size > want + 0.5 * size:
                    break  # overshoot would exceed half a job
                if k is not None and moves >= k:
                    break
                if budget is not None and cost + instance.costs[j] > budget + 1e-12:
                    break
                pools[donor].pop()
                pools[recv].append(j)
                pools[recv].sort(key=lambda q: (-instance.sizes[q], q))
                mapping[j] = recv
                loads[donor] -= size
                loads[recv] += size
                sent += size
                # A job returning home cancels its own earlier move, so
                # recompute the budgets from the mapping.
                displaced = mapping != instance.initial
                moves = int(displaced.sum())
                cost = float(instance.costs[displaced].sum())
    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(max_moves=k, budget=budget)
    return RebalanceResult(
        assignment=assignment,
        algorithm="diffusion",
        planned_moves=assignment.num_moves,
        meta={"rounds": rounds, "alpha": alpha},
    )
