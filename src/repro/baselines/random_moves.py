"""Random-relocation control baseline.

Moves ``k`` uniformly random jobs to uniformly random other processors.
Useful as the null hypothesis in the head-to-head experiment: any
algorithm worth running must beat it decisively.
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.result import RebalanceResult

__all__ = ["random_rebalance"]


def random_rebalance(
    instance: Instance,
    k: int | None = None,
    budget: float | None = None,
    seed: int = 0,
    **_: object,
) -> RebalanceResult:
    """Relocate up to ``k`` random jobs (or as many fit in ``budget``).

    Deterministic given ``seed``.
    """
    rng = np.random.default_rng(seed)
    mapping = np.array(instance.initial, dtype=np.int64)
    n = instance.num_jobs
    m = instance.num_processors
    if n == 0 or m < 2:
        assignment = Assignment(instance=instance, mapping=mapping)
        return RebalanceResult(assignment=assignment, algorithm="random")
    limit = k if k is not None else n
    order = rng.permutation(n)
    moves = 0
    cost = 0.0
    for j in order:
        if moves >= limit:
            break
        if budget is not None and cost + instance.costs[j] > budget + 1e-12:
            continue
        target = int(rng.integers(0, m - 1))
        if target >= mapping[j]:
            target += 1  # uniform over the other m-1 processors
        mapping[j] = target
        moves += 1
        cost += float(instance.costs[j])
    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(max_moves=k, budget=budget)
    return RebalanceResult(
        assignment=assignment,
        algorithm="random",
        planned_moves=moves,
        meta={"seed": seed},
    )
