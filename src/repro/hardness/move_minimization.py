"""Move minimization and its inapproximability (Section 5, Theorem 5).

The *move minimization* problem inverts the paper's main question:
given a load bound ``L``, find the fewest relocations achieving
makespan at most ``L`` (reporting infinity when ``L`` is unachievable).

Theorem 5: no polynomial-time approximation algorithm of **any** factor
exists unless P = NP, by reduction from PARTITION — an approximation
algorithm must at least distinguish "achievable" from "not achievable",
and with the gadget below that distinction solves PARTITION.

This module provides the exact solver (for small instances), a greedy
heuristic (which necessarily fails on some gadgets — that is the
theorem's point, demonstrated in experiment E7), and the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exact import exact_rebalance
from ..core.instance import Instance, make_instance
from .partition_problem import PartitionInstance

__all__ = [
    "min_moves_exact",
    "min_moves_greedy",
    "reduction_from_partition",
    "MoveMinimizationResult",
]


@dataclass(frozen=True)
class MoveMinimizationResult:
    """Outcome of a move-minimization query."""

    achievable: bool
    moves: int | None  # None when unachievable
    mapping: np.ndarray | None


def min_moves_exact(
    instance: Instance, load_bound: float, node_limit: int = 5_000_000
) -> MoveMinimizationResult:
    """Exact minimum number of moves to reach makespan <= ``load_bound``.

    Binary-searches the move budget ``k`` (feasibility is monotone in
    ``k``) against the branch-and-bound optimizer.  Exponential in the
    worst case — Theorem 5 says it must be.
    """
    # Quick unachievability checks.
    if instance.max_size > load_bound + 1e-12:
        return MoveMinimizationResult(achievable=False, moves=None, mapping=None)
    full = exact_rebalance(instance, k=instance.num_jobs, node_limit=node_limit)
    if full.makespan > load_bound + 1e-12:
        return MoveMinimizationResult(achievable=False, moves=None, mapping=None)

    lo, hi = 0, instance.num_jobs
    best_mapping = np.array(full.assignment.mapping)
    while lo < hi:
        mid = (lo + hi) // 2
        res = exact_rebalance(instance, k=mid, node_limit=node_limit)
        if res.makespan <= load_bound + 1e-12:
            hi = mid
            best_mapping = np.array(res.assignment.mapping)
        else:
            lo = mid + 1
    return MoveMinimizationResult(achievable=True, moves=lo, mapping=best_mapping)


def min_moves_greedy(
    instance: Instance, load_bound: float
) -> MoveMinimizationResult:
    """Greedy heuristic: repeatedly move the largest job of an
    overloaded processor to the least-loaded processor that can take it
    without itself exceeding the bound.

    Sound but incomplete: when it reports unachievable, the bound may
    in fact be achievable (Theorem 5 says every polynomial heuristic
    has such failures unless P = NP).
    """
    mapping = np.array(instance.initial, dtype=np.int64)
    loads = np.array(instance.initial_loads, dtype=np.float64)
    if instance.max_size > load_bound + 1e-12:
        return MoveMinimizationResult(achievable=False, moves=None, mapping=None)
    moves = 0
    guard = 0
    while loads.max() > load_bound + 1e-12:
        guard += 1
        if guard > 4 * instance.num_jobs + 4:
            return MoveMinimizationResult(achievable=False, moves=None, mapping=None)
        donor = int(np.argmax(loads))
        jobs = np.flatnonzero(mapping == donor)
        jobs = sorted(jobs, key=lambda j: (-instance.sizes[j], j))
        placed = False
        for j in jobs:
            size = float(instance.sizes[j])
            order = np.argsort(loads, kind="stable")
            for p in order:
                if p == donor:
                    continue
                if loads[p] + size <= load_bound + 1e-12:
                    loads[donor] -= size
                    loads[p] += size
                    mapping[j] = p
                    moves += 1
                    placed = True
                    break
            if placed:
                break
        if not placed:
            return MoveMinimizationResult(achievable=False, moves=None, mapping=None)
    return MoveMinimizationResult(achievable=True, moves=moves, mapping=mapping)


def reduction_from_partition(
    partition: PartitionInstance,
) -> tuple[Instance, float]:
    """Theorem 5's gadget: PARTITION -> move minimization.

    All values become jobs on processor 0 of a 2-processor system, and
    the load bound is half the total.  The bound is achievable (by any
    number of moves) **iff** the PARTITION instance is a yes-instance,
    so *any* finite-factor approximation of the minimum move count
    decides PARTITION.
    """
    values = partition.values
    instance = make_instance(
        sizes=[float(v) for v in values],
        initial=[0] * len(values),
        num_processors=2,
    )
    return instance, partition.total / 2.0
