"""Conflict Scheduling (Section 5, Theorem 7).

The Conflict Scheduling problem adds pairwise conflicts: specified
pairs of jobs may not share a processor.  Theorem 7: no polynomial
algorithm approximates its makespan within *any* ratio unless P = NP —
because deciding whether any conflict-respecting assignment exists at
all already encodes 3-dimensional matching.

This module models conflict instances, decides feasibility (and
minimizes makespan) exactly for small instances, and builds Theorem 7's
gadget:

* one machine per triple; one *triple job* per triple, all pairwise
  conflicting (forcing exactly one per machine);
* one *element job* per element of ``A ∪ B ∪ C``; element ``u``
  conflicts with triple job ``i`` unless ``u ∈ T_i``;
* ``m - n`` *dummy jobs*, pairwise conflicting and conflicting with
  every element job.

A feasible assignment exists iff the 3DM instance has a perfect
matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .three_dim_matching import ThreeDMInstance

__all__ = [
    "ConflictInstance",
    "feasible_conflict_assignment",
    "exact_conflict_makespan",
    "conflict_gadget_from_3dm",
]


@dataclass(frozen=True)
class ConflictInstance:
    """Jobs with sizes, a machine count and a conflict relation."""

    sizes: np.ndarray
    num_machines: int
    conflicts: frozenset[tuple[int, int]]  # normalized (lo, hi) pairs

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64).copy()
        sizes.setflags(write=False)
        object.__setattr__(self, "sizes", sizes)
        norm = set()
        n = sizes.shape[0]
        for a, b in self.conflicts:
            if a == b or not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"bad conflict pair ({a}, {b})")
            norm.add((min(a, b), max(a, b)))
        object.__setattr__(self, "conflicts", frozenset(norm))

    @property
    def num_jobs(self) -> int:
        return int(self.sizes.shape[0])

    def conflict_sets(self) -> list[set[int]]:
        """Adjacency representation of the conflict graph."""
        adj: list[set[int]] = [set() for _ in range(self.num_jobs)]
        for a, b in self.conflicts:
            adj[a].add(b)
            adj[b].add(a)
        return adj


def _search(
    cinst: ConflictInstance,
    makespan_cap: float | None,
    node_limit: int,
) -> np.ndarray | None:
    """Backtracking assignment respecting conflicts (and an optional
    load cap); jobs in decreasing conflict degree then size."""
    n, m = cinst.num_jobs, cinst.num_machines
    adj = cinst.conflict_sets()
    order = sorted(
        range(n), key=lambda j: (-len(adj[j]), -cinst.sizes[j], j)
    )
    machine_jobs: list[set[int]] = [set() for _ in range(m)]
    loads = [0.0] * m
    mapping = np.full(n, -1, dtype=np.int64)
    nodes = 0

    def dfs(pos: int) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("conflict search exceeded node limit")
        if pos == n:
            return True
        j = order[pos]
        seen_loads: set[float] = set()
        for p in sorted(range(m), key=lambda q: loads[q]):
            if adj[j] & machine_jobs[p]:
                continue
            if makespan_cap is not None and loads[p] + cinst.sizes[j] > makespan_cap + 1e-9:
                continue
            # Symmetry pruning: empty machines are interchangeable.
            if not machine_jobs[p]:
                if 0.0 in seen_loads:
                    continue
                seen_loads.add(0.0)
            machine_jobs[p].add(j)
            loads[p] += cinst.sizes[j]
            mapping[j] = p
            if dfs(pos + 1):
                return True
            machine_jobs[p].remove(j)
            loads[p] -= cinst.sizes[j]
            mapping[j] = -1
        return False

    return mapping.copy() if dfs(0) else None


def feasible_conflict_assignment(
    cinst: ConflictInstance, node_limit: int = 5_000_000
) -> np.ndarray | None:
    """A conflict-respecting assignment, or ``None`` if none exists."""
    return _search(cinst, makespan_cap=None, node_limit=node_limit)


def exact_conflict_makespan(
    cinst: ConflictInstance, node_limit: int = 5_000_000
) -> tuple[float, np.ndarray] | None:
    """Minimum makespan over conflict-respecting assignments, or
    ``None`` when the instance is infeasible.

    Binary search over the distinct achievable load values via repeated
    capped feasibility checks.
    """
    base = feasible_conflict_assignment(cinst, node_limit)
    if base is None:
        return None
    loads = np.zeros(cinst.num_machines)
    np.add.at(loads, base, cinst.sizes)
    hi = float(loads.max())
    best = (hi, base)
    lo = float(cinst.sizes.max()) if cinst.num_jobs else 0.0
    # Bisect on the cap; terminate when the window is tight.
    for _ in range(50):
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
        mid = 0.5 * (lo + hi)
        attempt = _search(cinst, makespan_cap=mid, node_limit=node_limit)
        if attempt is None:
            lo = mid
        else:
            loads = np.zeros(cinst.num_machines)
            np.add.at(loads, attempt, cinst.sizes)
            hi = float(loads.max())
            best = (hi, attempt)
    return best


def conflict_gadget_from_3dm(
    tdm: ThreeDMInstance,
) -> ConflictInstance:
    """Theorem 7's gadget (see module docstring).

    Job layout: ``m`` triple jobs, then ``3n`` element jobs (``A`` then
    ``B`` then ``C``), then ``m - n`` dummies.  All jobs get unit size
    (the reduction "disregards job costs and sizes").
    """
    n = tdm.n
    m = tdm.num_triples
    if m < n:
        raise ValueError("need at least n triples")
    triple_ids = list(range(m))
    elem_base = m
    dummy_base = m + 3 * n
    total = m + 3 * n + (m - n)

    conflicts: set[tuple[int, int]] = set()
    # Triple jobs pairwise conflict.
    for i in range(m):
        for j in range(i + 1, m):
            conflicts.add((i, j))
    # Dummies pairwise conflict and conflict with every element job.
    for i in range(dummy_base, total):
        for j in range(i + 1, total):
            conflicts.add((i, j))
        for e in range(elem_base, dummy_base):
            conflicts.add((min(e, i), max(e, i)))

    # Element u conflicts with triple job t unless u in T_t.
    def elem_id(kind: int, idx: int) -> int:
        return elem_base + kind * n + idx

    for t, (a, b, c) in enumerate(tdm.triples):
        members = {elem_id(0, a), elem_id(1, b), elem_id(2, c)}
        for e in range(elem_base, dummy_base):
            if e not in members:
                conflicts.add((t, e))

    return ConflictInstance(
        sizes=np.ones(total),
        num_machines=m,
        conflicts=frozenset(conflicts),
    )
