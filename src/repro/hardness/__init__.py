"""Section-5 hardness constructions, built and observable.

The paper's negative results are constructive reductions; this package
implements the gadget generators together with the exact solvers needed
to watch the hardness gaps appear:

* :mod:`repro.hardness.partition_problem` — PARTITION instances/solver;
* :mod:`repro.hardness.move_minimization` — Theorem 5 (move
  minimization is inapproximable);
* :mod:`repro.hardness.three_dim_matching` — 3DM instances/solver;
* :mod:`repro.hardness.gap_costs` — Theorem 6 (two-valued-cost GAP has
  no sub-1.5 approximation);
* :mod:`repro.hardness.constrained` — Corollary 1 (Constrained Load
  Rebalancing, same bound);
* :mod:`repro.hardness.conflict` — Theorem 7 (Conflict Scheduling is
  inapproximable within any ratio).
"""

from .conflict import (
    ConflictInstance,
    conflict_gadget_from_3dm,
    exact_conflict_makespan,
    feasible_conflict_assignment,
)
from .constrained import (
    ConstrainedInstance,
    constrained_gadget_from_3dm,
    constrained_shmoys_tardos,
    exact_constrained,
    greedy_constrained,
)
from .gap_costs import (
    GAPInstance,
    exact_gap_min_makespan,
    gadget_from_3dm,
    gap_shmoys_tardos,
    verify_gadget_gap,
)
from .move_minimization import (
    MoveMinimizationResult,
    min_moves_exact,
    min_moves_greedy,
    reduction_from_partition,
)
from .partition_problem import (
    PartitionInstance,
    random_no_instance,
    random_yes_instance,
    solve_partition,
)
from .three_dim_matching import (
    ThreeDMInstance,
    planted_yes_instance,
    solve_3dm,
    verified_no_instance,
)

__all__ = [
    "ConflictInstance",
    "ConstrainedInstance",
    "GAPInstance",
    "MoveMinimizationResult",
    "PartitionInstance",
    "ThreeDMInstance",
    "conflict_gadget_from_3dm",
    "constrained_gadget_from_3dm",
    "constrained_shmoys_tardos",
    "exact_conflict_makespan",
    "exact_constrained",
    "exact_gap_min_makespan",
    "feasible_conflict_assignment",
    "gadget_from_3dm",
    "gap_shmoys_tardos",
    "greedy_constrained",
    "min_moves_exact",
    "min_moves_greedy",
    "planted_yes_instance",
    "random_no_instance",
    "random_yes_instance",
    "reduction_from_partition",
    "solve_3dm",
    "solve_partition",
    "verified_no_instance",
    "verify_gadget_gap",
]
