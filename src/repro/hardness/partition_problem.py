"""The PARTITION problem (number partitioning).

Theorem 5 reduces PARTITION to move minimization, so the reproduction
needs PARTITION instances (planted yes-instances and certified
no-instances) and an exact decision procedure.

PARTITION: given positive integers ``v_1..v_n``, is there a subset with
sum exactly ``sum(v) / 2``?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "PartitionInstance",
    "solve_partition",
    "random_yes_instance",
    "random_no_instance",
]


@dataclass(frozen=True)
class PartitionInstance:
    """A number-partitioning instance."""

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(v <= 0 for v in self.values):
            raise ValueError("values must be positive integers")

    @property
    def total(self) -> int:
        return sum(self.values)

    @property
    def half(self) -> int:
        return self.total // 2


def solve_partition(values: Sequence[int]) -> tuple[int, ...] | None:
    """Exact PARTITION via subset-sum dynamic programming.

    Returns the indices of one side of a perfect partition, or ``None``
    when no perfect partition exists.  ``O(n * total)`` time — fine for
    the gadget sizes the experiments use.
    """
    values = [int(v) for v in values]
    total = sum(values)
    if total % 2:
        return None
    target = total // 2
    # reachable[s] = index of the last value used to first reach sum s.
    reachable = np.full(target + 1, -2, dtype=np.int64)
    reachable[0] = -1
    for idx, v in enumerate(values):
        if v > target:
            return None
        hit = np.flatnonzero(reachable[: target + 1 - v] != -2)
        newly = hit + v
        fresh = newly[reachable[newly] == -2]
        reachable[fresh] = idx
    if reachable[target] == -2:
        return None
    # Reconstruct: walk back through the "first reached via" markers.
    subset: list[int] = []
    s = target
    while s > 0:
        idx = int(reachable[s])
        assert idx >= 0
        subset.append(idx)
        s -= values[idx]
    return tuple(sorted(subset))


def random_yes_instance(
    n: int, rng: np.random.Generator, max_value: int = 50
) -> PartitionInstance:
    """A PARTITION instance with a planted perfect partition.

    Generates one side at random and mirrors its sum on the other side
    (padding with a balancing element), so a perfect partition is
    guaranteed by construction.
    """
    if n < 2:
        raise ValueError("need at least two values")
    body = [int(rng.integers(1, max_value + 1)) for _ in range(n - 2)]
    side = rng.integers(0, 2, size=n - 2).astype(bool)
    gap = sum(v for v, s in zip(body, side) if s) - sum(
        v for v, s in zip(body, side) if not s
    )
    # Two balancing elements, one per side, absorb the gap.
    x = int(rng.integers(1, max_value + 1))
    values = body + [x + max(-gap, 0), x + max(gap, 0)]
    rng.shuffle(values)
    inst = PartitionInstance(values=tuple(values))
    assert solve_partition(inst.values) is not None
    return inst


def random_no_instance(
    n: int, rng: np.random.Generator, max_value: int = 50
) -> PartitionInstance:
    """A PARTITION no-instance: an odd total guarantees no solution."""
    values = [2 * int(rng.integers(1, max_value // 2 + 1)) for _ in range(n - 1)]
    values.append(2 * int(rng.integers(1, max_value // 2 + 1)) + 1)  # odd total
    rng.shuffle(values)
    return PartitionInstance(values=tuple(values))
