"""3-dimensional matching (3DM) — the source problem of Theorems 6 & 7.

3DM: given disjoint sets ``A``, ``B``, ``C`` of size ``n`` and a family
``F`` of triples (one element from each set), is there a subfamily of
``n`` pairwise-disjoint triples covering ``A ∪ B ∪ C``?

This module models 3DM instances, solves small ones exactly by
backtracking, and generates planted yes-instances and verified
no-instances for the hardness experiments (E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "ThreeDMInstance",
    "solve_3dm",
    "planted_yes_instance",
    "verified_no_instance",
]


@dataclass(frozen=True)
class ThreeDMInstance:
    """A 3DM instance over ``A = B = C = range(n)``.

    ``triples[t] = (a, b, c)`` uses element ``a`` of ``A``, ``b`` of
    ``B`` and ``c`` of ``C``.
    """

    n: int
    triples: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        for t in self.triples:
            if len(t) != 3 or any(not 0 <= e < self.n for e in t):
                raise ValueError(f"triple {t} outside range(0, {self.n})")
        if len(set(self.triples)) != len(self.triples):
            raise ValueError("duplicate triples")

    @property
    def num_triples(self) -> int:
        return len(self.triples)

    def type_counts(self) -> list[int]:
        """``t_j`` of Theorem 6: how many triples use element ``j`` of
        ``A`` (triples "of type j")."""
        counts = [0] * self.n
        for a, _, _ in self.triples:
            counts[a] += 1
        return counts


def solve_3dm(instance: ThreeDMInstance) -> tuple[int, ...] | None:
    """Exact 3DM by backtracking on the least-covered ``A`` element.

    Returns the indices of a perfect matching's triples, or ``None``.
    """
    n = instance.n
    by_a: list[list[int]] = [[] for _ in range(n)]
    for idx, (a, _, _) in enumerate(instance.triples):
        by_a[a].append(idx)
    if any(not lst for lst in by_a):
        return None

    used_b = [False] * n
    used_c = [False] * n
    chosen: list[int] = []

    # Order A-elements by fewest candidate triples (fail-first).
    a_order = sorted(range(n), key=lambda a: len(by_a[a]))

    def backtrack(pos: int) -> bool:
        if pos == n:
            return True
        a = a_order[pos]
        for idx in by_a[a]:
            _, b, c = instance.triples[idx]
            if used_b[b] or used_c[c]:
                continue
            used_b[b] = used_c[c] = True
            chosen.append(idx)
            if backtrack(pos + 1):
                return True
            chosen.pop()
            used_b[b] = used_c[c] = False
        return False

    if backtrack(0):
        return tuple(sorted(chosen))
    return None


def planted_yes_instance(
    n: int, extra_triples: int, rng: np.random.Generator
) -> ThreeDMInstance:
    """A 3DM yes-instance: a random perfect matching plus noise triples."""
    perm_b = rng.permutation(n)
    perm_c = rng.permutation(n)
    triples = {(a, int(perm_b[a]), int(perm_c[a])) for a in range(n)}
    attempts = 0
    while len(triples) < n + extra_triples and attempts < 100 * (n + extra_triples):
        attempts += 1
        t = (
            int(rng.integers(0, n)),
            int(rng.integers(0, n)),
            int(rng.integers(0, n)),
        )
        triples.add(t)
    return ThreeDMInstance(n=n, triples=tuple(sorted(triples)))


def verified_no_instance(
    n: int, num_triples: int, rng: np.random.Generator, max_tries: int = 200
) -> ThreeDMInstance:
    """A random 3DM instance certified (by the exact solver) to have no
    perfect matching.

    The easiest certified construction: leave one ``B`` element out of
    every triple, which makes a perfect matching impossible; random
    fallbacks are checked with :func:`solve_3dm`.
    """
    for _ in range(max_tries):
        triples = set()
        while len(triples) < num_triples:
            t = (
                int(rng.integers(0, n)),
                int(rng.integers(0, max(1, n - 1))),  # B element n-1 never used
                int(rng.integers(0, n)),
            )
            triples.add(t)
        inst = ThreeDMInstance(n=n, triples=tuple(sorted(triples)))
        if solve_3dm(inst) is None:
            return inst
    raise RuntimeError("failed to build a no-instance")  # pragma: no cover
