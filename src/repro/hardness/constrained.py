"""Constrained Load Rebalancing (Section 5, Corollary 1).

The Constrained Load Rebalancing problem adds the restriction that each
job may only be reassigned to a specified subset of machines.
Corollary 1: the problem cannot be approximated below 1.5 in polynomial
time (the Theorem-6 gadget re-expressed with allowed-sets instead of
two-valued costs); the best known upper bound remains Shmoys–Tardos'
2-approximation, and closing the gap is the paper's stated open
question.

This module models the constrained problem, solves small instances
exactly, provides a constrained greedy heuristic, and builds the
Corollary-1 gadget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance, make_instance
from .three_dim_matching import ThreeDMInstance

__all__ = [
    "ConstrainedInstance",
    "exact_constrained",
    "greedy_constrained",
    "constrained_gadget_from_3dm",
    "constrained_shmoys_tardos",
]


@dataclass(frozen=True)
class ConstrainedInstance:
    """A rebalancing instance plus per-job allowed machine sets.

    ``allowed[i]`` always contains the job's home machine (staying put
    is always permitted).
    """

    instance: Instance
    allowed: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        if len(self.allowed) != self.instance.num_jobs:
            raise ValueError("one allowed-set per job required")
        for i, s in enumerate(self.allowed):
            if int(self.instance.initial[i]) not in s:
                raise ValueError(f"allowed[{i}] must contain the home machine")
            if any(not 0 <= p < self.instance.num_processors for p in s):
                raise ValueError(f"allowed[{i}] refers to unknown machines")


def exact_constrained(
    cinst: ConstrainedInstance,
    k: int | None = None,
    node_limit: int = 20_000_000,
) -> tuple[float, np.ndarray]:
    """Optimal constrained rebalancing by branch-and-bound.

    Returns ``(makespan, mapping)``.
    """
    inst = cinst.instance
    n, m = inst.num_jobs, inst.num_processors
    order = sorted(range(n), key=lambda j: (-inst.sizes[j], j))
    best_makespan = inst.initial_makespan
    best_mapping = np.array(inst.initial, dtype=np.int64)
    loads = [0.0] * m
    mapping = np.full(n, -1, dtype=np.int64)
    nodes = 0
    eps = 1e-9

    def dfs(pos: int, cur_max: float, moves: int) -> None:
        nonlocal nodes, best_makespan, best_mapping
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("constrained exact search exceeded node limit")
        if cur_max >= best_makespan - eps:
            return
        if pos == n:
            best_makespan = cur_max
            best_mapping = mapping.copy()
            return
        j = order[pos]
        h = int(inst.initial[j])
        targets = sorted(cinst.allowed[j], key=lambda p: (p != h, loads[p]))
        for p in targets:
            if p != h and k is not None and moves + 1 > k:
                continue
            new_load = loads[p] + inst.sizes[j]
            if new_load >= best_makespan - eps and new_load > cur_max:
                continue
            loads[p] = new_load
            mapping[j] = p
            dfs(pos + 1, max(cur_max, new_load), moves + (p != h))
            loads[p] = new_load - inst.sizes[j]
            mapping[j] = -1

    dfs(0, 0.0, 0)
    return best_makespan, best_mapping


def greedy_constrained(
    cinst: ConstrainedInstance, k: int
) -> tuple[float, np.ndarray]:
    """GREEDY restricted to allowed-sets.

    Repeat up to ``k`` times: take the largest job on the most loaded
    machine that has a lighter allowed target, and move it to its
    least-loaded allowed machine.  A heuristic only — Corollary 1 rules
    out sub-1.5 guarantees for any polynomial algorithm.
    """
    inst = cinst.instance
    mapping = np.array(inst.initial, dtype=np.int64)
    loads = np.array(inst.initial_loads, dtype=np.float64)
    for _ in range(k):
        best_move: tuple[float, int, int] | None = None
        donors = np.argsort(-loads, kind="stable")
        for d in donors:
            jobs = sorted(
                np.flatnonzero(mapping == d),
                key=lambda j: (-inst.sizes[j], j),
            )
            for j in jobs:
                for p in sorted(cinst.allowed[j], key=lambda q: loads[q]):
                    if p == d:
                        continue
                    new_peak = max(
                        float(loads[p] + inst.sizes[j]),
                        float(np.delete(loads, [d, p]).max(initial=0.0)),
                        float(loads[d] - inst.sizes[j]),
                    )
                    if new_peak < loads.max() - 1e-12 and (
                        best_move is None or new_peak < best_move[0]
                    ):
                        best_move = (new_peak, int(j), int(p))
                    break
        if best_move is None:
            break
        _, j, p = best_move
        loads[int(mapping[j])] -= inst.sizes[j]
        loads[p] += inst.sizes[j]
        mapping[j] = p
    return float(loads.max()), mapping


def constrained_shmoys_tardos(
    cinst: ConstrainedInstance, budget: float
) -> tuple[float, np.ndarray]:
    """The best known upper bound for Constrained Load Rebalancing:
    Shmoys–Tardos LP rounding with forbidden pairs priced out.

    Corollary 1 places the problem's approximability in [1.5, 2]; this
    is the ``2`` side.  Returns ``(makespan, mapping)``; every job
    lands inside its allowed set (asserted).
    """
    from ..baselines.shmoys_tardos import shmoys_tardos_rebalance

    result = shmoys_tardos_rebalance(
        cinst.instance, budget=budget, allowed=cinst.allowed
    )
    mapping = result.assignment.mapping
    for j, p in enumerate(mapping):
        assert int(p) in cinst.allowed[j], (
            f"rounding placed job {j} outside its allowed set"
        )
    return result.makespan, np.array(mapping)


def constrained_gadget_from_3dm(
    tdm: ThreeDMInstance,
) -> tuple[ConstrainedInstance, float]:
    """Corollary 1's gadget: the Theorem-6 construction with allowed
    sets in place of cost classes.

    Jobs and machines are as in :func:`repro.hardness.gap_costs.gadget_from_3dm`;
    each job's allowed set is exactly the machines where Theorem 6
    charges ``p``.  The initial assignment places every job on its
    first allowed machine.  With the move budget ``k = num jobs``,
    the optimal constrained makespan is 2 iff the 3DM instance has a
    perfect matching (else at least 3), so any sub-1.5 approximation
    would decide 3DM.

    Returns ``(constrained instance, yes_makespan=2.0)``.
    """
    n = tdm.n
    m = tdm.num_triples
    sizes: list[float] = []
    allowed: list[frozenset[int]] = []

    for b in range(n):
        machines = frozenset(
            t for t, (_, tb, _) in enumerate(tdm.triples) if tb == b
        )
        if not machines:
            raise ValueError(f"element b={b} appears in no triple")
        sizes.append(1.0)
        allowed.append(machines)
    for c in range(n):
        machines = frozenset(
            t for t, (_, _, tc) in enumerate(tdm.triples) if tc == c
        )
        if not machines:
            raise ValueError(f"element c={c} appears in no triple")
        sizes.append(1.0)
        allowed.append(machines)
    for j, count in enumerate(tdm.type_counts()):
        machines = frozenset(
            t for t, (ta, _, _) in enumerate(tdm.triples) if ta == j
        )
        for _ in range(max(count - 1, 0)):
            sizes.append(2.0)
            allowed.append(machines)

    initial = [min(s) for s in allowed]
    instance = make_instance(
        sizes=sizes, initial=initial, num_processors=m
    )
    return ConstrainedInstance(instance=instance, allowed=tuple(allowed)), 2.0
