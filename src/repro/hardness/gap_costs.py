"""Two-valued-cost GAP hardness (Section 5, Theorem 6).

Theorem 6: makespan minimization with assignment costs
``c_ij in {p, q}`` (``p != 0``) under a cost budget has no polynomial
``rho``-approximation for any ``rho < 1.5`` unless P = NP.  The proof
reduces 3-dimensional matching to a gap question: the gadget instance
has optimal makespan 2 within budget iff the 3DM instance has a perfect
matching, and the next achievable makespan is 3 (hence the 3/2 gap).

This module builds the gadget and provides a small exact GAP solver so
experiment E10 can observe the 2-vs-3 gap directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .three_dim_matching import ThreeDMInstance, solve_3dm

__all__ = [
    "GAPInstance",
    "exact_gap_min_makespan",
    "gadget_from_3dm",
    "gap_shmoys_tardos",
    "verify_gadget_gap",
]


@dataclass(frozen=True)
class GAPInstance:
    """Generalized assignment with machine-independent sizes.

    ``sizes[i]`` is job ``i``'s processing time on every machine (the
    restriction the paper studies in Section 5); ``cost[i, j]`` is the
    cost of placing job ``i`` on machine ``j``.
    """

    sizes: np.ndarray
    cost: np.ndarray  # shape (n, m)

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64).copy()
        cost = np.asarray(self.cost, dtype=np.float64).copy()
        if cost.ndim != 2 or cost.shape[0] != sizes.shape[0]:
            raise ValueError("cost must be (num_jobs, num_machines)")
        sizes.setflags(write=False)
        cost.setflags(write=False)
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "cost", cost)

    @property
    def num_jobs(self) -> int:
        return int(self.sizes.shape[0])

    @property
    def num_machines(self) -> int:
        return int(self.cost.shape[1])


def exact_gap_min_makespan(
    gap: GAPInstance, budget: float, node_limit: int = 20_000_000
) -> tuple[float, np.ndarray]:
    """Minimum makespan of any assignment of total cost <= ``budget``.

    Branch-and-bound in non-increasing size order with cost pruning.
    Returns ``(makespan, mapping)``; raises ``RuntimeError`` when no
    assignment fits the budget.
    """
    n, m = gap.num_jobs, gap.num_machines
    order = sorted(range(n), key=lambda j: (-gap.sizes[j], j))
    # Cheapest possible completion cost from each position (for pruning).
    min_cost = gap.cost.min(axis=1)
    suffix_cost = np.zeros(n + 1)
    for pos in range(n - 1, -1, -1):
        suffix_cost[pos] = suffix_cost[pos + 1] + min_cost[order[pos]]

    best_makespan = float("inf")
    best_mapping = np.full(n, -1, dtype=np.int64)
    loads = [0.0] * m
    mapping = np.full(n, -1, dtype=np.int64)
    nodes = 0
    eps = 1e-9

    def dfs(pos: int, cur_max: float, cost: float) -> None:
        nonlocal nodes, best_makespan, best_mapping
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("exact GAP search exceeded node limit")
        if cost + suffix_cost[pos] > budget + eps:
            return
        if cur_max >= best_makespan - eps:
            return
        if pos == n:
            best_makespan = cur_max
            best_mapping = mapping.copy()
            return
        j = order[pos]
        for p in sorted(range(m), key=lambda q: (gap.cost[j, q], loads[q])):
            new_load = loads[p] + gap.sizes[j]
            if new_load >= best_makespan - eps and new_load > cur_max:
                continue
            loads[p] = new_load
            mapping[j] = p
            dfs(pos + 1, max(cur_max, new_load), cost + float(gap.cost[j, p]))
            loads[p] = new_load - gap.sizes[j]
            mapping[j] = -1

    dfs(0, 0.0, 0.0)
    if not np.isfinite(best_makespan):
        raise RuntimeError(f"no assignment fits budget {budget}")
    return best_makespan, best_mapping


def gadget_from_3dm(
    tdm: ThreeDMInstance, p: float = 1.0, q: float = 1000.0
) -> tuple[GAPInstance, float]:
    """Theorem 6's gadget: 3DM -> two-valued-cost GAP.

    * one machine per triple;
    * ``2n`` unit-size *element jobs*, one per element of ``B`` and of
      ``C``; job for element ``b`` (resp. ``c``) costs ``p`` on machines
      whose triple contains it, ``q`` elsewhere;
    * for each type ``j`` (triples sharing the ``A`` element ``a_j``),
      ``t_j - 1`` *dummy jobs* of size 2, costing ``p`` on type-``j``
      machines and ``q`` elsewhere;
    * cost budget ``(m + n) * p``.

    With a perfect matching, every machine reaches load exactly 2 at
    total cost ``(m + n) p``; without one, some machine is forced to
    load >= 3 (or the budget breaks).  Returns ``(gap, budget)``.
    """
    n = tdm.n
    m = tdm.num_triples
    sizes: list[float] = []
    cost_rows: list[np.ndarray] = []

    # Element jobs for B.
    for b in range(n):
        sizes.append(1.0)
        row = np.full(m, q)
        for t, (_, tb, _) in enumerate(tdm.triples):
            if tb == b:
                row[t] = p
        cost_rows.append(row)
    # Element jobs for C.
    for c in range(n):
        sizes.append(1.0)
        row = np.full(m, q)
        for t, (_, _, tc) in enumerate(tdm.triples):
            if tc == c:
                row[t] = p
        cost_rows.append(row)
    # Dummy jobs per type.
    for j, count in enumerate(tdm.type_counts()):
        for _ in range(max(count - 1, 0)):
            sizes.append(2.0)
            row = np.full(m, q)
            for t, (ta, _, _) in enumerate(tdm.triples):
                if ta == j:
                    row[t] = p
            cost_rows.append(row)

    gap = GAPInstance(sizes=np.array(sizes), cost=np.vstack(cost_rows))
    budget = (m + n) * p
    return gap, budget


def gap_shmoys_tardos(
    gap: GAPInstance,
    budget: float,
    tol: float = 1e-3,
    max_iterations: int = 60,
) -> tuple[float, "np.ndarray"]:
    """Shmoys–Tardos 2-approximation for general GAP cost matrices.

    The factor-2 upper bound that faces Theorem 6's 1.5 lower bound:
    LP (min total cost, loads <= T) + slot rounding, binary-searched
    over T.  Returns ``(makespan, mapping)`` with total cost at most
    ``budget`` (up to the LP solver's tolerance); raises
    ``RuntimeError`` when even the LP cannot meet the budget at any
    target up to the all-on-cheapest upper bound.
    """
    import networkx as nx
    from scipy.optimize import linprog

    n, m = gap.num_jobs, gap.num_machines
    if n == 0:
        return 0.0, np.empty(0, dtype=np.int64)

    def solve(target: float):
        nv = n * m
        c = gap.cost.reshape(nv)
        a_eq = np.zeros((n, nv))
        for i in range(n):
            a_eq[i, i * m : (i + 1) * m] = 1.0
        a_ub = np.zeros((m, nv))
        for j in range(m):
            for i in range(n):
                a_ub[j, i * m + j] = gap.sizes[i]
        res = linprog(
            c, A_ub=a_ub, b_ub=np.full(m, target), A_eq=a_eq,
            b_eq=np.ones(n), bounds=(0.0, 1.0), method="highs",
        )
        if not res.success or res.fun > budget + 1e-7 * max(1.0, budget):
            return None
        return float(res.fun), res.x.reshape(n, m)

    lo = float(gap.sizes.max())
    hi = float(gap.sizes.sum())
    best = solve(hi)
    if best is None:
        raise RuntimeError(f"no fractional assignment fits budget {budget}")
    best_t = hi
    iterations = 0
    while hi - lo > tol * max(1.0, lo) and iterations < max_iterations:
        iterations += 1
        mid = 0.5 * (lo + hi)
        solved = solve(mid)
        if solved is not None:
            best, best_t, hi = solved, mid, mid
        else:
            lo = mid

    _, x = best
    scale = 10**6
    graph = nx.DiGraph()
    for i in range(n):
        graph.add_edge("src", ("job", i), capacity=1, weight=0)
    for j in range(m):
        jobs = [i for i in range(n) if x[i, j] > 1e-9]
        jobs.sort(key=lambda i: (-gap.sizes[i], i))
        slot, cap = 0, 1.0
        used = set()
        for i in jobs:
            frac = float(x[i, j])
            while frac > 1e-9:
                take = min(frac, cap)
                graph.add_edge(
                    ("job", i), ("slot", j, slot), capacity=1,
                    weight=int(round(gap.cost[i, j] * scale)),
                )
                used.add(slot)
                frac -= take
                cap -= take
                if cap <= 1e-9:
                    slot, cap = slot + 1, 1.0
        for s in used:
            graph.add_edge(("slot", j, s), "sink", capacity=1, weight=0)
    graph.add_node("src", demand=-n)
    graph.add_node("sink", demand=n)
    flow = nx.min_cost_flow(graph)
    mapping = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for node, amount in flow[("job", i)].items():
            if amount >= 1:
                mapping[i] = node[1]
                break
    assert (mapping >= 0).all()
    loads = np.zeros(m)
    np.add.at(loads, mapping, gap.sizes)
    return float(loads.max()), mapping


def verify_gadget_gap(tdm: ThreeDMInstance, p: float = 1.0) -> dict:
    """Solve both the 3DM instance and its gadget; report the observed
    correspondence (used by tests and experiment E10)."""
    gap, budget = gadget_from_3dm(tdm, p=p)
    matching = solve_3dm(tdm)
    try:
        makespan, _ = exact_gap_min_makespan(gap, budget)
    except RuntimeError:
        makespan = float("inf")
    return {
        "has_matching": matching is not None,
        "gadget_makespan": makespan,
        "budget": budget,
        "consistent": (matching is not None) == (makespan <= 2.0 + 1e-9),
    }
