"""Rolling additive snapshot fingerprints.

The engine's decision cache, the server's delta-base chain, and the
router's replication stream all key off a 16-byte snapshot fingerprint.
Through PR 7 that fingerprint was a blake2b over the full ``sizes`` /
``costs`` / ``initial`` arrays — O(n) per epoch even when only a handful
of sites changed.  This module replaces it with an *additive* hash: each
site contributes a 2x64-bit term that depends only on its own
``(index, size, cost, initial)`` tuple, and the fingerprint state is the
wrapping uint64 sum of all terms (two independent lanes).  Updating the
fingerprint after a churn of ``c`` sites is then O(c): subtract the old
terms, add the new ones — no full-array rehash.

Per-site terms are ``mix(idx*P1 + size_bits*P2 + cost_bits*P3 +
init*P4 + G)`` where ``mix`` is the splitmix64 finalizer and
``size_bits``/``cost_bits`` are the raw IEEE-754 bit patterns (so the
hash sees *byte* identity, exactly like the old blake2b).  The two lanes
use independent constants.  The final digest mixes both sums with
``n`` and ``m`` so shape changes always change the fingerprint.

This is an almost-universal 128-bit hash, not a cryptographic one: an
adversary who knows the constants can construct collisions.  Every
consumer treats fingerprints as opaque cache keys for *trusted* inputs
(the client hashes its own snapshots), so almost-universal is the right
trade for an O(churn) steady state.  The construction is pure integer
arithmetic — deterministic across processes and machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RollingFingerprint",
    "fingerprint_state",
    "instance_fingerprint",
]

_MASK = (1 << 64) - 1

# Lane 1 / lane 2 per-field multipliers (odd 64-bit constants).
_P1 = np.uint64(0x9E3779B97F4A7C15)
_P2 = np.uint64(0xC2B2AE3D27D4EB4F)
_P3 = np.uint64(0x165667B19E3779F9)
_P4 = np.uint64(0x27D4EB2F165667C5)
_G1 = np.uint64(0x85EBCA77C2B2AE63)

_Q1 = np.uint64(0xA0761D6478BD642F)
_Q2 = np.uint64(0xE7037ED1A0B428DB)
_Q3 = np.uint64(0x8EBC6AF09C88C6E3)
_Q4 = np.uint64(0x589965CC75374CC3)
_G2 = np.uint64(0x1D8E4E27C47D124F)

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)

# Digest-finalization multipliers for (n, m).
_N1 = 0x2545F4914F6CDD1D
_N2 = 0x9FB21C651E98DF25


def _mix(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array (wrapping)."""
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


def _mix_int(x: int) -> int:
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def _term_sums(
    idx: np.ndarray,
    sizes: np.ndarray,
    costs: np.ndarray,
    initial: np.ndarray,
) -> tuple[int, int]:
    """Sum of per-site terms for both lanes, as Python ints mod 2^64."""
    idx_u = np.ascontiguousarray(idx, dtype=np.int64).view(np.uint64)
    size_u = np.ascontiguousarray(sizes, dtype=np.float64).view(np.uint64)
    cost_u = np.ascontiguousarray(costs, dtype=np.float64).view(np.uint64)
    init_u = np.ascontiguousarray(initial, dtype=np.int64).view(np.uint64)
    with np.errstate(over="ignore"):
        t1 = _mix(idx_u * _P1 + size_u * _P2 + cost_u * _P3 + init_u * _P4 + _G1)
        t2 = _mix(idx_u * _Q1 + size_u * _Q2 + cost_u * _Q3 + init_u * _Q4 + _G2)
        s1 = int(t1.sum(dtype=np.uint64))
        s2 = int(t2.sum(dtype=np.uint64))
    return s1, s2


@dataclass
class RollingFingerprint:
    """Additive fingerprint state for one snapshot chain.

    ``s1``/``s2`` are the two lane sums (mod 2^64); ``num_jobs`` and
    ``num_processors`` pin the shape.  ``digest()`` derives the 16-byte
    fingerprint; ``roll()`` updates the state from a churn set in O(c).
    """

    s1: int
    s2: int
    num_jobs: int
    num_processors: int
    _digest: bytes | None = None

    def digest(self) -> bytes:
        if self._digest is None:
            shape = (self.num_jobs * _N1 + self.num_processors * _N2) & _MASK
            d1 = _mix_int(self.s1 ^ _mix_int(shape))
            d2 = _mix_int(self.s2 ^ _mix_int(shape ^ _MASK))
            self._digest = d1.to_bytes(8, "little") + d2.to_bytes(8, "little")
        return self._digest

    def copy(self) -> "RollingFingerprint":
        return RollingFingerprint(
            self.s1, self.s2, self.num_jobs, self.num_processors, self._digest
        )

    def roll(
        self,
        idx: np.ndarray,
        old_sizes: np.ndarray,
        old_costs: np.ndarray,
        old_initial: np.ndarray,
        new_sizes: np.ndarray,
        new_costs: np.ndarray,
        new_initial: np.ndarray,
    ) -> None:
        """Apply a same-shape churn: replace site ``idx`` values in O(c)."""
        o1, o2 = _term_sums(idx, old_sizes, old_costs, old_initial)
        n1, n2 = _term_sums(idx, new_sizes, new_costs, new_initial)
        self.s1 = (self.s1 - o1 + n1) & _MASK
        self.s2 = (self.s2 - o2 + n2) & _MASK
        self._digest = None


def fingerprint_state(
    sizes: np.ndarray,
    costs: np.ndarray,
    initial: np.ndarray,
    num_processors: int,
) -> RollingFingerprint:
    """Full O(n) fingerprint computation, returning roll-capable state."""
    n = int(sizes.shape[0])
    idx = np.arange(n, dtype=np.int64)
    s1, s2 = _term_sums(idx, sizes, costs, initial)
    return RollingFingerprint(s1, s2, n, int(num_processors))


def instance_fingerprint(instance) -> bytes:
    """16-byte fingerprint of an :class:`~repro.core.instance.Instance`."""
    return fingerprint_state(
        instance.sizes, instance.costs, instance.initial, instance.num_processors
    ).digest()
