"""Vectorized DP kernels for the cost/budgeted solvers.

The reference implementations of the keep-max-cost knapsack
(:mod:`repro.core.knapsack`) and the PTAS configuration DP
(:mod:`repro.core.ptas`) are written for auditability: one DP cell at a
time, allocation-heavy numpy per item, recursion with tuple-keyed
memoization.  This module holds the high-throughput rewrites that the
solvers dispatch to by default (``backend="kernel"``); the originals
remain available as ``backend="reference"`` escape hatches and the test
suite proves both produce identical solutions.

Knapsack kernels (:func:`exact_keep_indices`, :func:`fptas_keep_trace`):

* one in-place ``np.add`` / comparison / ``np.maximum`` (or
  ``np.minimum``) sweep per item over the capacity (or scaled-cost)
  axis — no per-item allocations;
* *reach clamping*: item ``i`` can only have changed cells up to
  ``min(cap, sum of the first i weights)``, so early sweeps touch a
  fraction of the axis;
* item filtering: zero-cost items are never kept by the reference DP
  (its updates are strictly-improving), and oversized items never fit,
  so both are dropped before the sweep;
* an all-fits short cut: when every positive-cost item fits, the
  reference trace provably keeps exactly the positive-cost items, so
  the DP is skipped entirely;
* decision rows are written in place by the comparison ops and read
  back during backtracking.

PTAS kernel (:func:`solve_ptas_dp`): the recursive
``f(proc, n_vector, v_units)`` memo DP becomes an iterative layered DP
over processors.  States are encoded as single integers (mixed-radix
over the class counts plus the small-load digit), a forward pass
deduplicates the reachable state set per layer (the dominance pruning
on ``(n, v_units)`` states), and a backward pass computes the exact
suffix costs with precomputed per-processor large-removal and
small-removal edge tables — eliminating the reference's per-transition
``large_cost`` recomputation and tuple hashing.  Candidate scanning
order (configuration enumeration order, small-allowance descending) and
strict-improvement updates replicate the reference's tie-breaking, so
the chosen per-processor configurations are identical.

Large-configuration vectors are cached per ``(delta, class-count)``
signature: the W-feasibility test ``sum x_i l_i <= (1 + 2 delta) T``
scales linearly in the guess ``T``, so the feasible vector set depends
only on ``delta`` and the class counts, not on ``T``.  The cached
enumeration therefore tests feasibility in units of ``T`` with a
*relative* ``1e-9`` tolerance where the reference uses an absolute one
— indistinguishable except for configurations within an absolute
``1e-9`` of the knife edge.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from .. import telemetry

__all__ = [
    "exact_keep_indices",
    "fptas_keep_trace",
    "solve_ptas_dp",
]

_INF = float("inf")


# ----------------------------------------------------------------------
# Knapsack kernels
# ----------------------------------------------------------------------
def exact_keep_indices(
    s: np.ndarray, c: np.ndarray, ws: np.ndarray, cap: int
) -> tuple[int, ...]:
    """Kept-index trace of the exact keep-max-cost DP.

    ``ws``/``cap`` are the integer size grid produced by the shared
    grid helper in :mod:`repro.core.knapsack`; the trace is identical
    to the reference DP's for every input (see the module docstring for
    why the filters and the short cut preserve it).
    """
    active = np.flatnonzero((c > 0) & (ws <= cap))
    if active.size == 0:
        return ()
    aw = ws[active]
    ac = c[active]
    total_w = int(aw.sum())
    if total_w <= cap:
        # Every positive-cost item fits: the reference argmax lands on
        # the minimal-weight optimum, which is exactly this set.
        telemetry.count("knapsack_cells", active.size)
        return tuple(int(i) for i in active)

    na = active.size
    best = np.zeros(cap + 1)
    take = np.zeros((na, cap + 1), dtype=bool)
    tmp = np.empty(cap + 1)
    reach = 0
    cells = 0
    aw_list = aw.tolist()
    for t in range(na):
        w = aw_list[t]
        reach = min(cap, reach + w)
        hi = reach + 1
        np.add(best[: hi - w], ac[t], out=tmp[w:hi])
        np.greater(tmp[w:hi], best[w:hi], out=take[t, w:hi])
        np.maximum(best[w:hi], tmp[w:hi], out=best[w:hi])
        cells += hi - w
    telemetry.count("knapsack_cells", cells)

    keep: list[int] = []
    v = int(np.argmax(best))
    for t in range(na - 1, -1, -1):
        if take[t, v]:
            keep.append(int(active[t]))
            v -= aw_list[t]
    keep.reverse()
    return tuple(keep)


def fptas_keep_trace(
    s: np.ndarray, c: np.ndarray, scaled: np.ndarray, capacity: float
) -> tuple[list[int], float]:
    """DP part of the FPTAS: traced kept indices plus their total size.

    ``scaled`` is the rounded cost grid; zero-scaled items are excluded
    from the DP exactly as in the reference (the caller reinserts them
    greedily).  Returns ``(keep, total_size)`` with the same trace and
    the same bitwise ``total_size`` as the reference DP.
    """
    pos = np.flatnonzero(scaled > 0)
    if pos.size == 0:
        return [], 0.0
    pw = scaled[pos]
    ps = s[pos]
    # All-fits short cut: the only subset whose scaled cost is the full
    # total is the whole positive set, so when its size fits, the
    # reference trace returns it verbatim.
    tot_size = 0.0
    for x in ps:
        tot_size += float(x)
    if tot_size <= capacity:
        telemetry.count("knapsack_cells", pos.size)
        keep = [int(i) for i in pos]
        return keep, float(s[keep].sum())

    np_ = pos.size
    max_total = int(pw.sum())
    min_size = np.full(max_total + 1, np.inf)
    min_size[0] = 0.0
    take = np.zeros((np_, max_total + 1), dtype=bool)
    tmp = np.empty(max_total + 1)
    reach = 0
    cells = 0
    pw_list = pw.tolist()
    for t in range(np_):
        v = pw_list[t]
        reach = min(max_total, reach + v)
        hi = reach + 1
        np.add(min_size[: hi - v], ps[t], out=tmp[v:hi])
        np.less(tmp[v:hi], min_size[v:hi], out=take[t, v:hi])
        np.minimum(min_size[v:hi], tmp[v:hi], out=min_size[v:hi])
        cells += hi - v
    telemetry.count("knapsack_cells", cells)

    feasible = np.flatnonzero(min_size <= capacity)
    v = int(feasible[-1]) if feasible.size else 0
    keep: list[int] = []
    for t in range(np_ - 1, -1, -1):
        if take[t, v]:
            keep.append(int(pos[t]))
            v -= pw_list[t]
    keep.reverse()
    total = float(s[keep].sum()) if keep else 0.0
    return keep, total


# ----------------------------------------------------------------------
# PTAS configuration DP kernel
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def _normalized_vectors(
    delta: float, num_classes: int, counts: tuple[int, ...], limit: int
) -> np.ndarray:
    """All W-feasible large-class count vectors, in enumeration order.

    Works in units of the guess ``T``: class ``i`` has normalized size
    ``delta * (1 + delta)**(i + 1)`` against the normalized cap
    ``1 + 2 delta``, so the result is reusable across every guess that
    shares ``(delta, counts)`` — the per-class-count-signature cache
    the solvers rely on.
    """
    sizes_norm = [delta * (1.0 + delta) ** (i + 1) for i in range(num_classes)]
    wcap_norm = 1.0 + 2.0 * delta
    out: list[tuple[int, ...]] = []

    def rec(cls: int, current: list[int], load: float) -> None:
        if len(out) > limit:
            raise RuntimeError(
                "PTAS configuration enumeration exceeded "
                f"{limit} entries; reduce instance size or increase eps"
            )
        if cls == num_classes:
            out.append(tuple(current))
            return
        max_count = counts[cls]
        x = 0
        while x <= max_count and load + x * sizes_norm[cls] <= wcap_norm + 1e-9:
            current.append(x)
            rec(cls + 1, current, load + x * sizes_norm[cls])
            current.pop()
            x += 1

    rec(0, [], 0.0)
    mat = np.array(out, dtype=np.int64)
    return mat.reshape(len(out), num_classes)


def solve_ptas_dp(
    disc, m: int, limits
) -> tuple[float, list[tuple[tuple[int, ...], int]]] | None:
    """Iterative layered replacement for the reference ``_solve_dp``.

    Same contract: ``(min_cost, per-processor configs)`` or ``None``
    when no exact distribution of the small allowance exists; raises
    ``RuntimeError`` under the same resource guards as the reference.
    """
    s_cls = disc.num_classes
    counts = tuple(int(x) for x in disc.class_counts)
    vec_mat = _normalized_vectors(
        disc.delta, s_cls, counts, limits.max_configs_per_processor
    )
    num_vecs = vec_mat.shape[0]
    unit = disc.unit

    # Per-guess rescale: loads accumulated class-ascending, matching
    # the reference enumeration's left-to-right accumulation bit for
    # bit, so the v_max floor divisions below agree with it.
    loads = np.zeros(num_vecs)
    for cls in range(s_cls):
        loads += vec_mat[:, cls] * disc.class_sizes[cls]
    ppc = int((disc.w_cap + 1e-9) // unit)
    vmax_all = ((disc.w_cap - loads + 1e-9) // unit).astype(np.int64)
    np.minimum(vmax_all, ppc, out=vmax_all)

    # Mixed-radix state encoding: class digits (class 0 most
    # significant) then the small-unit digit with weight 1.
    vn1 = disc.total_small_units + 1
    weights = [0] * s_cls
    w = 1
    for cls in range(s_cls - 1, -1, -1):
        weights[cls] = w
        w *= counts[cls] + 1
    vmix = (vec_mat * np.array(weights, dtype=np.int64)).sum(axis=1)
    offsets = (vmix * vn1).tolist()
    vmax_list = vmax_all.tolist()
    root_mix = sum(counts[cls] * weights[cls] for cls in range(s_cls))
    root_code = root_mix * vn1 + disc.total_small_units

    # Per-processor edge tables: edge[p][k][v'] = large-removal cost of
    # vector k on processor p plus the small-removal cost of allowance
    # v' — precomputed once instead of per transition.
    targets = np.arange(ppc + 1) * unit
    slack = targets + unit
    sc_mat = np.zeros((m, ppc + 1))
    for p in range(m):
        v_small = disc.small_load[p]
        prefix = disc.small_size_prefix[p]
        need = v_small - slack
        r = np.searchsorted(prefix, need - 1e-12, side="left")
        np.minimum(r, prefix.shape[0] - 1, out=r)
        row = disc.small_cost_prefix[p][r]
        row[v_small <= slack + 1e-12] = 0.0
        sc_mat[p] = row
    lc_mat = np.zeros((m, num_vecs))
    for p in range(m):
        acc = np.zeros(num_vecs)
        for cls in range(s_cls):
            have = len(disc.large_by_class[p][cls])
            kept = np.minimum(vec_mat[:, cls], have)
            acc += disc.large_cost_prefix[p][cls][have - kept]
        lc_mat[p] = acc

    # Feasible vectors per distinct class-count residue (mix code),
    # shared across layers and small-unit digits.
    feas_cache: dict[int, list[tuple[int, int, int]]] = {}
    radices = [counts[cls] + 1 for cls in range(s_cls)]

    def feas(mix: int) -> list[tuple[int, int, int]]:
        got = feas_cache.get(mix)
        if got is not None:
            return got
        digits = np.empty(s_cls, dtype=np.int64)
        rem = mix
        for cls in range(s_cls):
            digits[cls] = rem // weights[cls]
            rem -= digits[cls] * weights[cls]
        ok = np.flatnonzero((vec_mat <= digits).all(axis=1))
        entry = [(int(k), offsets[k], vmax_list[k]) for k in ok]
        feas_cache[mix] = entry
        return entry

    # Forward pass: reachable states per layer (state dedup).
    layers: list[list[int]] = [[root_code]]
    seen_states = 1
    frontier = {root_code}
    for proc in range(m - 1):
        absorb = (m - proc - 1) * ppc
        nxt: set[int] = set()
        for code in frontier:
            mix, v = divmod(code, vn1)
            vlo_floor = v - absorb
            if vlo_floor < 0:
                vlo_floor = 0
            for _k, off, vmaxk in feas(mix):
                vm = vmaxk if vmaxk < v else v
                base = code - off
                for vp in range(vlo_floor, vm + 1):
                    nxt.add(base - vp)
        seen_states += len(nxt)
        if seen_states > limits.max_states:
            raise RuntimeError(
                f"PTAS DP exceeded {limits.max_states} states; "
                "reduce instance size or increase eps"
            )
        layers.append(sorted(nxt))
        frontier = nxt
    telemetry.count("ptas_dp_states", seen_states)

    # Backward pass: exact suffix costs with the reference's candidate
    # order (vectors in enumeration order, allowance descending) and
    # strict-improvement updates, so ties resolve identically.
    suffix: dict[int, float] = {0: 0.0}
    choices: list[dict[int, tuple[int, int]]] = [dict() for _ in range(m)]
    for proc in range(m - 1, -1, -1):
        lc_p = lc_mat[proc].tolist()
        edge_p = (lc_mat[proc][:, None] + sc_mat[proc][None, :]).tolist()
        absorb = (m - proc - 1) * ppc
        cur: dict[int, float] = {}
        choice_p = choices[proc]
        nxt_get = suffix.get
        for code in layers[proc]:
            mix, v = divmod(code, vn1)
            vlo = v - absorb
            if vlo < 0:
                vlo = 0
            best = _INF
            best_k = -1
            best_vp = -1
            for k, off, vmaxk in feas(mix):
                lc = lc_p[k]
                if lc >= best:
                    continue
                erow = edge_p[k]
                vm = vmaxk if vmaxk < v else v
                base = code - off
                for vp in range(vm, vlo - 1, -1):
                    cost = erow[vp]
                    if cost >= best:
                        # Small-removal cost grows as the allowance
                        # shrinks; no smaller vp can improve on this k.
                        break
                    sub = nxt_get(base - vp)
                    if sub is None:
                        continue
                    total = cost + sub
                    if total < best:
                        best = total
                        best_k = k
                        best_vp = vp
            if best_k >= 0:
                cur[code] = best
                choice_p[code] = (best_k, best_vp)
        suffix = cur

    total_cost = suffix.get(root_code, _INF)
    if not math.isfinite(total_cost):
        return None

    configs: list[tuple[tuple[int, ...], int]] = []
    code = root_code
    for proc in range(m):
        k, vp = choices[proc][code]
        configs.append((tuple(int(x) for x in vec_mat[k]), vp))
        code = code - offsets[k] - vp
    return total_cost, configs
