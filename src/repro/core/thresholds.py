"""Threshold enumeration for M-PARTITION (Section 3.1, Lemma 5).

PARTITION needs to classify jobs as large (size strictly greater than
``OPT/2``) and to compute, per processor ``i``,

* ``a_i`` — the minimum number of small jobs to remove so that the
  remaining small jobs total at most ``OPT/2``;
* ``b_i`` — the minimum number of jobs (including the kept large job,
  if any) to remove so that the remaining jobs total at most ``OPT``.

As the guess ``A`` for ``OPT`` increases, these quantities change only
when ``A`` crosses one of a discrete set of *threshold values*
(Lemma 5):

* ``2 * p_j`` for every job ``j`` — where the large/small status of
  job ``j`` flips (large iff ``p_j > A/2``, i.e. iff ``A < 2 p_j``);
* the prefix sums ``P_{i,l}`` of each processor's jobs sorted in
  increasing size order — where ``b_i`` decrements (keeping the ``l``
  smallest jobs is feasible iff ``P_{i,l} <= A``);
* twice those prefix sums — where ``a_i`` decrements (keeping the
  ``l`` smallest small jobs is feasible iff ``P_{i,l} <= A/2``).

Because the small jobs on a processor are always a *prefix* of its
ascending size order, the prefix sums of the all-jobs ascending order
cover every small-set prefix sum for every classification regime, so
the union above is a complete threshold set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .instance import Instance

__all__ = [
    "ProcessorTable",
    "ThresholdTables",
    "build_tables",
    "candidate_guesses",
    "patch_tables",
    "patch_tables_hint",
    "proc_candidates",
    "scan_start",
]


@dataclass(frozen=True)
class ProcessorTable:
    """Precomputed per-processor data for guess evaluation.

    Attributes
    ----------
    jobs_asc:
        Job indices on this processor, sorted ascending by
        ``(size, index)``.
    sizes_asc:
        The corresponding sizes (ascending).
    prefix:
        ``prefix[l]`` = total size of the ``l`` smallest jobs
        (``prefix[0] == 0.0``).
    """

    jobs_asc: np.ndarray
    sizes_asc: np.ndarray
    prefix: np.ndarray

    @property
    def num_jobs(self) -> int:
        return int(self.sizes_asc.shape[0])

    def small_count(self, guess: float) -> int:
        """Number of jobs of size at most ``guess / 2`` (the smalls)."""
        return int(np.searchsorted(self.sizes_asc, guess / 2.0, side="right"))

    def a_value(self, guess: float) -> int:
        """``a_i``: removals so the remaining smalls total <= guess/2.

        Removing the largest smalls first is optimal for minimizing the
        removal count, so ``a_i = s_cnt - max{l : P_l <= guess/2}``.
        """
        s_cnt = self.small_count(guess)
        keep = int(
            np.searchsorted(self.prefix[: s_cnt + 1], guess / 2.0, side="right") - 1
        )
        return s_cnt - keep

    def b_value(self, guess: float) -> int:
        """``b_i``: removals so the remaining jobs total <= guess.

        Computed on the *post-Step-1* configuration: all small jobs plus
        the smallest large job (if any) — which is exactly the first
        ``min(s_cnt + 1, n_i)`` jobs in ascending order.
        """
        s_cnt = self.small_count(guess)
        q = self.num_jobs if s_cnt == self.num_jobs else s_cnt + 1
        keep = int(np.searchsorted(self.prefix[: q + 1], guess, side="right") - 1)
        return q - keep

    def has_large(self, guess: float) -> bool:
        """True if the processor initially holds at least one large job."""
        return self.small_count(guess) < self.num_jobs

    def evaluate(self, guess: float) -> tuple[int, int, int]:
        """``(a_i, b_i, large_count)`` at ``guess`` with one shared
        small-count lookup — the per-refresh unit of the incremental
        scan, where the three separate accessors' repeated
        ``searchsorted`` dispatches add up."""
        s_cnt = int(np.searchsorted(self.sizes_asc, guess / 2.0, side="right"))
        keep_a = int(
            np.searchsorted(self.prefix[: s_cnt + 1], guess / 2.0, side="right") - 1
        )
        q = self.num_jobs if s_cnt == self.num_jobs else s_cnt + 1
        keep_b = int(np.searchsorted(self.prefix[: q + 1], guess, side="right") - 1)
        return s_cnt - keep_a, q - keep_b, self.num_jobs - s_cnt


@dataclass(frozen=True)
class ThresholdTables:
    """All precomputed data needed to evaluate guesses quickly."""

    instance: Instance
    processors: tuple[ProcessorTable, ...]
    sizes_asc: np.ndarray  # all job sizes, ascending

    def total_large(self, guess: float) -> int:
        """``L_T``: total number of large jobs at this guess."""
        small = int(np.searchsorted(self.sizes_asc, guess / 2.0, side="right"))
        return int(self.sizes_asc.shape[0]) - small


def build_tables(instance: Instance) -> ThresholdTables:
    """Sort each processor's jobs and build prefix sums.

    ``O(n log n)`` total, matching the first-run cost in Theorem 3.
    """
    order = np.lexsort((np.arange(instance.num_jobs), instance.sizes))
    # Bucket the globally sorted jobs by processor; each bucket stays
    # sorted ascending by (size, index).
    buckets: list[list[int]] = [[] for _ in range(instance.num_processors)]
    for j in order:
        buckets[int(instance.initial[j])].append(int(j))
    processors = []
    for bucket in buckets:
        jobs_asc = np.asarray(bucket, dtype=np.int64)
        sizes_asc = instance.sizes[jobs_asc] if bucket else np.empty(0)
        prefix = np.concatenate(([0.0], np.cumsum(sizes_asc)))
        processors.append(
            ProcessorTable(jobs_asc=jobs_asc, sizes_asc=sizes_asc, prefix=prefix)
        )
    return ThresholdTables(
        instance=instance,
        processors=tuple(processors),
        sizes_asc=np.sort(instance.sizes),
    )


def patch_tables(
    tables: ThresholdTables, instance: Instance
) -> tuple[ThresholdTables, int]:
    """Tables valid for ``instance``, reusing unchanged processor buckets.

    Compares ``instance`` against ``tables.instance`` job by job; only
    the processors that gained, lost or resized a job get their
    ascending order and prefix sums rebuilt.  The rebuild of the
    affected buckets is one vectorized lexsort over the affected jobs —
    ``O(changed_jobs * log(changed_jobs))`` plus ``O(n)`` for the diff
    masks — instead of :func:`build_tables`'s full ``O(n)`` Python
    bucketing pass.

    Returns ``(new_tables, buckets_patched)``.  Falls back to a full
    :func:`build_tables` (returning ``buckets_patched == -1``) when the
    job count or processor count differs, since no per-bucket diff is
    meaningful then.
    """
    old = tables.instance
    if (
        old.num_jobs != instance.num_jobs
        or old.num_processors != instance.num_processors
    ):
        return build_tables(instance), -1
    size_changed = old.sizes != instance.sizes
    moved = old.initial != instance.initial
    changed_jobs = size_changed | moved
    if not changed_jobs.any():
        if old is instance:
            return tables, 0
        return (
            ThresholdTables(
                instance=instance,
                processors=tables.processors,
                sizes_asc=tables.sizes_asc,
            ),
            0,
        )
    changed_procs = np.unique(
        np.concatenate(
            (old.initial[changed_jobs], instance.initial[changed_jobs])
        )
    )
    affected_mask = np.zeros(instance.num_processors, dtype=bool)
    affected_mask[changed_procs] = True
    affected_jobs = np.flatnonzero(affected_mask[instance.initial])
    # One sort groups every affected job by (processor, size, index) —
    # the exact per-bucket order build_tables produces.
    order = np.lexsort(
        (
            affected_jobs,
            instance.sizes[affected_jobs],
            instance.initial[affected_jobs],
        )
    )
    sorted_jobs = affected_jobs[order]
    sorted_procs = instance.initial[sorted_jobs]
    starts = np.searchsorted(sorted_procs, changed_procs, side="left")
    ends = np.searchsorted(sorted_procs, changed_procs, side="right")
    processors = list(tables.processors)
    for p, lo, hi in zip(changed_procs, starts, ends):
        jobs_asc = sorted_jobs[lo:hi]
        sizes_asc = instance.sizes[jobs_asc] if hi > lo else np.empty(0)
        prefix = np.concatenate(([0.0], np.cumsum(sizes_asc)))
        processors[int(p)] = ProcessorTable(
            jobs_asc=jobs_asc, sizes_asc=sizes_asc, prefix=prefix
        )
    sizes_asc = np.sort(instance.sizes) if size_changed.any() else tables.sizes_asc
    return (
        ThresholdTables(
            instance=instance,
            processors=tuple(processors),
            sizes_asc=sizes_asc,
        ),
        int(changed_procs.shape[0]),
    )


def patch_tables_hint(
    tables: ThresholdTables,
    instance: Instance,
    idx: np.ndarray,
    old_initial: np.ndarray,
) -> tuple[ThresholdTables, np.ndarray]:
    """Patch tables from an *explicit* churn set, without diffing arrays.

    The O(churn) server path mutates each shard's resident arrays in
    place, so ``tables.instance`` may alias ``instance`` and a value
    diff (:func:`patch_tables`) is meaningless.  Instead the caller
    names the changed jobs: ``idx`` (unique, ascending) are the job
    indices whose size, cost, or placement changed since the tables
    were last valid, and ``old_initial`` their placements *at that
    time*.  New values are read from ``instance``.

    Each affected bucket is rebuilt by a sorted merge — drop the
    changed jobs (O(bucket)), insert the arrivals at their
    ``(size, index)`` positions (O(arrivals · log bucket) plus one
    O(bucket) ``np.insert``), recompute the prefix sums — so the cost is
    ``O(changed_buckets · bucket_size)``, all memcpy-grade numpy passes,
    with no sort over the bucket.  The resulting buckets are
    byte-identical to a :func:`build_tables` rebuild (enforced by
    differential tests).

    ``tables.sizes_asc`` is **not** updated (that would be an O(n)
    merge per epoch); the returned tables carry the stale array and the
    caller owns the discipline of never reading it until refreshed —
    see :class:`repro.core.engine.RebalanceEngine`, which re-sorts it
    lazily on the next full-scan decide.

    Returns ``(new_tables, changed_procs)`` with the affected processor
    indices (for candidate-stream maintenance).
    """
    n = instance.num_jobs
    if idx.shape[0] == 0:
        if tables.instance is instance:
            return tables, idx
        return (
            ThresholdTables(
                instance=instance,
                processors=tables.processors,
                sizes_asc=tables.sizes_asc,
            ),
            idx,
        )
    new_initial = instance.initial[idx]
    changed_procs = np.unique(np.concatenate((old_initial, new_initial)))
    # Arrivals grouped by destination bucket in (size, index) order —
    # the exact per-bucket order build_tables produces.
    sizes_new = instance.sizes[idx]
    order = np.lexsort((idx, sizes_new, new_initial))
    arr_jobs = idx[order]
    arr_sizes = sizes_new[order]
    arr_procs = new_initial[order]
    starts = np.searchsorted(arr_procs, changed_procs, side="left")
    ends = np.searchsorted(arr_procs, changed_procs, side="right")
    changed_flags = np.zeros(n, dtype=bool)
    changed_flags[idx] = True
    processors = list(tables.processors)
    for p, lo, hi in zip(changed_procs, starts, ends):
        old_pt = processors[int(p)]
        if old_pt.num_jobs:
            drop = changed_flags[old_pt.jobs_asc]
            kept_jobs = old_pt.jobs_asc[~drop]
            kept_sizes = old_pt.sizes_asc[~drop]
        else:
            kept_jobs = old_pt.jobs_asc
            kept_sizes = old_pt.sizes_asc
        a_jobs = arr_jobs[lo:hi]
        if a_jobs.size:
            a_sizes = arr_sizes[lo:hi]
            ins = np.searchsorted(kept_sizes, a_sizes, side="left")
            kn = int(kept_jobs.shape[0])
            for t in range(int(a_jobs.shape[0])):
                # Advance within the equal-size run so ties land in
                # (size, index) order against the kept jobs.
                pos = int(ins[t])
                s = a_sizes[t]
                j = a_jobs[t]
                while pos < kn and kept_sizes[pos] == s and kept_jobs[pos] < j:
                    pos += 1
                ins[t] = pos
            jobs_asc = _scatter_insert(kept_jobs, a_jobs, ins)
            sizes_asc = _scatter_insert(kept_sizes, a_sizes, ins)
        else:
            jobs_asc = kept_jobs
            sizes_asc = kept_sizes
        prefix = np.concatenate(([0.0], np.cumsum(sizes_asc)))
        processors[int(p)] = ProcessorTable(
            jobs_asc=jobs_asc, sizes_asc=sizes_asc, prefix=prefix
        )
    return (
        ThresholdTables(
            instance=instance,
            processors=tuple(processors),
            sizes_asc=tables.sizes_asc,
        ),
        changed_procs,
    )


def _scatter_insert(
    a_jobs: np.ndarray, b_jobs: np.ndarray, ins: np.ndarray
) -> np.ndarray:
    """``np.insert(a, ins, b)`` for sorted position arrays, hand-rolled.

    ``np.insert`` carries enough Python-level overhead (argument
    normalization, index fixups) to dominate the per-bucket patch cost;
    this is the same scatter in four numpy passes.  ``ins`` must be
    non-decreasing positions into ``a``.
    """
    out = np.empty(a_jobs.shape[0] + b_jobs.shape[0], dtype=a_jobs.dtype)
    b_pos = ins + np.arange(b_jobs.shape[0], dtype=np.int64)
    out[b_pos] = b_jobs
    mask = np.ones(out.shape[0], dtype=bool)
    mask[b_pos] = False
    out[mask] = a_jobs
    return out


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two ascending float arrays (duplicates kept), O(|a| + |b|)."""
    if not a.shape[0]:
        return b
    if not b.shape[0]:
        return a
    return _scatter_insert(a, b, np.searchsorted(a, b, side="left"))


def proc_candidates(proc: ProcessorTable) -> np.ndarray:
    """One processor's Lemma-5 threshold values, ascending (dups kept).

    The union of these streams over all processors equals the value set
    of :func:`candidate_guesses`; the engine's O(churn) scan slices
    windows of the per-processor streams instead of materializing (and
    re-sorting) the global union each epoch, so a churn that touches
    ``c`` buckets only rebuilds ``c`` streams.  Duplicate values are
    deduplicated at scan time, not here — keeping the build a pure
    sorted merge.
    """
    if proc.num_jobs == 0:
        return np.empty(0)
    pre = proc.prefix[1:]
    return _merge_sorted(
        _merge_sorted(pre, 2.0 * pre), 2.0 * proc.sizes_asc
    )


def scan_start(candidates: np.ndarray, average_load: float) -> int:
    """Index of the largest threshold not exceeding ``average_load``.

    This is M-PARTITION's starting guess (Section 3.1: the average load
    never exceeds ``OPT``).  The result is clamped into
    ``[0, len(candidates) - 1]`` so the scan always starts on a real
    threshold: when every candidate exceeds the average the scan starts
    at the smallest one, and when the average exceeds every candidate
    (only possible through float round-off — the heaviest processor's
    full load is itself a candidate and bounds the average from above)
    the scan starts at the largest one instead of indexing past the end.
    Every scanner (rescan, incremental, engine) shares this helper so
    they stop at the same threshold by construction.
    """
    if candidates.shape[0] == 0:
        return 0
    start = int(np.searchsorted(candidates, average_load, side="right")) - 1
    return min(max(start, 0), int(candidates.shape[0]) - 1)


def candidate_guesses(tables: ThresholdTables) -> np.ndarray:
    """All threshold values for the guess ``A``, sorted ascending.

    Per Lemma 5 the tuple ``(L_T, a_1..a_m, b_1..b_m)`` is constant for
    ``A`` between consecutive values of this set, so M-PARTITION only
    ever needs to try these ``O(n)`` guesses.
    """
    parts: list[np.ndarray] = [2.0 * tables.sizes_asc]
    for proc in tables.processors:
        if proc.num_jobs:
            parts.append(proc.prefix[1:])
            parts.append(2.0 * proc.prefix[1:])
    if not parts:
        return np.empty(0)
    return np.unique(np.concatenate(parts))
