"""Threshold enumeration for M-PARTITION (Section 3.1, Lemma 5).

PARTITION needs to classify jobs as large (size strictly greater than
``OPT/2``) and to compute, per processor ``i``,

* ``a_i`` — the minimum number of small jobs to remove so that the
  remaining small jobs total at most ``OPT/2``;
* ``b_i`` — the minimum number of jobs (including the kept large job,
  if any) to remove so that the remaining jobs total at most ``OPT``.

As the guess ``A`` for ``OPT`` increases, these quantities change only
when ``A`` crosses one of a discrete set of *threshold values*
(Lemma 5):

* ``2 * p_j`` for every job ``j`` — where the large/small status of
  job ``j`` flips (large iff ``p_j > A/2``, i.e. iff ``A < 2 p_j``);
* the prefix sums ``P_{i,l}`` of each processor's jobs sorted in
  increasing size order — where ``b_i`` decrements (keeping the ``l``
  smallest jobs is feasible iff ``P_{i,l} <= A``);
* twice those prefix sums — where ``a_i`` decrements (keeping the
  ``l`` smallest small jobs is feasible iff ``P_{i,l} <= A/2``).

Because the small jobs on a processor are always a *prefix* of its
ascending size order, the prefix sums of the all-jobs ascending order
cover every small-set prefix sum for every classification regime, so
the union above is a complete threshold set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .instance import Instance

__all__ = [
    "ProcessorTable",
    "ThresholdTables",
    "build_tables",
    "candidate_guesses",
    "patch_tables",
    "scan_start",
]


@dataclass(frozen=True)
class ProcessorTable:
    """Precomputed per-processor data for guess evaluation.

    Attributes
    ----------
    jobs_asc:
        Job indices on this processor, sorted ascending by
        ``(size, index)``.
    sizes_asc:
        The corresponding sizes (ascending).
    prefix:
        ``prefix[l]`` = total size of the ``l`` smallest jobs
        (``prefix[0] == 0.0``).
    """

    jobs_asc: np.ndarray
    sizes_asc: np.ndarray
    prefix: np.ndarray

    @property
    def num_jobs(self) -> int:
        return int(self.sizes_asc.shape[0])

    def small_count(self, guess: float) -> int:
        """Number of jobs of size at most ``guess / 2`` (the smalls)."""
        return int(np.searchsorted(self.sizes_asc, guess / 2.0, side="right"))

    def a_value(self, guess: float) -> int:
        """``a_i``: removals so the remaining smalls total <= guess/2.

        Removing the largest smalls first is optimal for minimizing the
        removal count, so ``a_i = s_cnt - max{l : P_l <= guess/2}``.
        """
        s_cnt = self.small_count(guess)
        keep = int(
            np.searchsorted(self.prefix[: s_cnt + 1], guess / 2.0, side="right") - 1
        )
        return s_cnt - keep

    def b_value(self, guess: float) -> int:
        """``b_i``: removals so the remaining jobs total <= guess.

        Computed on the *post-Step-1* configuration: all small jobs plus
        the smallest large job (if any) — which is exactly the first
        ``min(s_cnt + 1, n_i)`` jobs in ascending order.
        """
        s_cnt = self.small_count(guess)
        q = self.num_jobs if s_cnt == self.num_jobs else s_cnt + 1
        keep = int(np.searchsorted(self.prefix[: q + 1], guess, side="right") - 1)
        return q - keep

    def has_large(self, guess: float) -> bool:
        """True if the processor initially holds at least one large job."""
        return self.small_count(guess) < self.num_jobs


@dataclass(frozen=True)
class ThresholdTables:
    """All precomputed data needed to evaluate guesses quickly."""

    instance: Instance
    processors: tuple[ProcessorTable, ...]
    sizes_asc: np.ndarray  # all job sizes, ascending

    def total_large(self, guess: float) -> int:
        """``L_T``: total number of large jobs at this guess."""
        small = int(np.searchsorted(self.sizes_asc, guess / 2.0, side="right"))
        return int(self.sizes_asc.shape[0]) - small


def build_tables(instance: Instance) -> ThresholdTables:
    """Sort each processor's jobs and build prefix sums.

    ``O(n log n)`` total, matching the first-run cost in Theorem 3.
    """
    order = np.lexsort((np.arange(instance.num_jobs), instance.sizes))
    # Bucket the globally sorted jobs by processor; each bucket stays
    # sorted ascending by (size, index).
    buckets: list[list[int]] = [[] for _ in range(instance.num_processors)]
    for j in order:
        buckets[int(instance.initial[j])].append(int(j))
    processors = []
    for bucket in buckets:
        jobs_asc = np.asarray(bucket, dtype=np.int64)
        sizes_asc = instance.sizes[jobs_asc] if bucket else np.empty(0)
        prefix = np.concatenate(([0.0], np.cumsum(sizes_asc)))
        processors.append(
            ProcessorTable(jobs_asc=jobs_asc, sizes_asc=sizes_asc, prefix=prefix)
        )
    return ThresholdTables(
        instance=instance,
        processors=tuple(processors),
        sizes_asc=np.sort(instance.sizes),
    )


def patch_tables(
    tables: ThresholdTables, instance: Instance
) -> tuple[ThresholdTables, int]:
    """Tables valid for ``instance``, reusing unchanged processor buckets.

    Compares ``instance`` against ``tables.instance`` job by job; only
    the processors that gained, lost or resized a job get their
    ascending order and prefix sums rebuilt.  The rebuild of the
    affected buckets is one vectorized lexsort over the affected jobs —
    ``O(changed_jobs * log(changed_jobs))`` plus ``O(n)`` for the diff
    masks — instead of :func:`build_tables`'s full ``O(n)`` Python
    bucketing pass.

    Returns ``(new_tables, buckets_patched)``.  Falls back to a full
    :func:`build_tables` (returning ``buckets_patched == -1``) when the
    job count or processor count differs, since no per-bucket diff is
    meaningful then.
    """
    old = tables.instance
    if (
        old.num_jobs != instance.num_jobs
        or old.num_processors != instance.num_processors
    ):
        return build_tables(instance), -1
    size_changed = old.sizes != instance.sizes
    moved = old.initial != instance.initial
    changed_jobs = size_changed | moved
    if not changed_jobs.any():
        if old is instance:
            return tables, 0
        return (
            ThresholdTables(
                instance=instance,
                processors=tables.processors,
                sizes_asc=tables.sizes_asc,
            ),
            0,
        )
    changed_procs = np.unique(
        np.concatenate(
            (old.initial[changed_jobs], instance.initial[changed_jobs])
        )
    )
    affected_mask = np.zeros(instance.num_processors, dtype=bool)
    affected_mask[changed_procs] = True
    affected_jobs = np.flatnonzero(affected_mask[instance.initial])
    # One sort groups every affected job by (processor, size, index) —
    # the exact per-bucket order build_tables produces.
    order = np.lexsort(
        (
            affected_jobs,
            instance.sizes[affected_jobs],
            instance.initial[affected_jobs],
        )
    )
    sorted_jobs = affected_jobs[order]
    sorted_procs = instance.initial[sorted_jobs]
    starts = np.searchsorted(sorted_procs, changed_procs, side="left")
    ends = np.searchsorted(sorted_procs, changed_procs, side="right")
    processors = list(tables.processors)
    for p, lo, hi in zip(changed_procs, starts, ends):
        jobs_asc = sorted_jobs[lo:hi]
        sizes_asc = instance.sizes[jobs_asc] if hi > lo else np.empty(0)
        prefix = np.concatenate(([0.0], np.cumsum(sizes_asc)))
        processors[int(p)] = ProcessorTable(
            jobs_asc=jobs_asc, sizes_asc=sizes_asc, prefix=prefix
        )
    sizes_asc = np.sort(instance.sizes) if size_changed.any() else tables.sizes_asc
    return (
        ThresholdTables(
            instance=instance,
            processors=tuple(processors),
            sizes_asc=sizes_asc,
        ),
        int(changed_procs.shape[0]),
    )


def scan_start(candidates: np.ndarray, average_load: float) -> int:
    """Index of the largest threshold not exceeding ``average_load``.

    This is M-PARTITION's starting guess (Section 3.1: the average load
    never exceeds ``OPT``).  The result is clamped into
    ``[0, len(candidates) - 1]`` so the scan always starts on a real
    threshold: when every candidate exceeds the average the scan starts
    at the smallest one, and when the average exceeds every candidate
    (only possible through float round-off — the heaviest processor's
    full load is itself a candidate and bounds the average from above)
    the scan starts at the largest one instead of indexing past the end.
    Every scanner (rescan, incremental, engine) shares this helper so
    they stop at the same threshold by construction.
    """
    if candidates.shape[0] == 0:
        return 0
    start = int(np.searchsorted(candidates, average_load, side="right")) - 1
    return min(max(start, 0), int(candidates.shape[0]) - 1)


def candidate_guesses(tables: ThresholdTables) -> np.ndarray:
    """All threshold values for the guess ``A``, sorted ascending.

    Per Lemma 5 the tuple ``(L_T, a_1..a_m, b_1..b_m)`` is constant for
    ``A`` between consecutive values of this set, so M-PARTITION only
    ever needs to try these ``O(n)`` guesses.
    """
    parts: list[np.ndarray] = [2.0 * tables.sizes_asc]
    for proc in tables.processors:
        if proc.num_jobs:
            parts.append(proc.prefix[1:])
            parts.append(2.0 * proc.prefix[1:])
    if not parts:
        return np.empty(0)
    return np.unique(np.concatenate(parts))
