"""Job value type for the load rebalancing problem.

A job has a positive size (processing requirement) and a non-negative
relocation cost.  In the unit-cost variant of the problem (Definition 1
of the paper, first form) every job has relocation cost 1 and the budget
is the move count ``k``.  In the weighted variant (Definition 1, second
form) job ``i`` has an arbitrary relocation cost ``c_i`` and the budget
is a total cost ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Job:
    """A single job.

    Ordering is by ``(size, cost, index)`` so that sorted containers of
    jobs behave deterministically; the paper indexes jobs in
    non-increasing order of size (``s_1 >= s_2 >= ... >= s_n``).

    Attributes
    ----------
    size:
        Processing requirement; strictly positive.
    cost:
        Relocation cost ``c_i``; non-negative.  ``1.0`` for the
        unit-cost problem.
    index:
        Position of the job in the owning
        :class:`~repro.core.instance.Instance`.  Unique per instance.
    """

    size: float
    cost: float
    index: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"job size must be positive, got {self.size!r}")
        if self.cost < 0:
            raise ValueError(f"job cost must be non-negative, got {self.cost!r}")
        if self.index < 0:
            raise ValueError(f"job index must be non-negative, got {self.index!r}")

    def is_large(self, threshold: float) -> bool:
        """Return True if this job is *large* relative to ``threshold``.

        Definition 1 of Section 3 classifies jobs of size strictly
        greater than ``OPT / 2`` as large; the caller passes the
        appropriate threshold (``OPT / 2`` for PARTITION,
        ``delta * OPT`` for the PTAS of Section 4).
        """
        return self.size > threshold
