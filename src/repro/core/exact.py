"""Exact optimal rebalancing for small instances.

The load rebalancing problem is NP-complete (Section 2: set ``k = n``
and it contains multiprocessor scheduling), so exact solutions are only
tractable for small instances — which is precisely what the benchmark
harness needs them for: the theorems bound ratios *against the optimum*,
and these solvers provide that denominator.

:func:`exact_rebalance` is a depth-first branch-and-bound over complete
assignments: jobs are placed in non-increasing size order, keeping each
job's home processor as the first branch (a free move), pruning on the
incumbent makespan and on the move/cost budget.

:mod:`repro.core.milp` provides an independent MILP formulation used to
cross-check this solver in the test suite.
"""

from __future__ import annotations

import numpy as np

from .assignment import Assignment
from .greedy import greedy_rebalance
from .instance import Instance
from .result import RebalanceResult

__all__ = ["exact_rebalance"]


def exact_rebalance(
    instance: Instance,
    k: int | None = None,
    budget: float | None = None,
    upper_bound: float | None = None,
    node_limit: int = 50_000_000,
) -> RebalanceResult:
    """Compute an optimal rebalancing by branch-and-bound.

    Parameters
    ----------
    instance:
        The problem instance.
    k:
        Move-count budget (``None`` = unconstrained).
    budget:
        Relocation-cost budget ``B`` (``None`` = unconstrained).
    upper_bound:
        Optional incumbent makespan to start from; defaults to the
        better of the initial makespan and (for the unit-cost case)
        GREEDY's result, which tightens pruning considerably.
    node_limit:
        Safety valve on the number of branch-and-bound nodes.

    Returns
    -------
    RebalanceResult
        With ``meta["nodes"]`` recording the search size and
        ``meta["optimal"] = True``.

    Raises
    ------
    RuntimeError
        If ``node_limit`` is exhausted (the answer would be unproven).
    """
    n = instance.num_jobs
    m = instance.num_processors
    sizes = instance.sizes
    costs = instance.costs
    home = instance.initial

    # Order jobs by non-increasing size: big decisions first.
    order = sorted(range(n), key=lambda j: (-sizes[j], j))

    # Suffix sums of remaining size: lower bound on what must still land.
    suffix = np.zeros(n + 1)
    for pos in range(n - 1, -1, -1):
        suffix[pos] = suffix[pos + 1] + sizes[order[pos]]
    avg_bound = instance.total_size / m

    # Incumbent.
    best_mapping = np.array(home, dtype=np.int64)
    best_makespan = instance.initial_makespan
    if upper_bound is not None:
        best_makespan = min(best_makespan, upper_bound)
    if k is not None:
        seed = greedy_rebalance(instance, k)
        if seed.makespan < best_makespan and (
            budget is None or seed.relocation_cost <= budget
        ):
            best_makespan = seed.makespan
            best_mapping = np.array(seed.assignment.mapping)

    loads = [0.0] * m
    mapping = np.empty(n, dtype=np.int64)
    nodes = 0
    eps = 1e-12 * max(1.0, instance.total_size)

    def lower_bound(pos: int, cur_max: float) -> float:
        # Remaining work must fit somewhere; the average is a bound on
        # the final maximum regardless of placement.
        return max(cur_max, avg_bound, sizes[order[pos]] if pos < n else 0.0)

    def dfs(pos: int, cur_max: float, moves: int, cost: float) -> None:
        nonlocal nodes, best_makespan, best_mapping
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"exact_rebalance exceeded node_limit={node_limit}; "
                "instance too large for exact search"
            )
        if pos == n:
            if cur_max < best_makespan - eps:
                best_makespan = cur_max
                best_mapping = mapping.copy()
            return
        if lower_bound(pos, cur_max) >= best_makespan - eps:
            return
        j = order[pos]
        h = int(home[j])
        # Home first: free.  Then the other processors, cheapest load
        # first (finds good incumbents early).
        others = sorted(
            (p for p in range(m) if p != h), key=lambda p: loads[p]
        )
        for p in [h] + others:
            if p != h:
                if k is not None and moves + 1 > k:
                    continue
                if budget is not None and cost + costs[j] > budget + eps:
                    continue
            new_load = loads[p] + sizes[j]
            if new_load >= best_makespan - eps and new_load > cur_max:
                continue
            loads[p] = new_load
            mapping[j] = p
            dfs(
                pos + 1,
                max(cur_max, new_load),
                moves + (0 if p == h else 1),
                cost + (0.0 if p == h else float(costs[j])),
            )
            loads[p] = new_load - sizes[j]

    dfs(0, 0.0, 0, 0.0)
    assignment = Assignment(instance=instance, mapping=best_mapping)
    assignment.validate(max_moves=k, budget=budget)
    return RebalanceResult(
        assignment=assignment,
        algorithm="exact",
        planned_moves=assignment.num_moves,
        planned_cost=assignment.relocation_cost,
        meta={"nodes": nodes, "optimal": True},
    )
