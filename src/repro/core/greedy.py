"""The GREEDY 2-approximation (Section 2, Theorem 1).

Algorithm GREEDY:

1. Repeat ``k`` times: from the maximum-load processor, remove the
   largest job.
2. Consider the ``k`` removed jobs in an arbitrary order.  Place each of
   them on the current minimum-load processor.

Theorem 1 shows this achieves a *tight* approximation ratio of
``2 - 1/m`` in ``O(n log n)`` time: Lemma 1 proves the load after
Step 1 is at most ``OPT``, and Lemma 2 applies Graham's argument to the
reinsertion step.

This module implements GREEDY with heaps, matching the paper's
``O(n log n)`` bound (``O(n log n)`` sorting + ``O(k log m)``
reinsertion).  The reinsertion order is configurable; the paper's
analysis holds for any order, and descending order (an LPT flavour)
usually performs a little better in practice, so harness code can sweep
both.

Move accounting follows the distinction the paper draws before Lemma 3:
Step 1 performs *removals*, but a removed job that Step 2 places back on
its origin processor is not a *relocation* and consumes no real budget.
:attr:`RebalanceResult.planned_moves` therefore reports the actual
relocation count (always ``<= k``), with the removal count preserved in
``meta["removals"]``; the ``2 - 1/m`` guarantee is stated in terms of
the removals and transfers unchanged.
"""

from __future__ import annotations

import heapq
from typing import Literal

import numpy as np

from .. import telemetry
from .assignment import Assignment
from .instance import Instance
from .result import RebalanceResult

__all__ = ["greedy_rebalance"]

InsertOrder = Literal["removal", "descending", "ascending"]

_INSERT_ORDERS = ("removal", "descending", "ascending")


def greedy_rebalance(
    instance: Instance,
    k: int,
    insert_order: InsertOrder = "removal",
) -> RebalanceResult:
    """Run GREEDY with a budget of ``k`` moves.

    Parameters
    ----------
    instance:
        The problem instance (relocation costs are ignored; GREEDY is
        the unit-cost algorithm).
    k:
        Maximum number of job relocations.
    insert_order:
        Order in which Step 2 reinserts the removed jobs.  ``"removal"``
        is the order Step 1 produced (the paper's "arbitrary" order),
        ``"descending"``/``"ascending"`` sort by size first.  The
        ``2 - 1/m`` guarantee holds for every choice.

    Returns
    -------
    RebalanceResult
        With ``meta["G1"]`` set to the max load after Step 1 (Lemma 1's
        lower bound on ``OPT``), ``meta["G2"]`` to the final makespan
        and ``meta["removals"]`` to the number of Step-1 removals.
        ``planned_moves`` counts actual relocations — removals whose
        job landed away from its origin — so it always equals
        ``assignment.num_moves``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if insert_order not in _INSERT_ORDERS:
        raise ValueError(f"unknown insert_order {insert_order!r}")
    tmark = telemetry.mark()
    m = instance.num_processors
    n = instance.num_jobs
    heap_pops = 0

    # --- Step 1: k removals of the largest job on the max-load processor.
    # Heap entries carry a per-processor version counter; an entry is
    # stale iff its version lags the processor's current one, so
    # correctness never rests on float round-trip identity.
    with telemetry.span("greedy.step1"):
        stacks: list[list[tuple[float, int]]] = [[] for _ in range(m)]
        for j in range(n):
            stacks[int(instance.initial[j])].append(
                (float(instance.sizes[j]), j)
            )
        for stack in stacks:
            stack.sort()  # ascending by (size, index); pop() gives the largest
        loads = [float(x) for x in instance.initial_loads]
        version = [0] * m
        max_heap = [(-loads[p], 0, p) for p in range(m)]
        heapq.heapify(max_heap)

        removed: list[tuple[float, int]] = []
        while len(removed) < k and max_heap:
            neg_load, ver, p = heapq.heappop(max_heap)
            heap_pops += 1
            if ver != version[p]:
                continue  # stale heap entry
            if not stacks[p]:
                heapq.heappush(max_heap, (neg_load, ver, p))
                break  # max-load processor empty => nothing left to remove
            size, j = stacks[p].pop()
            loads[p] -= size
            removed.append((size, j))
            version[p] += 1
            heapq.heappush(max_heap, (-loads[p], version[p], p))
        g1 = max(loads) if loads else 0.0

    # --- Step 2: reinsert each removed job on the min-load processor.
    with telemetry.span("greedy.step2"):
        if insert_order == "descending":
            removed.sort(key=lambda t: -t[0])
        elif insert_order == "ascending":
            removed.sort(key=lambda t: t[0])

        version = [0] * m
        min_heap = [(loads[p], 0, p) for p in range(m)]
        heapq.heapify(min_heap)
        mapping = np.array(instance.initial, dtype=np.int64)
        for size, j in removed:
            _, ver, p = heapq.heappop(min_heap)
            heap_pops += 1
            while ver != version[p]:
                _, ver, p = heapq.heappop(min_heap)  # stale entry
                heap_pops += 1
            mapping[j] = p
            loads[p] += size
            version[p] += 1
            heapq.heappush(min_heap, (loads[p], version[p], p))
        g2 = max(loads) if loads else 0.0

    telemetry.count("heap_pops", heap_pops)
    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(max_moves=k)
    meta = {
        "G1": g1,
        "G2": g2,
        "insert_order": insert_order,
        "removals": len(removed),
    }
    return RebalanceResult(
        assignment=assignment,
        algorithm="greedy",
        planned_moves=assignment.num_moves,
        meta=telemetry.attach(meta, tmark),
    )
