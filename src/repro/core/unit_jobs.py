"""Exact rebalancing for unit-size jobs (the Rudolph et al. model).

Section 1 of the paper notes that prior few-moves schemes (Rudolph,
Slivkin-Allalouf & Upfal; Ghosh et al.) assume *unit-size* jobs, and
positions the paper as removing that assumption.  The unit-size special
case is in fact solvable exactly in polynomial time, which makes it a
valuable oracle: for unit instances, the approximation algorithms can
be tested against a closed-form optimum at any scale (no
branch-and-bound needed).

With all sizes 1, a final assignment is determined (up to which
interchangeable jobs move) by the final per-processor counts
``f_1..f_m`` with ``sum f = n``.  Reaching makespan at most ``T``
requires removing exactly ``max(0, n_i - T)`` jobs from each processor
``i`` — each removal is one move — and the removed jobs can always be
absorbed iff ``T * m >= n``.  Hence::

    moves(T) = sum_i max(0, n_i - T)
    OPT(k)   = min { T >= ceil(n / m) : moves(T) <= k }

``moves(T)`` is non-increasing in ``T``, so ``OPT(k)`` is found by a
binary search over ``T in [ceil(n/m), max_i n_i]``.
"""

from __future__ import annotations

import math

import numpy as np

from .assignment import Assignment
from .instance import Instance
from .result import RebalanceResult

__all__ = ["unit_rebalance_exact", "unit_opt_value"]


def _counts(instance: Instance) -> np.ndarray:
    counts = np.zeros(instance.num_processors, dtype=np.int64)
    np.add.at(counts, instance.initial, 1)
    return counts


def _require_unit(instance: Instance) -> None:
    if instance.num_jobs and not np.all(instance.sizes == instance.sizes[0]):
        raise ValueError(
            "unit_rebalance_exact requires identical job sizes "
            "(the Rudolph et al. model)"
        )


def unit_opt_value(instance: Instance, k: int) -> float:
    """The exact optimal makespan for a unit/uniform-size instance.

    Sizes may be any single common value ``s``; the answer scales to
    ``s * OPT_unit``.
    """
    _require_unit(instance)
    if k < 0:
        raise ValueError("k must be non-negative")
    if instance.num_jobs == 0:
        return 0.0
    size = float(instance.sizes[0])
    counts = _counts(instance)
    lo = math.ceil(instance.num_jobs / instance.num_processors)
    hi = int(counts.max())

    def moves(t: int) -> int:
        return int(np.maximum(counts - t, 0).sum())

    while lo < hi:
        mid = (lo + hi) // 2
        if moves(mid) <= k:
            hi = mid
        else:
            lo = mid + 1
    return size * lo


def unit_rebalance_exact(instance: Instance, k: int) -> RebalanceResult:
    """Optimal rebalancing of a unit/uniform-size instance.

    Builds an explicit optimal assignment: strip the overflow beyond
    the optimal target ``T`` from each overloaded processor (any jobs —
    they are interchangeable) and pour it into processors below ``T``.
    """
    _require_unit(instance)
    if k < 0:
        raise ValueError("k must be non-negative")
    mapping = np.array(instance.initial, dtype=np.int64)
    if instance.num_jobs == 0:
        return RebalanceResult(
            assignment=Assignment.initial(instance),
            algorithm="unit-exact",
            planned_moves=0,
            meta={"optimal": True, "target": 0},
        )
    size = float(instance.sizes[0])
    opt = unit_opt_value(instance, k)
    target = int(round(opt / size))
    counts = _counts(instance)

    surplus: list[int] = []  # job indices leaving overloaded processors
    for p in np.flatnonzero(counts > target):
        jobs = np.flatnonzero(mapping == p)
        for j in jobs[: int(counts[p]) - target]:
            surplus.append(int(j))
    deficits = [
        (int(p), int(target - counts[p]))
        for p in np.flatnonzero(counts < target)
    ]
    it = iter(surplus)
    for p, room in deficits:
        for _ in range(room):
            j = next(it, None)
            if j is None:
                break
            mapping[j] = p
    assert next(it, None) is None, "surplus jobs left unplaced"

    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(max_moves=k, max_makespan=opt)
    return RebalanceResult(
        assignment=assignment,
        algorithm="unit-exact",
        planned_moves=assignment.num_moves,
        meta={"optimal": True, "target": target},
    )
