"""Independent solution certification.

Algorithms can be wrong; certificates cannot.  ``certify`` re-derives
everything about a :class:`~repro.core.result.RebalanceResult` from
first principles — load conservation, budget compliance, and a *proven*
bound on the approximation ratio obtained by dividing the achieved
makespan by the best lower bound on ``OPT`` (average load, maximum job
size, and Lemma 1's greedy-removal bound).  The proven ratio requires
no exact solver, so it certifies solutions at any scale.

The experiment harness and the test suite both route results through
this module, so a bug in an algorithm's own bookkeeping cannot
silently survive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .instance import Instance
from .lower_bounds import combined_lower_bound
from .result import RebalanceResult

__all__ = ["Certificate", "certify"]


@dataclass(frozen=True)
class Certificate:
    """Everything provable about one rebalancing result.

    ``proven_ratio`` is an upper bound on the true approximation ratio:
    ``makespan / max(lower bounds on OPT)``.  A certificate with
    ``proven_ratio <= 1.5`` *proves* the solution is 1.5-optimal even
    when the exact optimum is unknown.
    """

    valid: bool
    makespan: float
    moves: int
    relocation_cost: float
    opt_lower_bound: float
    proven_ratio: float
    violations: tuple[str, ...]

    def require(self, max_ratio: float | None = None) -> None:
        """Raise ``AssertionError`` on any violation (or ratio breach)."""
        assert self.valid, f"certificate violations: {self.violations}"
        if max_ratio is not None:
            assert self.proven_ratio <= max_ratio + 1e-9, (
                f"proven ratio {self.proven_ratio} exceeds {max_ratio}"
            )


def certify(
    result: RebalanceResult,
    k: int | None = None,
    budget: float | None = None,
) -> Certificate:
    """Re-derive and check every claim in ``result`` from scratch."""
    instance = result.assignment.instance
    mapping = result.assignment.mapping
    violations: list[str] = []

    # Structural integrity, recomputed without trusting Assignment's
    # cached arrays.
    if mapping.shape != (instance.num_jobs,):
        violations.append("mapping length mismatch")
    if instance.num_jobs and (
        mapping.min() < 0 or mapping.max() >= instance.num_processors
    ):
        violations.append("mapping refers to unknown processors")
    loads = np.zeros(instance.num_processors)
    np.add.at(loads, mapping, instance.sizes)
    makespan = float(loads.max()) if instance.num_processors else 0.0
    if abs(loads.sum() - instance.total_size) > 1e-9 * max(
        1.0, instance.total_size
    ):
        violations.append("load not conserved")
    if abs(makespan - result.makespan) > 1e-9 * max(1.0, makespan):
        violations.append(
            f"reported makespan {result.makespan} != recomputed {makespan}"
        )

    moved = mapping != instance.initial
    moves = int(moved.sum())
    cost = float(instance.costs[moved].sum())
    if k is not None and moves > k:
        violations.append(f"{moves} moves exceed budget k={k}")
    if budget is not None and cost > budget + 1e-9 * max(1.0, budget):
        violations.append(f"cost {cost} exceeds budget B={budget}")
    if result.planned_moves is not None and moves > result.planned_moves:
        violations.append(
            f"actual moves {moves} exceed planned {result.planned_moves}"
        )
    if result.planned_cost is not None and cost > result.planned_cost + 1e-9 * max(
        1.0, cost
    ):
        violations.append(
            f"actual cost {cost} exceeds planned {result.planned_cost}"
        )

    lower = combined_lower_bound(instance, k)
    ratio = makespan / lower if lower > 0 else 1.0
    return Certificate(
        valid=not violations,
        makespan=makespan,
        moves=moves,
        relocation_cost=cost,
        opt_lower_bound=lower,
        proven_ratio=ratio,
        violations=tuple(violations),
    )
