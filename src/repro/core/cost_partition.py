"""PARTITION for arbitrary relocation costs (Section 3.2).

The weighted problem replaces the move count ``k`` with a relocation
budget ``B``: moving job ``i`` costs ``c_i`` and the total cost of moved
jobs must not exceed ``B``.

The paper adapts PARTITION by merging Steps 1 and 2 into per-processor
knapsack computations (with the guess ``A`` for the target makespan):

* ``a_i`` — the minimum *cost* to remove all large jobs but the most
  costly one, plus a set of small jobs so the remaining small load is at
  most ``A/2``.  The small-job part is a keep-max-cost knapsack with
  capacity ``A/2``.
* ``b_i`` — the minimum cost to remove jobs so that the remaining total
  load is at most ``A``; a keep-max-cost knapsack over *all* the
  processor's jobs with capacity ``A`` (which automatically keeps at
  most one large job, since two would overflow).
* ``c_i = a_i - b_i``; select the ``L_T`` processors of smallest
  ``c_i`` (ties prefer processors holding large jobs) for the ``a_i``
  treatment, give the rest the ``b_i`` treatment, route displaced large
  jobs to large-free selected processors, then reinsert small jobs
  greedily.

The guess ``A`` is searched over an ascending geometric
``(1 + alpha)`` grid (the paper's binary search with multiplicative
error ``alpha``); the first guess whose planned removal cost fits ``B``
is constructed.  With exact knapsacks this yields makespan at most
``1.5 * (1 + alpha) * OPT`` at cost at most ``B``; with the FPTAS
knapsack the cost guarantee is unchanged (our FPTAS never violates the
capacity) and the quality degrades by the knapsack's ``eps`` only
through possibly stopping one grid step later.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from .assignment import Assignment
from .instance import Instance
from .knapsack import keep_max_cost
from .result import RebalanceResult

__all__ = ["cost_partition_rebalance", "CostGuessPlan"]


@dataclass(frozen=True)
class _ProcPlan:
    """Per-processor removal plans at one guess."""

    a_cost: float
    b_cost: float
    a_removed: tuple[int, ...]  # job indices removed under the a-plan
    b_removed: tuple[int, ...]  # job indices removed under the b-plan
    has_large: bool
    b_keeps_large: bool


@dataclass(frozen=True)
class CostGuessPlan:
    """Evaluation of one makespan guess for the weighted problem."""

    guess: float
    feasible: bool
    total_large: int
    planned_cost: float
    selected: np.ndarray
    plans: tuple[_ProcPlan, ...]


def _plan_a(
    instance: Instance,
    jobs: np.ndarray,
    guess: float,
    knapsack_method: str,
    knapsack_eps: float,
    knapsack_resolution: int,
    knapsack_backend: str,
) -> tuple[float, tuple[int, ...]]:
    """The a-plan: drop all large jobs except the most costly; knapsack
    the smalls under capacity A/2."""
    sizes = instance.sizes[jobs]
    large_mask = sizes > guess / 2.0
    large_idx = jobs[large_mask]
    small_idx = jobs[~large_mask]
    small_sizes = sizes[~large_mask]
    small_costs = instance.costs[jobs][~large_mask]

    a_removed: list[int] = []
    a_cost = 0.0
    if large_idx.size:
        large_costs = instance.costs[large_idx]
        keep_pos = int(np.lexsort((large_idx, -large_costs))[0])
        for pos, j in enumerate(large_idx):
            if pos != keep_pos:
                a_removed.append(int(j))
                a_cost += float(instance.costs[j])
    small_sol = keep_max_cost(
        small_sizes, small_costs, guess / 2.0, method=knapsack_method,
        eps=knapsack_eps, resolution=knapsack_resolution,
        backend=knapsack_backend,
    )
    kept = set(small_sol.keep)
    for pos, j in enumerate(small_idx):
        if pos not in kept:
            a_removed.append(int(j))
            a_cost += float(small_costs[pos])
    return a_cost, tuple(a_removed)


def _plan_b(
    instance: Instance,
    jobs: np.ndarray,
    guess: float,
    knapsack_method: str,
    knapsack_eps: float,
    knapsack_resolution: int,
    knapsack_backend: str,
) -> tuple[float, tuple[int, ...], bool, bool]:
    """The b-plan: knapsack over all jobs under capacity A.  Returns
    ``(b_cost, b_removed, has_large, b_keeps_large)``."""
    sizes = instance.sizes[jobs]
    costs = instance.costs[jobs]
    large_mask = sizes > guess / 2.0
    all_sol = keep_max_cost(
        sizes, costs, guess, method=knapsack_method, eps=knapsack_eps,
        resolution=knapsack_resolution, backend=knapsack_backend,
    )
    kept_all = set(all_sol.keep)
    b_removed: list[int] = []
    b_cost = 0.0
    b_keeps_large = False
    for pos, j in enumerate(jobs):
        if pos in kept_all:
            if large_mask[pos]:
                b_keeps_large = True
        else:
            b_removed.append(int(j))
            b_cost += float(costs[pos])
    return b_cost, tuple(b_removed), bool(large_mask.any()), b_keeps_large


def _plan_processor(
    instance: Instance,
    jobs: np.ndarray,
    guess: float,
    knapsack_method: str,
    knapsack_eps: float,
    knapsack_resolution: int = 4096,
    knapsack_backend: str = "kernel",
) -> _ProcPlan:
    a_cost, a_removed = _plan_a(
        instance, jobs, guess, knapsack_method, knapsack_eps,
        knapsack_resolution, knapsack_backend,
    )
    b_cost, b_removed, has_large, b_keeps_large = _plan_b(
        instance, jobs, guess, knapsack_method, knapsack_eps,
        knapsack_resolution, knapsack_backend,
    )
    return _ProcPlan(
        a_cost=a_cost,
        b_cost=b_cost,
        a_removed=a_removed,
        b_removed=b_removed,
        has_large=has_large,
        b_keeps_large=b_keeps_large,
    )


def _select_and_price(
    plans: tuple[_ProcPlan, ...], m: int, total_large: int
) -> tuple[np.ndarray, float]:
    """Step-3 selection and the total planned removal cost."""
    c = np.array([pl.a_cost - pl.b_cost for pl in plans])
    has_large = np.array([pl.has_large for pl in plans])
    order = np.lexsort((np.arange(m), ~has_large, c))
    selected = np.sort(order[:total_large])
    sel_mask = np.zeros(m, dtype=bool)
    sel_mask[selected] = True
    planned = float(
        sum(plans[p].a_cost for p in range(m) if sel_mask[p])
        + sum(plans[p].b_cost for p in range(m) if not sel_mask[p])
    )
    return selected, planned


def evaluate_cost_guess(
    instance: Instance,
    guess: float,
    knapsack_method: str = "auto",
    knapsack_eps: float = 0.05,
    knapsack_resolution: int = 4096,
    knapsack_backend: str = "kernel",
) -> CostGuessPlan:
    """Compute the per-processor plans, the Step-3 selection and the
    total planned removal cost for one makespan guess."""
    m = instance.num_processors
    total_large = int((instance.sizes > guess / 2.0).sum())
    plans = tuple(
        _plan_processor(
            instance, instance.jobs_on(p), guess, knapsack_method,
            knapsack_eps, knapsack_resolution, knapsack_backend,
        )
        for p in range(m)
    )
    if total_large > m:
        return CostGuessPlan(
            guess=guess,
            feasible=False,
            total_large=total_large,
            planned_cost=float("inf"),
            selected=np.empty(0, dtype=np.int64),
            plans=plans,
        )
    selected, planned = _select_and_price(plans, m, total_large)
    return CostGuessPlan(
        guess=guess,
        feasible=True,
        total_large=total_large,
        planned_cost=planned,
        selected=selected,
        plans=plans,
    )


def _evaluate_cost_guess_lazy(
    instance: Instance,
    guess: float,
    knapsack_method: str,
    knapsack_eps: float,
    knapsack_resolution: int,
    knapsack_backend: str,
) -> CostGuessPlan | None:
    """Work-skipping evaluation for the guess scan (``backend="kernel"``).

    Produces the identical :class:`CostGuessPlan` decision surface as
    :func:`evaluate_cost_guess` while skipping knapsack work that cannot
    influence it: an infeasible guess (more large jobs than processors)
    is rejected *before* any per-processor planning, and a guess with no
    large jobs at all (common near acceptance: every guess above twice
    the maximum job size) computes only the b-plans — the Step-3
    selection is provably empty there, so the a-plans are never read.
    Returns ``None`` for the infeasible case.
    """
    m = instance.num_processors
    total_large = int((instance.sizes > guess / 2.0).sum())
    if total_large > m:
        return None
    if total_large == 0:
        plans = []
        for p in range(m):
            b_cost, b_removed, has_large, b_keeps_large = _plan_b(
                instance, instance.jobs_on(p), guess, knapsack_method,
                knapsack_eps, knapsack_resolution, knapsack_backend,
            )
            plans.append(
                _ProcPlan(
                    a_cost=0.0,
                    b_cost=b_cost,
                    a_removed=(),
                    b_removed=b_removed,
                    has_large=has_large,
                    b_keeps_large=b_keeps_large,
                )
            )
        planned = float(sum(pl.b_cost for pl in plans))
        return CostGuessPlan(
            guess=guess,
            feasible=True,
            total_large=0,
            planned_cost=planned,
            selected=np.empty(0, dtype=np.int64),
            plans=tuple(plans),
        )
    plans = tuple(
        _plan_processor(
            instance, instance.jobs_on(p), guess, knapsack_method,
            knapsack_eps, knapsack_resolution, knapsack_backend,
        )
        for p in range(m)
    )
    selected, planned = _select_and_price(plans, m, total_large)
    return CostGuessPlan(
        guess=guess,
        feasible=True,
        total_large=total_large,
        planned_cost=planned,
        selected=selected,
        plans=plans,
    )


def _construct(instance: Instance, plan: CostGuessPlan) -> Assignment:
    m = instance.num_processors
    guess = plan.guess
    mapping = np.array(instance.initial, dtype=np.int64)
    loads = np.array(instance.initial_loads, dtype=np.float64)
    sel_mask = np.zeros(m, dtype=bool)
    sel_mask[plan.selected] = True

    floating_large: list[int] = []
    pool_small: list[int] = []
    selected_large_free: list[int] = []

    for p in range(m):
        pl = plan.plans[p]
        removed = pl.a_removed if sel_mask[p] else pl.b_removed
        for j in removed:
            loads[p] -= instance.sizes[j]
            if instance.sizes[j] > guess / 2.0:
                floating_large.append(j)
            else:
                pool_small.append(j)
        if sel_mask[p] and not pl.has_large:
            selected_large_free.append(p)

    # Route displaced large jobs to distinct large-free selected
    # processors.  The counting identity of Section 3 guarantees enough
    # slots; unselected processors whose b-plan keeps a large job only
    # free up slots.
    assert len(floating_large) <= len(selected_large_free), (
        f"{len(floating_large)} floating large jobs but only "
        f"{len(selected_large_free)} large-free selected processors"
    )
    floating_large.sort(key=lambda j: (-instance.sizes[j], j))
    for j, p in zip(floating_large, selected_large_free):
        mapping[j] = p
        loads[p] += instance.sizes[j]

    # Greedy min-load reinsertion of small jobs (Step 6), largest first.
    # Versioned heap entries: staleness never rests on float identity.
    pool_small.sort(key=lambda j: (-instance.sizes[j], j))
    version = [0] * m
    heap = [(float(loads[p]), 0, p) for p in range(m)]
    heapq.heapify(heap)
    heap_pops = 0
    for j in pool_small:
        _, ver, p = heapq.heappop(heap)
        heap_pops += 1
        while ver != version[p]:
            _, ver, p = heapq.heappop(heap)  # stale entry
            heap_pops += 1
        mapping[j] = p
        loads[p] += instance.sizes[j]
        version[p] += 1
        heapq.heappush(heap, (float(loads[p]), version[p], p))
    telemetry.count("heap_pops", heap_pops)

    return Assignment(instance=instance, mapping=mapping)


def cost_partition_rebalance(
    instance: Instance,
    budget: float,
    alpha: float = 0.05,
    knapsack_method: str = "auto",
    knapsack_eps: float = 0.05,
    knapsack_resolution: int = 4096,
    backend: str = "kernel",
) -> RebalanceResult:
    """The Section-3.2 algorithm: 1.5-style approximation under a
    relocation-cost budget.

    Scans makespan guesses on a geometric ``(1 + alpha)`` grid from the
    structural lower bound up to twice the initial makespan (where the
    identity plan costs zero, so termination is guaranteed) and returns
    the construction at the first affordable guess.

    ``knapsack_resolution`` is forwarded to the exact knapsack's size
    grid (:func:`repro.core.knapsack.keep_max_cost_exact`).  When job
    sizes are not small integers, each of a processor's ``n`` kept jobs
    is charged up to one grid unit ``capacity / resolution`` of phantom
    size, so a kept set is only guaranteed to out-cost true optima that
    fit in ``capacity * (1 - n / resolution)`` — i.e. the per-knapsack
    relative size-discretization error is at most ``n / resolution``
    (≈ 1.6% for a 64-job processor at the default 4096).  Raising the
    resolution tightens the plans at ``O(n * resolution)`` cost per
    knapsack; it never affects instances with integer sizes within the
    grid, which are solved exactly at any resolution.

    ``backend`` selects the knapsack implementation (``"kernel"`` —
    vectorized sweeps from :mod:`repro.core.kernels`, plus a
    work-skipping guess scan; ``"reference"`` — the original DP and the
    eager scan).  Both trace identical plans, so the chosen guess and
    the final assignment are the same.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if instance.num_jobs == 0:
        return RebalanceResult(
            assignment=Assignment.initial(instance),
            algorithm="cost-partition",
            guessed_opt=0.0,
            planned_cost=0.0,
        )
    lb = max(instance.average_load, instance.max_size)
    ub = 2.0 * max(instance.initial_makespan, lb)
    guesses = []
    t = lb
    while t < ub:
        guesses.append(t)
        t *= 1.0 + alpha
    guesses.append(ub)

    if backend not in ("kernel", "reference"):
        raise ValueError(f"unknown backend {backend!r}")
    tmark = telemetry.mark()
    tol = 1e-9 * max(1.0, budget)
    tried = 0
    for guess in guesses:
        tried += 1
        with telemetry.span("cost_partition.plan"):
            if backend == "kernel":
                plan = _evaluate_cost_guess_lazy(
                    instance, guess, knapsack_method, knapsack_eps,
                    knapsack_resolution, "kernel",
                )
            else:
                plan = evaluate_cost_guess(
                    instance, guess,
                    knapsack_method=knapsack_method,
                    knapsack_eps=knapsack_eps,
                    knapsack_resolution=knapsack_resolution,
                    knapsack_backend="reference",
                )
        if plan is None or not plan.feasible or plan.planned_cost > budget + tol:
            continue
        telemetry.count("guesses_tried", tried)
        with telemetry.span("cost_partition.construct"):
            assignment = _construct(instance, plan)
        assignment.validate(budget=budget)
        return RebalanceResult(
            assignment=assignment,
            algorithm="cost-partition",
            guessed_opt=guess,
            planned_cost=plan.planned_cost,
            meta=telemetry.attach(
                {
                    "L_T": plan.total_large,
                    "alpha": alpha,
                    "guesses_tried": tried,
                    "knapsack_method": knapsack_method,
                    "knapsack_resolution": knapsack_resolution,
                    "backend": backend,
                },
                tmark,
            ),
        )
    raise RuntimeError(
        "no affordable guess found; unreachable because the top guess "
        "plans zero removals"
    )  # pragma: no cover
