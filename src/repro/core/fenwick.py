"""Order-statistic Fenwick tree over a bounded integer value domain.

Theorem 3's running-time argument needs, per threshold, the sum of the
``L_T`` smallest ``c_i`` values under insertions and deletions in
"constant time" (the paper exploits that each threshold changes one
integral ``c_i`` by one).  This structure supports the required
operations in ``O(log n)``, which preserves the overall
``O(n log n)`` bound:

* ``add(value, +1/-1)`` — insert/remove one occurrence of ``value``;
* ``sum_smallest(count)`` — total of the ``count`` smallest stored
  values (ties are interchangeable: only the sum matters for
  ``k-hat``, not which tied processor is selected).
"""

from __future__ import annotations

__all__ = ["ValueMultisetFenwick"]


class ValueMultisetFenwick:
    """Multiset of integers in ``[lo, hi]`` with order-statistic sums."""

    def __init__(self, lo: int, hi: int) -> None:
        if hi < lo:
            raise ValueError("empty value domain")
        self._lo = lo
        self._size = hi - lo + 1
        self._counts = [0] * (self._size + 1)  # 1-based Fenwick arrays
        self._sums = [0] * (self._size + 1)
        self._total = 0
        bit = 1
        while bit * 2 <= self._size:
            bit *= 2
        self._top_bit = bit  # highest power of two <= size, for descents

    def __len__(self) -> int:
        return self._total

    def add(self, value: int, delta: int = 1) -> None:
        """Insert (``delta > 0``) or remove occurrences of ``value``."""
        idx = value - self._lo + 1
        if not 1 <= idx <= self._size:
            raise ValueError(f"value {value} outside domain")
        self._total += delta
        if self._total < 0:
            raise ValueError("removed more values than stored")
        while idx <= self._size:
            self._counts[idx] += delta
            self._sums[idx] += delta * value
            idx += idx & (-idx)

    def remove(self, value: int) -> None:
        """Remove one occurrence of ``value``."""
        self.add(value, -1)

    def sum_smallest(self, count: int) -> int:
        """Sum of the ``count`` smallest stored values.

        Fenwick binary descent: walk down the implicit tree keeping the
        running count; values sharing a bucket are identical, so the
        partial take at the boundary bucket is exact.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self._total:
            raise ValueError(f"only {self._total} values stored, need {count}")
        if count == 0:
            return 0
        idx = 0
        remaining = count
        acc = 0
        bit = self._top_bit
        while bit:
            nxt = idx + bit
            if nxt <= self._size and self._counts[nxt] < remaining:
                idx = nxt
                remaining -= self._counts[nxt]
                acc += self._sums[nxt]
            bit //= 2
        # Bucket idx+1 holds the boundary value (domain offset back).
        boundary_value = self._lo + idx
        return acc + remaining * boundary_value
