"""M-PARTITION with the paper's incremental threshold scan (Theorem 3).

:func:`repro.core.partition.m_partition_rebalance` re-derives
``(L_T, a_i, b_i, c_i)`` from scratch at every threshold — simple and
robust, but ``O(m log n)`` per threshold.  Theorem 3's running-time
claim rests on a sharper observation: *between consecutive thresholds,
at most a constant number of the per-processor values change*, so the
scan can maintain

* the affected processors' ``a_i`` / ``b_i`` / ``c_i``,
* the running total ``sum_i b_i``,
* the multiset of ``c_i`` values with order-statistic sums
  (:class:`~repro.core.fenwick.ValueMultisetFenwick`), giving the
  Step-3 selection total ``sum of the L_T smallest c_i`` in
  ``O(log n)``

and evaluate ``k-hat = L_E + sum_i b_i + sum-smallest(L_T)`` at each
threshold in logarithmic time.  (Ties in ``c_i`` do not affect the
*sum*, so the tie-breaking rule — which matters for the final
construction — can be deferred to the single construction call at the
stopping threshold.)

The module exposes :func:`m_partition_rebalance_incremental`, which
produces the *identical* result to the rescan version (same stopping
threshold, hence the same construction); the equivalence is enforced by
differential property tests.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .. import telemetry
from .assignment import Assignment
from .fenwick import ValueMultisetFenwick
from .instance import Instance
from .partition import _construct, evaluate_guess
from .result import RebalanceResult
from .thresholds import ThresholdTables, build_tables, candidate_guesses, scan_start

__all__ = ["m_partition_rebalance_incremental"]


class _IncrementalState:
    """Live ``(L_T, m_L, a, b, c)`` state advanced threshold by threshold."""

    def __init__(self, tables: ThresholdTables, start_guess: float) -> None:
        self.tables = tables
        m = len(tables.processors)
        n = int(tables.sizes_asc.shape[0])
        self.a = np.empty(m, dtype=np.int64)
        self.b = np.empty(m, dtype=np.int64)
        self.c = np.empty(m, dtype=np.int64)
        self.has_large = np.empty(m, dtype=bool)
        self.sum_b = 0
        self.fenwick = ValueMultisetFenwick(-n - 1, n + 1)
        self.num_large_procs = 0
        for i, proc in enumerate(tables.processors):
            self.a[i] = proc.a_value(start_guess)
            self.b[i] = proc.b_value(start_guess)
            self.c[i] = self.a[i] - self.b[i]
            self.has_large[i] = proc.has_large(start_guess)
            self.sum_b += int(self.b[i])
            self.fenwick.add(int(self.c[i]))
            self.num_large_procs += bool(self.has_large[i])

    def refresh(self, proc_index: int, guess: float) -> None:
        """Recompute one processor's values at ``guess`` and patch the
        aggregates (the paper's 'constant time incremental change')."""
        proc = self.tables.processors[proc_index]
        new_a = proc.a_value(guess)
        new_b = proc.b_value(guess)
        new_c = new_a - new_b
        new_large = proc.has_large(guess)
        self.sum_b += new_b - int(self.b[proc_index])
        if new_c != self.c[proc_index]:
            self.fenwick.remove(int(self.c[proc_index]))
            self.fenwick.add(int(new_c))
        self.num_large_procs += int(new_large) - int(self.has_large[proc_index])
        self.a[proc_index] = new_a
        self.b[proc_index] = new_b
        self.c[proc_index] = new_c
        self.has_large[proc_index] = new_large

    def planned_moves(self, guess: float) -> tuple[bool, int]:
        """``(feasible, k-hat)`` at ``guess`` using the aggregates."""
        total_large = self.tables.total_large(guess)
        m = len(self.tables.processors)
        if total_large > m:
            return False, -1
        extra_large = total_large - self.num_large_procs
        k_hat = (
            extra_large + self.sum_b + self.fenwick.sum_smallest(total_large)
        )
        return True, int(k_hat)


def _events_by_threshold(
    tables: ThresholdTables,
) -> dict[float, set[int]]:
    """Map each threshold value to the processors whose values can
    change there (Lemma 5's change points, attributed per processor)."""
    events: dict[float, set[int]] = defaultdict(set)
    for i, proc in enumerate(tables.processors):
        for size in proc.sizes_asc:
            events[float(2.0 * size)].add(i)  # large/small flip
        for prefix in proc.prefix[1:]:
            events[float(prefix)].add(i)  # b_i decrement
            events[float(2.0 * prefix)].add(i)  # a_i decrement
    return dict(events)


def m_partition_rebalance_incremental(
    instance: Instance,
    k: int,
    tables: ThresholdTables | None = None,
) -> RebalanceResult:
    """Theorem 3's scan with incremental aggregate maintenance.

    Semantically identical to
    :func:`repro.core.partition.m_partition_rebalance`; asymptotically
    ``O(n log n)`` regardless of how many thresholds the scan crosses,
    because each threshold touches only its own processors' values.

    ``tables`` may supply prebuilt threshold tables for ``instance``
    (same contract as :func:`~repro.core.partition.m_partition_rebalance`).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    tmark = telemetry.mark()
    if tables is None:
        with telemetry.span("m_partition_inc.build_tables"):
            tables = build_tables(instance)
    if instance.num_jobs == 0:
        return RebalanceResult(
            assignment=Assignment.initial(instance),
            algorithm="m-partition-incremental",
            guessed_opt=0.0,
            planned_moves=0,
        )
    candidates = candidate_guesses(tables)
    events = _events_by_threshold(tables)
    start = scan_start(candidates, instance.average_load)

    state = _IncrementalState(tables, float(candidates[start]))
    tried = 0
    refreshes = 0
    stop_guess: float | None = None
    stop_k_hat = -1
    with telemetry.span("m_partition_inc.scan"):
        for idx in range(start, candidates.shape[0]):
            guess = float(candidates[idx])
            if idx > start:
                for proc_index in events.get(guess, ()):
                    state.refresh(proc_index, guess)
                    refreshes += 1
            tried += 1
            feasible, k_hat = state.planned_moves(guess)
            if feasible and k_hat <= k:
                stop_guess = guess
                stop_k_hat = k_hat
                break
    telemetry.count("thresholds_tried", tried)
    telemetry.count("incremental_refreshes", refreshes)
    if stop_guess is not None:
        # Single full evaluation at the stopping threshold to apply
        # the tie-breaking selection and build the assignment.
        ev = evaluate_guess(tables, stop_guess)
        assert ev.planned_moves == stop_k_hat, (
            f"incremental k-hat {stop_k_hat} disagrees with rescan "
            f"{ev.planned_moves} at guess {stop_guess}"
        )
        with telemetry.span("m_partition_inc.construct"):
            assignment = _construct(instance, tables, ev)
        assignment.validate(max_moves=k)
        return RebalanceResult(
            assignment=assignment,
            algorithm="m-partition-incremental",
            guessed_opt=stop_guess,
            planned_moves=ev.planned_moves,
            meta=telemetry.attach(
                {
                    "L_T": ev.total_large,
                    "m_L": ev.large_processors,
                    "L_E": ev.extra_large,
                    "thresholds_tried": tried,
                },
                tmark,
            ),
        )
    raise RuntimeError("no feasible threshold found")  # pragma: no cover
