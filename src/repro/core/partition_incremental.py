"""M-PARTITION with the paper's incremental threshold scan (Theorem 3).

:func:`repro.core.partition.m_partition_rebalance` re-derives
``(L_T, a_i, b_i, c_i)`` from scratch at every threshold — simple and
robust, but ``O(m log n)`` per threshold.  Theorem 3's running-time
claim rests on a sharper observation: *between consecutive thresholds,
at most a constant number of the per-processor values change*, so the
scan can maintain

* the affected processors' ``a_i`` / ``b_i`` / ``c_i``,
* the running total ``sum_i b_i``,
* the multiset of ``c_i`` values with order-statistic sums
  (:class:`~repro.core.fenwick.ValueMultisetFenwick`), giving the
  Step-3 selection total ``sum of the L_T smallest c_i`` in
  ``O(log n)``

and evaluate ``k-hat = L_E + sum_i b_i + sum-smallest(L_T)`` at each
threshold in logarithmic time.  (Ties in ``c_i`` do not affect the
*sum*, so the tie-breaking rule — which matters for the final
construction — can be deferred to the single construction call at the
stopping threshold.)

The module exposes :func:`m_partition_rebalance_incremental`, which
produces the *identical* result to the rescan version (same stopping
threshold, hence the same construction); the equivalence is enforced by
differential property tests.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .. import telemetry
from .assignment import Assignment
from .fenwick import ValueMultisetFenwick
from .instance import Instance
from .partition import _construct, evaluate_guess
from .result import RebalanceResult
from .thresholds import ThresholdTables, build_tables, candidate_guesses, scan_start

__all__ = ["m_partition_rebalance_incremental", "scan_incremental"]


class _IncrementalState:
    """Live ``(L_T, m_L, a, b, c)`` state advanced threshold by threshold.

    ``L_T`` (the total large-job count) is maintained incrementally too:
    it changes only when the guess crosses ``2 * size`` of some job —
    which is a threshold of that job's processor — so per-processor
    large counts patched at each refresh keep the global total exact
    without ever consulting ``tables.sizes_asc``.  That makes the state
    safe for the engine's O(churn) path, where the global ascending
    size array is deliberately stale.
    """

    def __init__(self, tables: ThresholdTables, start_guess: float) -> None:
        self.tables = tables
        m = len(tables.processors)
        self.a = np.empty(m, dtype=np.int64)
        self.b = np.empty(m, dtype=np.int64)
        self.c = np.empty(m, dtype=np.int64)
        self.has_large = np.empty(m, dtype=bool)
        self.large_counts = np.empty(m, dtype=np.int64)
        self.sum_b = 0
        # c_i = a_i - b_i with a_i, b_i in [0, n_i], so a domain sized by
        # the largest bucket suffices — [-n-1, n+1] would cost O(n) list
        # allocations per scan, which the O(churn) path cannot afford.
        max_bucket = max((p.num_jobs for p in tables.processors), default=0)
        self.fenwick = ValueMultisetFenwick(-max_bucket - 1, max_bucket + 1)
        self.num_large_procs = 0
        self.total_large_jobs = 0
        for i, proc in enumerate(tables.processors):
            a_i, b_i, large_i = proc.evaluate(start_guess)
            self.a[i] = a_i
            self.b[i] = b_i
            self.c[i] = a_i - b_i
            self.large_counts[i] = large_i
            self.has_large[i] = large_i > 0
            self.sum_b += b_i
            self.fenwick.add(a_i - b_i)
            self.num_large_procs += large_i > 0
            self.total_large_jobs += large_i

    @classmethod
    def from_arrays(
        cls,
        tables: ThresholdTables,
        a: np.ndarray,
        b: np.ndarray,
        large_counts: np.ndarray,
    ) -> _IncrementalState:
        """State at a guess whose per-processor values are already
        known (one column of a :func:`_window_planned_moves` chunk) —
        skips the O(m) scalar re-evaluation of ``__init__``."""
        self = cls.__new__(cls)
        self.tables = tables
        self.a = a
        self.b = b
        self.c = a - b
        self.large_counts = large_counts
        self.has_large = large_counts > 0
        self.sum_b = int(b.sum())
        max_bucket = max((p.num_jobs for p in tables.processors), default=0)
        self.fenwick = ValueMultisetFenwick(-max_bucket - 1, max_bucket + 1)
        for value in self.c:
            self.fenwick.add(int(value))
        self.num_large_procs = int(self.has_large.sum())
        self.total_large_jobs = int(large_counts.sum())
        return self

    def refresh(self, proc_index: int, guess: float) -> None:
        """Recompute one processor's values at ``guess`` and patch the
        aggregates (the paper's 'constant time incremental change')."""
        proc = self.tables.processors[proc_index]
        new_a, new_b, new_large_count = proc.evaluate(guess)
        new_c = new_a - new_b
        new_large = new_large_count > 0
        self.sum_b += new_b - int(self.b[proc_index])
        if new_c != self.c[proc_index]:
            self.fenwick.remove(int(self.c[proc_index]))
            self.fenwick.add(int(new_c))
        self.num_large_procs += int(new_large) - int(self.has_large[proc_index])
        self.total_large_jobs += new_large_count - int(self.large_counts[proc_index])
        self.a[proc_index] = new_a
        self.b[proc_index] = new_b
        self.c[proc_index] = new_c
        self.has_large[proc_index] = new_large
        self.large_counts[proc_index] = new_large_count

    def planned_moves(self, guess: float) -> tuple[bool, int]:
        """``(feasible, k-hat)`` at ``guess`` using the aggregates."""
        total_large = self.total_large_jobs
        m = len(self.tables.processors)
        if total_large > m:
            return False, -1
        extra_large = total_large - self.num_large_procs
        k_hat = (
            extra_large + self.sum_b + self.fenwick.sum_smallest(total_large)
        )
        return True, int(k_hat)


class _LazyStreams:
    """Per-processor Lemma-5 candidate values, iterated without being
    materialized.

    A processor's candidates are the 3-way merge of ``prefix[1:]``,
    ``2 * prefix[1:]`` and ``2 * sizes_asc`` — all already ascending in
    the :class:`~repro.core.thresholds.ProcessorTable`.  A steady-state
    scan tries a handful of values, so merging the streams into one
    array per changed bucket every epoch (O(bucket) per bucket,
    :func:`~repro.core.thresholds.proc_candidates`) would dominate the
    decide; three cursors per processor cost O(log bucket) to seed and
    O(1) per consumed value instead.  Doubling a float is exact, so
    ``2 * x <= g  <=>  x <= g / 2`` and the doubled streams position
    with one ``searchsorted`` at ``g / 2`` against the undoubled array.
    """

    __slots__ = ("procs", "pos")

    def __init__(self, tables: ThresholdTables) -> None:
        self.procs = tables.processors
        self.pos = [[0, 0, 0] for _ in self.procs]

    def seed(self, proc_index: int, average_load: float) -> tuple[float, float]:
        """Position the cursors just past ``average_load`` and return
        ``(largest candidate <= average_load or -inf, smallest
        candidate)`` for this processor (must not be empty)."""
        proc = self.procs[proc_index]
        pre = proc.prefix
        sa = proc.sizes_asc
        half = average_load / 2.0
        n_i = proc.num_jobs
        # P_0 == 0 is not a candidate; the -1 discounts it (clamped for
        # loads below zero, where searchsorted lands before P_0).
        i1 = max(int(np.searchsorted(pre, average_load, side="right")) - 1, 0)
        i2 = max(int(np.searchsorted(pre, half, side="right")) - 1, 0)
        i3 = int(np.searchsorted(sa, half, side="right"))
        self.pos[proc_index] = [i1, i2, i3]
        best = -np.inf
        if i1 > 0:
            best = float(pre[i1])
        if i2 > 0:
            best = max(best, 2.0 * float(pre[i2]))
        if i3 > 0:
            best = max(best, 2.0 * float(sa[i3 - 1]))
        smallest = min(float(pre[1]), 2.0 * float(sa[0])) if n_i else np.inf
        return best, smallest

    def head(self, proc_index: int, above: float) -> float:
        """Smallest candidate ``> above`` at/after the cursors (advances
        them past any values ``<= above``); ``inf`` when exhausted."""
        proc = self.procs[proc_index]
        pre = proc.prefix
        sa = proc.sizes_asc
        n_i = proc.num_jobs
        p1, p2, p3 = self.pos[proc_index]
        while p1 < n_i and pre[p1 + 1] <= above:
            p1 += 1
        while p2 < n_i and 2.0 * pre[p2 + 1] <= above:
            p2 += 1
        while p3 < n_i and 2.0 * sa[p3] <= above:
            p3 += 1
        self.pos[proc_index] = [p1, p2, p3]
        head = np.inf
        if p1 < n_i:
            head = float(pre[p1 + 1])
        if p2 < n_i:
            head = min(head, 2.0 * float(pre[p2 + 1]))
        if p3 < n_i:
            head = min(head, 2.0 * float(sa[p3]))
        return head


_CHUNK_START = 256     # candidates evaluated in the first chunk
_CHUNK_GROWTH = 4      # geometric chunk growth on a miss


def _window_candidates(
    procs, indices, lo: float, hi: float
) -> np.ndarray:
    """Distinct candidate values in ``(lo, hi]`` across the named
    processors' three Lemma-5 streams, ascending.

    Doubling and halving are exact in binary floats, so the doubled
    streams slice against the undoubled arrays at the halved bounds —
    the values returned are bit-identical to the ones a merged
    enumeration would yield.  Two ``searchsorted`` dispatches per
    processor plus one global ``unique``.
    """
    parts = []
    bounds = (lo, hi, lo / 2.0, hi / 2.0)
    half_bounds = bounds[2:]
    for i in indices:
        proc = procs[i]
        pre = proc.prefix
        sa = proc.sizes_asc
        l1, h1, l2, h2 = np.searchsorted(pre, bounds, side="right")
        if h1 > l1:
            parts.append(pre[l1:h1])
        if h2 > l2:
            parts.append(2.0 * pre[l2:h2])
        l3, h3 = np.searchsorted(sa, half_bounds, side="right")
        if h3 > l3:
            parts.append(2.0 * sa[l3:h3])
    if not parts:
        return np.empty(0)
    return np.unique(np.concatenate(parts))


def _prefix_candidates(
    procs, indices, lo: float, hi: float
) -> np.ndarray:
    """Distinct prefix-stream candidates in ``(lo, hi]``, ascending.

    In the all-small regime (``guess >= 2 * max_size``) these are the
    only thresholds where ``k_hat`` can change, so the walk slices just
    this stream — one ``searchsorted`` dispatch per processor.
    """
    parts = []
    bounds = (lo, hi)
    for i in indices:
        pre = procs[i].prefix
        l1, h1 = np.searchsorted(pre, bounds, side="right")
        if h1 > l1:
            parts.append(pre[l1:h1])
    if not parts:
        return np.empty(0)
    return np.unique(np.concatenate(parts))


def _window_planned_moves_small(
    tables: ThresholdTables, guesses: np.ndarray
) -> np.ndarray:
    """``k_hat`` for a chunk of guesses in the all-small regime.

    With every job small at every guess (``guesses[0] >= 2 *
    max_size``): ``L_T = 0``, so the Step-3 selection total vanishes,
    ``q = n_i``, and ``k_hat`` reduces to ``sum_i b_i`` — one
    ``searchsorted`` dispatch per processor and four matrix ops, no
    sort.  Every guess is feasible (``L_T = 0 <= m``).

    Returns ``(k_hat, b)`` with ``b`` the ``(m, G)`` per-processor
    removal counts.
    """
    procs = tables.processors
    m = len(procs)
    count = guesses.shape[0]
    # keeps rows default to 1 (-> 0 after the global -1): the correct
    # "keep nothing past P_0" value for empty processors.
    keeps = np.ones((m, count), dtype=np.int64)
    njobs = np.zeros((m, 1), dtype=np.int64)
    for i, proc in enumerate(procs):
        if not proc.num_jobs:
            continue
        njobs[i, 0] = proc.num_jobs
        keeps[i] = np.searchsorted(proc.prefix, guesses, side="right")
    keeps -= 1
    b = njobs - np.minimum(keeps, njobs)
    return b.sum(axis=0), b


def _window_planned_moves(
    tables: ThresholdTables, guesses: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(feasible, k_hat)`` arrays for a whole chunk of guesses.

    The per-guess math is :meth:`ProcessorTable.evaluate` verbatim —
    the prefix-slice caps become ``np.minimum`` against the full-array
    ``searchsorted``, which is equivalent because the prefixes are
    ascending — and the Step-3 selection total (sum of the ``L_T``
    smallest ``c_i``) comes from one axis-sort + cumsum over the
    ``(guesses, m)`` cost matrix instead of a Fenwick query per guess.
    Cost: two vectorized ``searchsorted`` dispatches per processor
    (everything else is whole-matrix arithmetic) plus an
    ``O(G m log m)`` sort — no Python work proportional to ``G``.

    Returns ``(feasible, k_hat, a, b, large)``; the last three are the
    ``(m, G)`` per-processor value matrices, from which a caller can
    lift the scan state at any evaluated guess
    (:meth:`_IncrementalState.from_arrays`).
    """
    procs = tables.processors
    m = len(procs)
    count = guesses.shape[0]
    half = guesses / 2.0
    half_and_full = np.concatenate((half, guesses))
    # keeps rows default to 1 (-> 0 after the global -1): the correct
    # "keep nothing past P_0" value for empty processors.
    keeps = np.ones((m, 2 * count), dtype=np.int64)
    s_cnt = np.zeros((m, count), dtype=np.int64)
    njobs = np.zeros((m, 1), dtype=np.int64)
    for i, proc in enumerate(procs):
        if not proc.num_jobs:
            continue
        njobs[i, 0] = proc.num_jobs
        keeps[i] = np.searchsorted(proc.prefix, half_and_full, side="right")
        s_cnt[i] = np.searchsorted(proc.sizes_asc, half, side="right")
    keeps -= 1
    a = s_cnt - np.minimum(keeps[:, :count], s_cnt)
    q = np.where(s_cnt == njobs, njobs, s_cnt + 1)
    b = q - np.minimum(keeps[:, count:], q)
    large = njobs - s_cnt
    total_large = large.sum(axis=0)
    large_procs = (large > 0).sum(axis=0)
    feasible = total_large <= m
    c_sorted = np.sort(np.ascontiguousarray((a - b).T), axis=1)
    csum = np.cumsum(c_sorted, axis=1)
    lt = np.minimum(total_large, m)
    smallest = np.where(
        lt > 0, csum[np.arange(count), np.maximum(lt, 1) - 1], 0
    )
    k_hat = (total_large - large_procs) + b.sum(axis=0) + smallest
    return feasible, k_hat, a, b, large


def scan_incremental(
    tables: ThresholdTables,
    k: int,
    average_load: float,
) -> tuple[float, int, int, int, _IncrementalState] | None:
    """Windowed Theorem-3 scan over the per-processor candidate streams.

    Visits exactly the distinct threshold values ``>=`` the
    :func:`~repro.core.thresholds.scan_start` guess, in ascending order,
    and stops at the first feasible one planning at most ``k`` moves —
    i.e. the full scan's stopping decision, without ever materializing
    the global candidate union (an O(n log n) ``np.unique`` per epoch).
    Candidates are pulled in one generous guess-space *window* (sized
    from ``k * mean_size / m``, the load span a ``k``-move budget can
    flatten) and evaluated in geometrically growing chunks by
    :func:`_window_planned_moves`, so the per-candidate cost is a numpy
    inner loop rather than a Python heap step.  Candidate density per
    unit of guess scales with the processor count and the inverse mean
    job size — not with ``n`` — so a steady-state scan touches a
    bounded number of windows no matter how large the snapshot grows.

    Returns ``(stop_guess, k_hat, tried, refreshes, state)`` at the
    first feasible guess planning at most ``k`` moves, or ``None`` when
    the streams are exhausted first (the caller reproduces the full
    path's error semantics).  ``state`` holds every processor's exact
    ``a`` / ``b`` / ``has_large`` values *at* the stop guess, so the
    caller finalizes the evaluation from it without another
    O(m log n) pass.  ``tried`` counts the distinct candidates
    evaluated (identical to the full scan's ``thresholds_tried``);
    ``refreshes`` counts per-processor evaluations performed.
    """
    streams = _LazyStreams(tables)
    # Start guess: the largest candidate <= average_load, clamped to the
    # global extremes — scan_start()'s semantics on the merged union.
    best_le = -np.inf
    global_min = np.inf
    hi_cap = 0.0
    max_size = 0.0
    nonempty = []
    for i, proc in enumerate(tables.processors):
        if not proc.num_jobs:
            continue
        nonempty.append(i)
        best, smallest = streams.seed(i, average_load)
        best_le = max(best_le, best)
        global_min = min(global_min, smallest)
        # 2 * (full prefix sum) bounds every stream of this processor.
        hi_cap = max(hi_cap, 2.0 * float(proc.prefix[-1]))
        max_size = max(max_size, float(proc.sizes_asc[-1]))
    if not nonempty:
        return None
    start_guess = best_le if best_le > -np.inf else global_min

    procs = tables.processors
    mean_size = average_load * len(procs) / tables.instance.num_jobs
    # A k-move budget flattens roughly k * mean_size of excess across m
    # processors, so the stop usually sits within ~2 k mean / m of the
    # start; a miss re-slices 4x wider, so an underestimate only costs
    # one extra round of log-time slicing.
    width = max(
        4.0 * k * mean_size / len(procs), 16.0 * mean_size
    )
    tried = 0
    refreshes = 0
    lo = start_guess
    window = np.asarray([start_guess])  # the start, then sliced windows

    if start_guess >= 2.0 * max_size:
        # All-small regime: every job is small at the start guess and
        # stays small at every larger guess, so k_hat == sum_i b_i and
        # it changes only at prefix-stream thresholds — candidates from
        # the doubled streams can never be the first feasible value.
        # Walk just the prefix stream; the exact full-union ``tried``
        # count is recovered with one counting slice at the stop.
        while True:
            chunk = _CHUNK_START
            offset = 0
            while offset < window.shape[0]:
                cands = window[offset:offset + chunk]
                k_hats, b_mat = _window_planned_moves_small(tables, cands)
                refreshes += len(nonempty) * int(cands.shape[0])
                hits = np.flatnonzero(k_hats <= k)
                if hits.shape[0]:
                    j = int(hits[0])
                    stop_guess = float(cands[j])
                    if stop_guess == start_guess:
                        tried = 1
                    else:
                        tried = 1 + int(
                            _window_candidates(
                                procs, nonempty, start_guess, stop_guess
                            ).shape[0]
                        )
                    # s_cnt == n_i everywhere here, so only the a
                    # column needs recovering (one scalar lookup per
                    # processor); b comes off the evaluated chunk and
                    # the large counts are identically zero.
                    m = len(procs)
                    a_col = np.zeros(m, dtype=np.int64)
                    half_stop = stop_guess / 2.0
                    for i in nonempty:
                        proc = procs[i]
                        keep_a = min(
                            int(
                                np.searchsorted(
                                    proc.prefix, half_stop, side="right"
                                )
                            )
                            - 1,
                            proc.num_jobs,
                        )
                        a_col[i] = proc.num_jobs - keep_a
                    state = _IncrementalState.from_arrays(
                        tables,
                        a_col,
                        np.ascontiguousarray(b_mat[:, j]),
                        np.zeros(m, dtype=np.int64),
                    )
                    return (
                        stop_guess, int(k_hats[j]), tried, refreshes, state
                    )
                offset += chunk
                chunk *= _CHUNK_GROWTH
            # The walk always stops at or before the largest prefix sum
            # (b_i == 0 everywhere there), so exhaustion is impossible;
            # the bound below is pure defensive termination.
            if lo >= hi_cap:  # pragma: no cover
                return None
            hi = max(min(lo + width, hi_cap), np.nextafter(lo, np.inf))
            window = _prefix_candidates(procs, nonempty, lo, hi)
            lo = hi
            width *= 4.0

    while True:
        chunk = _CHUNK_START
        offset = 0
        while offset < window.shape[0]:
            cands = window[offset:offset + chunk]
            feas, k_hats, a, b, large = _window_planned_moves(tables, cands)
            refreshes += len(nonempty) * int(cands.shape[0])
            hits = np.flatnonzero(feas & (k_hats <= k))
            if hits.shape[0]:
                j = int(hits[0])
                tried += j + 1
                stop_guess = float(cands[j])
                # A processor's values change only at its own
                # thresholds, so the evaluated column *at* the stop
                # guess is exactly the live state a step-by-step walk
                # reaches.
                state = _IncrementalState.from_arrays(
                    tables,
                    np.ascontiguousarray(a[:, j]),
                    np.ascontiguousarray(b[:, j]),
                    np.ascontiguousarray(large[:, j]),
                )
                return stop_guess, int(k_hats[j]), tried, refreshes, state
            tried += int(cands.shape[0])
            offset += chunk
            chunk *= _CHUNK_GROWTH
        if lo >= hi_cap:
            return None
        hi = max(min(lo + width, hi_cap), np.nextafter(lo, np.inf))
        window = _window_candidates(procs, nonempty, lo, hi)
        lo = hi
        width *= 4.0


def _events_by_threshold(
    tables: ThresholdTables,
) -> dict[float, set[int]]:
    """Map each threshold value to the processors whose values can
    change there (Lemma 5's change points, attributed per processor)."""
    events: dict[float, set[int]] = defaultdict(set)
    for i, proc in enumerate(tables.processors):
        for size in proc.sizes_asc:
            events[float(2.0 * size)].add(i)  # large/small flip
        for prefix in proc.prefix[1:]:
            events[float(prefix)].add(i)  # b_i decrement
            events[float(2.0 * prefix)].add(i)  # a_i decrement
    return dict(events)


def m_partition_rebalance_incremental(
    instance: Instance,
    k: int,
    tables: ThresholdTables | None = None,
) -> RebalanceResult:
    """Theorem 3's scan with incremental aggregate maintenance.

    Semantically identical to
    :func:`repro.core.partition.m_partition_rebalance`; asymptotically
    ``O(n log n)`` regardless of how many thresholds the scan crosses,
    because each threshold touches only its own processors' values.

    ``tables`` may supply prebuilt threshold tables for ``instance``
    (same contract as :func:`~repro.core.partition.m_partition_rebalance`).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    tmark = telemetry.mark()
    if tables is None:
        with telemetry.span("m_partition_inc.build_tables"):
            tables = build_tables(instance)
    if instance.num_jobs == 0:
        return RebalanceResult(
            assignment=Assignment.initial(instance),
            algorithm="m-partition-incremental",
            guessed_opt=0.0,
            planned_moves=0,
        )
    candidates = candidate_guesses(tables)
    events = _events_by_threshold(tables)
    start = scan_start(candidates, instance.average_load)

    state = _IncrementalState(tables, float(candidates[start]))
    tried = 0
    refreshes = 0
    stop_guess: float | None = None
    stop_k_hat = -1
    with telemetry.span("m_partition_inc.scan"):
        for idx in range(start, candidates.shape[0]):
            guess = float(candidates[idx])
            if idx > start:
                for proc_index in events.get(guess, ()):
                    state.refresh(proc_index, guess)
                    refreshes += 1
            tried += 1
            feasible, k_hat = state.planned_moves(guess)
            if feasible and k_hat <= k:
                stop_guess = guess
                stop_k_hat = k_hat
                break
    telemetry.count("thresholds_tried", tried)
    telemetry.count("incremental_refreshes", refreshes)
    if stop_guess is not None:
        # Single full evaluation at the stopping threshold to apply
        # the tie-breaking selection and build the assignment.
        ev = evaluate_guess(tables, stop_guess)
        assert ev.planned_moves == stop_k_hat, (
            f"incremental k-hat {stop_k_hat} disagrees with rescan "
            f"{ev.planned_moves} at guess {stop_guess}"
        )
        with telemetry.span("m_partition_inc.construct"):
            assignment = _construct(instance, tables, ev)
        assignment.validate(max_moves=k)
        return RebalanceResult(
            assignment=assignment,
            algorithm="m-partition-incremental",
            guessed_opt=stop_guess,
            planned_moves=ev.planned_moves,
            meta=telemetry.attach(
                {
                    "L_T": ev.total_large,
                    "m_L": ev.large_processors,
                    "L_E": ev.extra_large,
                    "thresholds_tried": tried,
                },
                tmark,
            ),
        )
    raise RuntimeError("no feasible threshold found")  # pragma: no cover
