"""PTAS for budgeted load rebalancing (Section 4, Theorem 4).

Given a relocation-cost budget ``B``, the scheme finds an assignment of
relocation cost at most ``B`` whose makespan is at most
``(1 + eps) * OPT(B)``, where ``OPT(B)`` is the best makespan achievable
within the budget.

Construction, following the paper with ``delta = eps / 5``:

* **Outer search** — guesses ``T`` for the (discretized) optimum are
  scanned in increasing order on a geometric ``(1 + delta)`` grid
  starting at the structural lower bound ``max(avg load, max size)``.
  The first guess whose DP cost fits the budget is taken; it is within
  one grid step of the smallest admissible guess.

* **Discretization** — jobs of size > ``delta * T`` are *large*; their
  sizes round up to the nearest ``l_i = delta * (1 + delta)^i * T``,
  giving ``s = ceil(log_{1+delta}(1/delta))`` size classes.  Small-job
  loads round up to multiples of ``delta * T``.

* **Configurations** — a processor configuration is a tuple
  ``(x_1..x_s, V')``: ``x_i`` large jobs of class ``i`` plus small-load
  allowance ``V'`` (a multiple of ``delta * T``), *W-feasible* when
  ``V' + sum x_i l_i <= W = (1 + 2 delta) T`` (Definition 6).

* **Dynamic program** — states ``(n_1..n_s, M, V)``: distribute ``n_i``
  class-``i`` jobs and total small allowance ``V`` over the first ``M``
  processors; the transition tries every W-feasible configuration for
  processor ``M`` and adds the greedy transformation cost
  ``COST(C, C')`` (cheapest large jobs per class; small jobs in
  increasing cost-to-size ratio until the load is within
  ``V' + delta T``).  We memoize top-down over *reachable* states only,
  which keeps small instances tractable despite the scheme's enormous
  worst-case polynomial.

* **Reassignment** — removed large jobs fill per-class deficits; removed
  small jobs go, largest first, to any processor whose current small
  load is below its allowance ``V'`` (Lemma 11 bounds the resulting
  loads by ``(1 + 3 delta)`` of the target).

Faithfulness note: like the paper, the DP distributes the small-load
allowance ``V = V_R + delta * m * T`` exactly (base case ``V == 0``).
An optimal witness may under-consume ``V`` by up to ``~m * delta * T``
and needs spare W-headroom to absorb the surplus; when that headroom is
missing the guess fails and the outer loop pays one extra ``(1+delta)``
grid step — covered by choosing ``delta = eps / 6`` internally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from . import kernels
from .assignment import Assignment
from .instance import Instance
from .result import RebalanceResult

__all__ = ["PTASLimits", "ptas_rebalance"]

_INF = float("inf")


@dataclass(frozen=True)
class PTASLimits:
    """Resource guards for the DP (the scheme is polynomial but huge)."""

    max_states: int = 2_000_000
    max_configs_per_processor: int = 200_000


@dataclass
class _Discretization:
    """Everything derived from one guess ``T``."""

    guess: float
    delta: float
    num_classes: int  # s
    class_sizes: np.ndarray  # l_i, 1-indexed conceptually; here [0..s-1]
    unit: float  # delta * T, the small-load quantum
    w_cap: float  # W = (1 + 2 delta) T
    # Per processor:
    large_by_class: list[list[list[int]]]  # [proc][class] -> job idx, cost asc
    large_cost_prefix: list[list[np.ndarray]]
    small_jobs: list[list[int]]  # per proc, sorted by cost/size ratio asc
    small_size_prefix: list[np.ndarray]
    small_cost_prefix: list[np.ndarray]
    small_load: list[float]
    class_counts: np.ndarray  # global N_i
    total_small_units: int  # V / unit


def _discretize(instance: Instance, guess: float, delta: float) -> _Discretization:
    num_classes = max(1, math.ceil(math.log(1.0 / delta) / math.log(1.0 + delta)))
    class_sizes = np.array(
        [delta * (1.0 + delta) ** (i + 1) * guess for i in range(num_classes)]
    )
    unit = delta * guess
    m = instance.num_processors

    large_by_class: list[list[list[int]]] = [
        [[] for _ in range(num_classes)] for _ in range(m)
    ]
    small_jobs: list[list[int]] = [[] for _ in range(m)]
    small_load = [0.0] * m
    class_counts = np.zeros(num_classes, dtype=np.int64)

    for j in range(instance.num_jobs):
        size = float(instance.sizes[j])
        p = int(instance.initial[j])
        if size > delta * guess:
            ratio = size / (delta * guess)
            cls = max(1, math.ceil(math.log(ratio) / math.log(1.0 + delta) - 1e-12))
            cls = min(cls, num_classes)
            if class_sizes[cls - 1] < size - 1e-12 * size:
                raise ValueError(
                    f"job of size {size} exceeds the largest class at guess "
                    f"{guess}; raise the guess above the maximum job size"
                )
            large_by_class[p][cls - 1].append(j)
            class_counts[cls - 1] += 1
        else:
            small_jobs[p].append(j)
            small_load[p] += size

    # Sort large jobs by ascending cost (cheapest removed first) and
    # small jobs by ascending cost-to-size ratio.
    large_cost_prefix: list[list[np.ndarray]] = []
    for p in range(m):
        prefixes = []
        for cls in range(num_classes):
            large_by_class[p][cls].sort(
                key=lambda j: (instance.costs[j], j)
            )
            costs = np.array(
                [instance.costs[j] for j in large_by_class[p][cls]], dtype=np.float64
            )
            prefixes.append(np.concatenate(([0.0], np.cumsum(costs))))
        large_cost_prefix.append(prefixes)

    small_size_prefix: list[np.ndarray] = []
    small_cost_prefix: list[np.ndarray] = []
    for p in range(m):
        small_jobs[p].sort(
            key=lambda j: (instance.costs[j] / instance.sizes[j], j)
        )
        ssz = np.array([instance.sizes[j] for j in small_jobs[p]], dtype=np.float64)
        scs = np.array([instance.costs[j] for j in small_jobs[p]], dtype=np.float64)
        small_size_prefix.append(np.concatenate(([0.0], np.cumsum(ssz))))
        small_cost_prefix.append(np.concatenate(([0.0], np.cumsum(scs))))

    total_small = sum(small_load)
    v_r_units = math.ceil(total_small / unit - 1e-12) if total_small > 0 else 0
    total_small_units = v_r_units + m  # + delta * m * T, in units

    return _Discretization(
        guess=guess,
        delta=delta,
        num_classes=num_classes,
        class_sizes=class_sizes,
        unit=unit,
        w_cap=(1.0 + 2.0 * delta) * guess,
        large_by_class=large_by_class,
        large_cost_prefix=large_cost_prefix,
        small_jobs=small_jobs,
        small_size_prefix=small_size_prefix,
        small_cost_prefix=small_cost_prefix,
        small_load=small_load,
        class_counts=class_counts,
        total_small_units=total_small_units,
    )


def _enumerate_large_vectors(
    disc: _Discretization, limit: int
) -> list[tuple[tuple[int, ...], float]]:
    """All large-class count vectors ``x`` with ``sum x_i l_i <= W`` and
    ``x_i <= N_i``; returns ``(x, rounded_large_load)`` pairs."""
    out: list[tuple[tuple[int, ...], float]] = []
    sizes = disc.class_sizes
    counts = disc.class_counts
    s = disc.num_classes

    def rec(cls: int, current: list[int], load: float) -> None:
        if len(out) > limit:
            raise RuntimeError(
                "PTAS configuration enumeration exceeded "
                f"{limit} entries; reduce instance size or increase eps"
            )
        if cls == s:
            out.append((tuple(current), load))
            return
        max_count = int(counts[cls])
        x = 0
        while x <= max_count and load + x * sizes[cls] <= disc.w_cap + 1e-9:
            current.append(x)
            rec(cls + 1, current, load + x * sizes[cls])
            current.pop()
            x += 1

    rec(0, [], 0.0)
    return out


def _small_removal_cost(disc: _Discretization, proc: int, target: float) -> float:
    """Greedy small-removal cost so the remaining small load on ``proc``
    is at most ``target + unit`` (the paper's ``V' + delta * OPT``)."""
    v = disc.small_load[proc]
    slack = target + disc.unit
    if v <= slack + 1e-12:
        return 0.0
    need = v - slack
    prefix = disc.small_size_prefix[proc]
    r = int(np.searchsorted(prefix, need - 1e-12, side="left"))
    r = min(r, prefix.shape[0] - 1)
    return float(disc.small_cost_prefix[proc][r])


def _small_removal_set(disc: _Discretization, proc: int, target: float) -> list[int]:
    """The jobs the greedy of :func:`_small_removal_cost` removes."""
    v = disc.small_load[proc]
    slack = target + disc.unit
    if v <= slack + 1e-12:
        return []
    need = v - slack
    prefix = disc.small_size_prefix[proc]
    r = int(np.searchsorted(prefix, need - 1e-12, side="left"))
    r = min(r, prefix.shape[0] - 1)
    return disc.small_jobs[proc][:r]


def _solve_dp(
    instance: Instance, disc: _Discretization, limits: PTASLimits
) -> tuple[float, list[tuple[tuple[int, ...], int]]] | None:
    """Run the DP; return ``(min_cost, per-processor configs)`` or
    ``None`` when no exact distribution of ``V`` exists."""
    m = instance.num_processors
    large_vectors = _enumerate_large_vectors(
        disc, limits.max_configs_per_processor
    )
    unit = disc.unit

    # Per (processor, large-vector) removal cost for the large classes.
    def large_cost(proc: int, x: tuple[int, ...]) -> float:
        total = 0.0
        for cls in range(disc.num_classes):
            have = len(disc.large_by_class[proc][cls])
            keep = min(x[cls], have)
            total += float(disc.large_cost_prefix[proc][cls][have - keep])
        return total

    memo: dict[tuple[int, tuple[int, ...], int], float] = {}
    choice: dict[
        tuple[int, tuple[int, ...], int], tuple[tuple[int, ...], int]
    ] = {}

    def f(proc: int, n: tuple[int, ...], v_units: int) -> float:
        if proc == m:
            return 0.0 if (all(c == 0 for c in n) and v_units == 0) else _INF
        key = (proc, n, v_units)
        if key in memo:
            return memo[key]
        if len(memo) > limits.max_states:
            raise RuntimeError(
                f"PTAS DP exceeded {limits.max_states} states; "
                "reduce instance size or increase eps"
            )
        best = _INF
        best_choice: tuple[tuple[int, ...], int] | None = None
        remaining = m - proc
        for x, load in large_vectors:
            if any(x[i] > n[i] for i in range(disc.num_classes)):
                continue
            lc = large_cost(proc, x)
            if lc >= best:
                continue
            v_max = int((disc.w_cap - load + 1e-9) // unit)
            v_max = min(v_max, v_units)
            # The remaining processors must be able to absorb what is
            # left of V: each can take at most floor(W / unit).
            per_proc_cap = int((disc.w_cap + 1e-9) // unit)
            v_min = max(0, v_units - (remaining - 1) * per_proc_cap)
            child_n = tuple(n[i] - x[i] for i in range(disc.num_classes))
            for v_prime in range(v_max, v_min - 1, -1):
                cost = lc + _small_removal_cost(disc, proc, v_prime * unit)
                if cost >= best:
                    # Small-removal cost grows as v_prime shrinks, so
                    # no smaller v_prime can improve on this x.
                    break
                sub = f(proc + 1, child_n, v_units - v_prime)
                if cost + sub < best:
                    best = cost + sub
                    best_choice = (x, v_prime)
        memo[key] = best
        if best_choice is not None:
            choice[key] = best_choice
        return best

    root_n = tuple(int(c) for c in disc.class_counts)
    total_cost = f(0, root_n, disc.total_small_units)
    telemetry.count("ptas_dp_states", len(memo))
    if not math.isfinite(total_cost):
        return None

    # Walk the choices to extract each processor's configuration.
    configs: list[tuple[tuple[int, ...], int]] = []
    n = root_n
    v = disc.total_small_units
    for proc in range(m):
        x, v_prime = choice[(proc, n, v)]
        configs.append((x, v_prime))
        n = tuple(n[i] - x[i] for i in range(disc.num_classes))
        v -= v_prime
    return total_cost, configs


def _realize(
    instance: Instance,
    disc: _Discretization,
    configs: list[tuple[tuple[int, ...], int]],
) -> Assignment:
    """Turn per-processor configurations into an actual assignment."""
    m = instance.num_processors
    mapping = np.array(instance.initial, dtype=np.int64)

    # Large jobs: keep the most expensive per class up to x_i, pool the
    # rest, then fill per-class deficits.
    pool_by_class: list[list[int]] = [[] for _ in range(disc.num_classes)]
    deficit: list[list[int]] = [[] for _ in range(disc.num_classes)]  # procs, repeated
    for p in range(m):
        x, _ = configs[p]
        for cls in range(disc.num_classes):
            have = disc.large_by_class[p][cls]
            keep = min(x[cls], len(have))
            pool_by_class[cls].extend(have[: len(have) - keep])
            for _ in range(x[cls] - keep):
                deficit[cls].append(p)
    for cls in range(disc.num_classes):
        assert len(pool_by_class[cls]) == len(deficit[cls]), (
            "large-job bookkeeping out of balance in class "
            f"{cls}: {len(pool_by_class[cls])} pooled vs "
            f"{len(deficit[cls])} deficit slots"
        )
        for j, p in zip(pool_by_class[cls], deficit[cls]):
            mapping[j] = p

    # Small jobs: apply the greedy removal per processor, then place the
    # pool on processors with small load below their allowance.
    small_load = list(disc.small_load)
    allowance = [configs[p][1] * disc.unit for p in range(m)]
    pool_small: list[int] = []
    for p in range(m):
        removed = _small_removal_set(disc, p, allowance[p])
        for j in removed:
            pool_small.append(j)
            small_load[p] -= float(instance.sizes[j])
    pool_small.sort(key=lambda j: (-instance.sizes[j], j))
    for j in pool_small:
        candidates = [p for p in range(m) if small_load[p] < allowance[p] - 1e-12]
        assert candidates, (
            "no processor has spare small-load allowance; the DP's "
            "exact-V invariant was violated"
        )
        p = min(candidates, key=lambda q: small_load[q] - allowance[q])
        mapping[j] = p
        small_load[p] += float(instance.sizes[j])

    return Assignment(instance=instance, mapping=mapping)


def _evaluate_guess(
    payload: tuple[Instance, float, float, PTASLimits, str],
) -> tuple[float, list[tuple[tuple[int, ...], int]]] | None:
    """Discretize and solve one outer guess ``T``.

    Module-level (and fed a single picklable payload) so the parallel
    sweep runner can fan guesses out across worker processes.
    """
    instance, guess, delta, limits, backend = payload
    with telemetry.span("ptas.discretize"):
        disc = _discretize(instance, guess, delta)
    with telemetry.span("ptas.dp"):
        if backend == "kernel":
            return kernels.solve_ptas_dp(disc, instance.num_processors, limits)
        if backend == "reference":
            return _solve_dp(instance, disc, limits)
        raise ValueError(f"unknown backend {backend!r}")


def ptas_rebalance(
    instance: Instance,
    budget: float,
    eps: float = 0.5,
    limits: PTASLimits | None = None,
    backend: str = "kernel",
    workers: int = 1,
) -> RebalanceResult:
    """Run the Section-4 PTAS with cost budget ``B = budget``.

    Returns an assignment of relocation cost at most ``budget`` and
    makespan at most ``(1 + eps)`` times the optimal makespan achievable
    within the budget (up to the grid/rounding slack discussed in the
    module docstring; the test suite checks the end-to-end bound against
    the exact optimum).

    ``eps`` trades quality for time *steeply*: the number of size
    classes is ``ceil(log_{1+delta}(1/delta))`` with ``delta = eps/6``,
    and the DP is exponential in that count.  Values below roughly
    ``0.75`` are only practical for very small instances.

    ``backend`` selects the configuration-DP implementation:
    ``"kernel"`` (default) is the iterative layered DP in
    :mod:`repro.core.kernels`, ``"reference"`` the original recursive
    memo DP — both return identical costs and configurations.
    ``workers > 1`` fans the independent outer guesses out over that
    many worker processes; the chunked in-order scan accepts exactly
    the guess the serial scan would, so the chosen threshold (and hence
    the result) is identical.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if limits is None:
        limits = PTASLimits()
    if instance.num_jobs == 0:
        return RebalanceResult(
            assignment=Assignment.initial(instance),
            algorithm="ptas",
            guessed_opt=0.0,
            planned_cost=0.0,
            meta={"eps": eps},
        )
    delta = eps / 6.0
    lb = max(instance.average_load, instance.max_size)
    ub = 4.0 * max(instance.initial_makespan, lb)
    guesses: list[float] = []
    t = lb
    while t < ub:
        guesses.append(t)
        t *= 1.0 + delta
    guesses.append(ub)

    tmark = telemetry.mark()
    tol = 1e-9 * max(1.0, budget)

    def admissible(solved) -> bool:
        return solved is not None and solved[0] <= budget + tol

    payloads = [(instance, guess, delta, limits, backend) for guess in guesses]
    if workers > 1:
        from .. import parallel

        hit = parallel.run_until(
            _evaluate_guess, payloads, admissible, workers=workers
        )
        scan = [] if hit is None else [hit]
    else:
        hit = None
        scan = (
            (i, _evaluate_guess(payloads[i])) for i in range(len(guesses))
        )
    for idx, solved in scan:
        if not admissible(solved):
            continue
        guess = guesses[idx]
        tried = idx + 1
        cost, configs = solved
        telemetry.count("guesses_tried", tried)
        disc = _discretize(instance, guess, delta)
        with telemetry.span("ptas.realize"):
            assignment = _realize(instance, disc, configs)
        if assignment.relocation_cost > budget + tol:
            # Defensive: realization never exceeds the planned cost,
            # but refuse to return an infeasible answer.
            break  # pragma: no cover
        return RebalanceResult(
            assignment=assignment,
            algorithm="ptas",
            guessed_opt=guess,
            planned_cost=cost,
            meta=telemetry.attach(
                {
                    "eps": eps,
                    "delta": delta,
                    "num_classes": disc.num_classes,
                    "guesses_tried": tried,
                    "backend": backend,
                },
                tmark,
            ),
        )
    raise RuntimeError(
        "PTAS failed to find a within-budget guess; this should be "
        "impossible because the identity assignment costs nothing"
    )  # pragma: no cover
