"""Lower bounds on the optimal rebalanced makespan ``OPT(k)``.

The paper uses three lower bounds:

* the *average load* ``sum(sizes) / m`` (any assignment has some
  processor at least this loaded) — Section 3.1 starts M-PARTITION's
  threshold search here;
* the *maximum job size* (the job must sit somewhere);
* the *greedy removal bound* ``G1`` of Lemma 1: the smallest possible
  maximum load obtainable by removing (not reassigning!) ``k`` jobs,
  which is achieved by repeatedly deleting the largest job from the
  currently most-loaded processor.  Since reassignment only adds load,
  ``G1 <= OPT(k)``.
"""

from __future__ import annotations

import heapq

import numpy as np

from .instance import Instance

__all__ = [
    "average_load_bound",
    "max_job_bound",
    "greedy_removal_bound",
    "combined_lower_bound",
]


def average_load_bound(instance: Instance) -> float:
    """``sum(sizes) / m``; valid for any number of moves."""
    return instance.average_load


def max_job_bound(instance: Instance) -> float:
    """``max(sizes)``; valid for any number of moves."""
    return instance.max_size


def greedy_removal_bound(instance: Instance, k: int) -> float:
    """Lemma 1's ``G1``: max load after greedily deleting ``k`` jobs.

    Repeat ``k`` times: from the maximum-load processor, remove the
    largest job.  Lemma 1 proves the resulting maximum load is the
    minimum over *all* ways of deleting ``k`` jobs, hence a lower bound
    on ``OPT(k)`` (reassigning the deleted jobs can only increase some
    processor's load).

    Runs in ``O(n log n)``: jobs are pre-sorted per processor and a max
    heap tracks processor loads.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    m = instance.num_processors
    # Per-processor stacks of job sizes, largest on top.
    stacks: list[list[float]] = [[] for _ in range(m)]
    for j in range(instance.num_jobs):
        stacks[int(instance.initial[j])].append(float(instance.sizes[j]))
    for stack in stacks:
        stack.sort()  # ascending; pop() yields the largest
    loads = [float(x) for x in instance.initial_loads]
    # Max-heap of (-load, processor).
    heap = [(-loads[p], p) for p in range(m)]
    heapq.heapify(heap)
    removed = 0
    while removed < k:
        neg_load, p = heapq.heappop(heap)
        if -neg_load != loads[p]:
            continue  # stale entry
        if not stacks[p]:
            # Most-loaded processor is empty => all processors empty.
            heapq.heappush(heap, (neg_load, p))
            break
        largest = stacks[p].pop()
        loads[p] -= largest
        heapq.heappush(heap, (-loads[p], p))
        removed += 1
    return max(loads) if loads else 0.0


def combined_lower_bound(instance: Instance, k: int | None = None) -> float:
    """The best of all applicable lower bounds.

    With ``k is None`` the move count is unconstrained and only the
    structural bounds (average load, max job) apply.
    """
    bound = max(average_load_bound(instance), max_job_bound(instance))
    if k is not None:
        bound = max(bound, greedy_removal_bound(instance, k))
    return bound
