"""Algorithm output record.

Every rebalancing algorithm in :mod:`repro.core` and
:mod:`repro.baselines` returns a :class:`RebalanceResult`, so harness
code can treat them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .assignment import Assignment

__all__ = ["RebalanceResult"]


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of one rebalancing run.

    Attributes
    ----------
    assignment:
        The final assignment produced by the algorithm.
    algorithm:
        Short identifier, e.g. ``"greedy"`` or ``"m-partition"``.
    guessed_opt:
        For algorithms that guess/search the optimal makespan
        (PARTITION, the Section 3.2 variant, the PTAS), the final guess
        used; ``None`` otherwise.
    planned_moves:
        The algorithm's *internal* move accounting (removals), an upper
        bound on :attr:`Assignment.num_moves`.  ``None`` when the
        algorithm does not plan removals (e.g. GREEDY counts directly).
    planned_cost:
        Internal cost accounting (sum of removal costs), an upper bound
        on :attr:`Assignment.relocation_cost`.
    meta:
        Free-form diagnostic data (iteration counts, thresholds tried,
        LP statistics, ...).  When telemetry collection is active (see
        :mod:`repro.telemetry`), solvers additionally attach a
        ``"telemetry"`` sub-dict holding the spans and counters
        recorded during this call.
    """

    assignment: Assignment
    algorithm: str
    guessed_opt: float | None = None
    planned_moves: int | None = None
    planned_cost: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Makespan of the final assignment."""
        return self.assignment.makespan

    @property
    def num_moves(self) -> int:
        """Actual relocations performed."""
        return self.assignment.num_moves

    @property
    def relocation_cost(self) -> float:
        """Actual relocation cost incurred."""
        return self.assignment.relocation_cost

    def summary(self) -> dict:
        """Headline numbers plus algorithm identity."""
        out = self.assignment.summary()
        out["algorithm"] = self.algorithm
        if self.guessed_opt is not None:
            out["guessed_opt"] = self.guessed_opt
        return out
