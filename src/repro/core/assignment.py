"""Assignments of jobs to processors and their accounting.

An :class:`Assignment` couples an :class:`~repro.core.instance.Instance`
with a (new) mapping of jobs to processors and exposes the quantities
the paper's analysis tracks: per-processor loads, the makespan, the set
of *moved* jobs (jobs whose processor differs from the initial
assignment), the move count, and the total relocation cost.

The paper's algorithms account "moves" as job *removals* (a removed job
may legally be reassigned to its origin at zero real cost; see the
remark before Lemma 3).  :class:`Assignment` reports *actual*
relocations, which never exceed removals, so any removal-count guarantee
transfers directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .instance import Instance

__all__ = ["Assignment"]


@dataclass(frozen=True)
class Assignment:
    """An assignment of every job of ``instance`` to a processor."""

    instance: Instance
    mapping: np.ndarray
    _loads: np.ndarray = field(repr=False, compare=False, default=None)  # type: ignore[assignment]
    _moved: np.ndarray = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._loads is not None:
            # Sparse fast path (solver constructors): the caller hands
            # over a fresh, exclusively-owned int64 mapping plus the
            # exact per-processor loads it maintained while building it
            # (and optionally the ascending moved-job set), so the O(n)
            # copy/scan/scatter-add below is skipped.  ``validate()``
            # still recomputes loads from scratch when called.
            mapping = self.mapping
            if mapping.shape != (self.instance.num_jobs,):
                raise ValueError(
                    f"mapping has shape {mapping.shape}; expected "
                    f"({self.instance.num_jobs},)"
                )
            mapping.setflags(write=False)
            self._loads.setflags(write=False)
            if self._moved is not None:
                self._moved.setflags(write=False)
            return
        mapping = np.asarray(self.mapping, dtype=np.int64).copy()
        if mapping.shape != (self.instance.num_jobs,):
            raise ValueError(
                f"mapping has shape {mapping.shape}; expected "
                f"({self.instance.num_jobs},)"
            )
        if mapping.size and (
            mapping.min() < 0 or mapping.max() >= self.instance.num_processors
        ):
            raise ValueError(
                "mapping refers to processors outside "
                f"[0, {self.instance.num_processors})"
            )
        mapping.setflags(write=False)
        object.__setattr__(self, "mapping", mapping)
        loads = np.zeros(self.instance.num_processors, dtype=np.float64)
        np.add.at(loads, mapping, self.instance.sizes)
        loads.setflags(write=False)
        object.__setattr__(self, "_loads", loads)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, instance: Instance) -> "Assignment":
        """The identity assignment (no job moves)."""
        return cls(instance=instance, mapping=instance.initial)

    @classmethod
    def from_moves(
        cls, instance: Instance, moves: Mapping[int, int]
    ) -> "Assignment":
        """Build an assignment by applying ``{job index: new processor}``
        moves on top of the initial assignment."""
        mapping = np.array(instance.initial, dtype=np.int64)
        for job, proc in moves.items():
            mapping[job] = proc
        return cls(instance=instance, mapping=mapping)

    # ------------------------------------------------------------------
    # Loads and makespan
    # ------------------------------------------------------------------
    @property
    def loads(self) -> np.ndarray:
        """Per-processor load (read-only array of length ``m``)."""
        return self._loads

    @property
    def makespan(self) -> float:
        """Maximum processor load — the objective of Definition 1."""
        if self.instance.num_processors == 0:
            return 0.0
        return float(self._loads.max())

    @property
    def min_load(self) -> float:
        """Minimum processor load."""
        return float(self._loads.min())

    def load_of(self, processor: int) -> float:
        """Load of a single processor."""
        return float(self._loads[processor])

    def jobs_on(self, processor: int) -> np.ndarray:
        """Indices of jobs assigned to ``processor`` (ascending)."""
        return np.flatnonzero(self.mapping == processor)

    # ------------------------------------------------------------------
    # Move accounting
    # ------------------------------------------------------------------
    @property
    def moved_jobs(self) -> np.ndarray:
        """Indices of jobs whose processor differs from the initial one."""
        if self._moved is not None:
            return self._moved
        return np.flatnonzero(self.mapping != self.instance.initial)

    @property
    def num_moves(self) -> int:
        """Number of relocated jobs (the paper's ``k`` budget metric)."""
        if self._moved is not None:
            return int(self._moved.shape[0])
        return int((self.mapping != self.instance.initial).sum())

    @property
    def relocation_cost(self) -> float:
        """Total relocation cost ``sum(c_i for moved i)`` (budget ``B``)."""
        if self._moved is not None:
            return float(self.instance.costs[self._moved].sum())
        moved = self.mapping != self.instance.initial
        return float(self.instance.costs[moved].sum())

    # ------------------------------------------------------------------
    # Validation / transformation
    # ------------------------------------------------------------------
    def validate(
        self,
        max_moves: int | None = None,
        budget: float | None = None,
        max_makespan: float | None = None,
        atol: float = 1e-9,
    ) -> None:
        """Raise ``AssertionError`` unless the assignment meets the
        given constraints.  Used by tests and by solver post-conditions.
        """
        assert self.mapping.shape == (self.instance.num_jobs,)
        recomputed = np.zeros(self.instance.num_processors)
        np.add.at(recomputed, self.mapping, self.instance.sizes)
        assert np.allclose(recomputed, self._loads), "load bookkeeping corrupt"
        if self._moved is not None:
            actual = np.flatnonzero(self.mapping != self.instance.initial)
            assert np.array_equal(self._moved, actual), (
                "moved-job cache disagrees with the mapping"
            )
        assert abs(self._loads.sum() - self.instance.total_size) <= atol * max(
            1.0, self.instance.total_size
        ), "load not conserved"
        if max_moves is not None:
            assert self.num_moves <= max_moves, (
                f"{self.num_moves} moves exceeds budget {max_moves}"
            )
        if budget is not None:
            assert self.relocation_cost <= budget + atol * max(1.0, budget), (
                f"cost {self.relocation_cost} exceeds budget {budget}"
            )
        if max_makespan is not None:
            assert self.makespan <= max_makespan + atol * max(1.0, max_makespan), (
                f"makespan {self.makespan} exceeds bound {max_makespan}"
            )

    def with_move(self, job: int, processor: int) -> "Assignment":
        """A new assignment with ``job`` placed on ``processor``."""
        mapping = np.array(self.mapping)
        mapping[job] = processor
        return Assignment(instance=self.instance, mapping=mapping)

    def moves_as_dict(self) -> dict[int, int]:
        """``{job index: new processor}`` for every relocated job."""
        return {
            int(j): int(self.mapping[j]) for j in self.moved_jobs
        }

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Small dict of headline numbers, for logging and reports."""
        return {
            "makespan": self.makespan,
            "num_moves": self.num_moves,
            "relocation_cost": self.relocation_cost,
            "min_load": self.min_load,
            "initial_makespan": self.instance.initial_makespan,
        }


def apply_sequence(
    instance: Instance, sequence: Sequence[tuple[int, int]]
) -> Assignment:
    """Apply an ordered sequence of ``(job, processor)`` moves.

    Later moves of the same job override earlier ones, matching the
    paper's convention that a removal followed by a reassignment is a
    single relocation.
    """
    mapping = np.array(instance.initial, dtype=np.int64)
    for job, proc in sequence:
        mapping[job] = proc
    return Assignment(instance=instance, mapping=mapping)
