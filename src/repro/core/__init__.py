"""Core algorithms of the load rebalancing paper.

This package implements the paper's primary contributions:

* :mod:`repro.core.greedy` — the tight ``(2 - 1/m)``-approximation
  (Section 2, Theorem 1);
* :mod:`repro.core.partition` — PARTITION and M-PARTITION, the
  1.5-approximation (Section 3, Theorems 2–3);
* :mod:`repro.core.cost_partition` — the arbitrary-cost extension
  (Section 3.2);
* :mod:`repro.core.ptas` — the PTAS for the budgeted weighted problem
  (Section 4, Theorem 4);
* :mod:`repro.core.exact` / :mod:`repro.core.milp` — exact ground-truth
  solvers for small instances;

plus the shared data model (:class:`Instance`, :class:`Assignment`,
:class:`RebalanceResult`) and supporting machinery (lower bounds,
threshold enumeration, knapsack subroutines).
"""

from .assignment import Assignment
from .certify import Certificate, certify
from .cost_partition import cost_partition_rebalance, evaluate_cost_guess
from .engine import EngineStats, RebalanceEngine
from .exact import exact_rebalance
from .greedy import greedy_rebalance
from .instance import Instance, make_instance
from .job import Job
from .knapsack import (
    KnapsackSolution,
    keep_max_cost,
    keep_max_cost_exact,
    keep_max_cost_fptas,
    min_removal_cost,
)
from .lower_bounds import (
    average_load_bound,
    combined_lower_bound,
    greedy_removal_bound,
    max_job_bound,
)
from .milp import HAS_MILP, milp_rebalance
from .partition import (
    GuessEvaluation,
    evaluate_guess,
    m_partition_rebalance,
    partition_rebalance,
)
from .partition_incremental import m_partition_rebalance_incremental
from .unit_jobs import unit_rebalance_exact
from .ptas import PTASLimits, ptas_rebalance
from .result import RebalanceResult
from .solvers import available_algorithms, rebalance, register_algorithm
from .thresholds import (
    ProcessorTable,
    ThresholdTables,
    build_tables,
    candidate_guesses,
    patch_tables,
    scan_start,
)

__all__ = [
    "Assignment",
    "Certificate",
    "certify",
    "EngineStats",
    "GuessEvaluation",
    "HAS_MILP",
    "Instance",
    "Job",
    "KnapsackSolution",
    "ProcessorTable",
    "PTASLimits",
    "RebalanceEngine",
    "RebalanceResult",
    "ThresholdTables",
    "available_algorithms",
    "average_load_bound",
    "build_tables",
    "candidate_guesses",
    "combined_lower_bound",
    "cost_partition_rebalance",
    "evaluate_cost_guess",
    "evaluate_guess",
    "exact_rebalance",
    "greedy_rebalance",
    "greedy_removal_bound",
    "keep_max_cost",
    "keep_max_cost_exact",
    "keep_max_cost_fptas",
    "m_partition_rebalance",
    "m_partition_rebalance_incremental",
    "make_instance",
    "max_job_bound",
    "milp_rebalance",
    "min_removal_cost",
    "partition_rebalance",
    "patch_tables",
    "scan_start",
    "ptas_rebalance",
    "rebalance",
    "unit_rebalance_exact",
    "register_algorithm",
]


def _register_extras() -> None:
    """Expose the extension solvers through :func:`rebalance` dispatch."""

    def _incremental(instance, k=None, budget=None, **kwargs):
        if k is None:
            if not instance.is_unit_cost:
                raise ValueError("m-partition-incremental needs a move budget k")
            k = int(budget)
        return m_partition_rebalance_incremental(instance, k, **kwargs)

    def _unit(instance, k=None, budget=None, **kwargs):
        if k is None:
            k = int(budget)
        return unit_rebalance_exact(instance, k, **kwargs)

    for _name, _fn in (
        ("m-partition-incremental", _incremental),
        ("unit-exact", _unit),
    ):
        try:
            register_algorithm(_name, _fn)
        except ValueError:
            pass  # idempotent re-import


_register_extras()
