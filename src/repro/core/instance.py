"""Problem instance model for load rebalancing.

An :class:`Instance` bundles the static data of Definition 1 of the
paper: ``n`` job sizes, ``m`` processors, an initial assignment of jobs
to processors, and (for the weighted variant) per-job relocation costs.

Instances are immutable; algorithms produce new
:class:`~repro.core.assignment.Assignment` objects instead of mutating
the instance.  All array attributes are numpy arrays with write access
disabled, so they can be shared freely between algorithm internals
without defensive copies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .job import Job

__all__ = ["Instance", "apply_delta", "compute_delta", "make_instance"]


def _as_readonly(arr: np.ndarray, values: object, name: str) -> np.ndarray:
    """Freeze ``arr`` (the ``asarray`` of ``values``) without copying
    when that is safe.

    Already-read-only input arrays pass through untouched — this is the
    zero-copy path the shared-memory snapshot plane relies on: a worker
    builds ``np.frombuffer`` views over shm pages, marks them read-only,
    and constructs an :class:`Instance` around them with no per-array
    copy.  A writable array is defensively copied only when the caller
    may still hold a writable alias (it *is* the input, or it is a view
    into the input); arrays freshly materialized from lists or dtype
    casts are frozen in place.
    """
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.flags.writeable:
        if arr is values or arr.base is not None:
            arr = arr.copy()
        arr.setflags(write=False)
    return arr


def _as_readonly_f64(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    return _as_readonly(np.asarray(values, dtype=np.float64), values, name)


def _as_readonly_i64(values: Sequence[int] | np.ndarray, name: str) -> np.ndarray:
    return _as_readonly(np.asarray(values, dtype=np.int64), values, name)


@dataclass(frozen=True)
class Instance:
    """An immutable load rebalancing instance.

    Attributes
    ----------
    sizes:
        Array of ``n`` strictly positive job sizes.
    costs:
        Array of ``n`` non-negative relocation costs (all ones for the
        unit-cost problem).
    num_processors:
        ``m``, the number of processors.
    initial:
        Array of ``n`` processor indices in ``[0, m)``: the initial
        (possibly suboptimal) assignment the rebalancer starts from.
    """

    sizes: np.ndarray
    costs: np.ndarray
    num_processors: int
    initial: np.ndarray
    _loads: np.ndarray = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", _as_readonly_f64(self.sizes, "sizes"))
        object.__setattr__(self, "costs", _as_readonly_f64(self.costs, "costs"))
        object.__setattr__(self, "initial", _as_readonly_i64(self.initial, "initial"))
        if self.num_processors <= 0:
            raise ValueError("num_processors must be positive")
        n = self.sizes.shape[0]
        if self.costs.shape[0] != n:
            raise ValueError(
                f"costs has length {self.costs.shape[0]} but there are {n} jobs"
            )
        if self.initial.shape[0] != n:
            raise ValueError(
                f"initial assignment has length {self.initial.shape[0]} "
                f"but there are {n} jobs"
            )
        if n and not np.isfinite(self.sizes).all():
            raise ValueError("all job sizes must be finite")
        if n and not np.isfinite(self.costs).all():
            raise ValueError("all relocation costs must be finite")
        if n and self.sizes.min() <= 0:
            raise ValueError("all job sizes must be strictly positive")
        if n and self.costs.min() < 0:
            raise ValueError("all relocation costs must be non-negative")
        if n and (self.initial.min() < 0 or self.initial.max() >= self.num_processors):
            raise ValueError(
                "initial assignment refers to processors outside "
                f"[0, {self.num_processors})"
            )
        loads = np.zeros(self.num_processors, dtype=np.float64)
        np.add.at(loads, self.initial, self.sizes)
        loads.setflags(write=False)
        object.__setattr__(self, "_loads", loads)

    @classmethod
    def trusted(
        cls,
        sizes: np.ndarray,
        costs: np.ndarray,
        num_processors: int,
        initial: np.ndarray,
    ) -> "Instance":
        """Zero-copy, zero-validation constructor for pre-validated arrays.

        The O(churn) server path keeps each shard's snapshot resident as
        arrays it mutates in place; every epoch it wraps read-only views
        of those arrays in an ``Instance`` for the engine.  Paying the
        full ``__post_init__`` — three O(n) finite/range scans plus the
        O(n) load accumulation — per epoch would defeat the point, so
        this constructor skips validation entirely and defers the load
        vector until :attr:`initial_loads` is first read.

        Callers own the precondition: the arrays must be 1-D, equal
        length, validated at admission (the wire layer validates each
        delta's changed sites in O(c)), and must not be mutated while
        this instance is reachable.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "sizes", sizes)
        object.__setattr__(obj, "costs", costs)
        object.__setattr__(obj, "num_processors", int(num_processors))
        object.__setattr__(obj, "initial", initial)
        object.__setattr__(obj, "_loads", None)
        return obj

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        """``n``, the number of jobs."""
        return int(self.sizes.shape[0])

    @property
    def initial_loads(self) -> np.ndarray:
        """Per-processor load of the initial assignment (read-only).

        Computed eagerly by the validating constructor; instances built
        via :meth:`trusted` compute it on first access (same
        accumulation order, so the floats are bit-identical).
        """
        if self._loads is None:
            loads = np.zeros(self.num_processors, dtype=np.float64)
            np.add.at(loads, self.initial, self.sizes)
            loads.setflags(write=False)
            object.__setattr__(self, "_loads", loads)
        return self._loads

    @property
    def initial_makespan(self) -> float:
        """Makespan (maximum load) of the initial assignment."""
        if self.num_processors == 0:
            return 0.0
        return float(self.initial_loads.max())

    @property
    def total_size(self) -> float:
        """Sum of all job sizes."""
        return float(self.sizes.sum())

    @property
    def average_load(self) -> float:
        """Total size divided by the number of processors.

        A universal lower bound on the makespan of *any* assignment,
        used by M-PARTITION as its starting guess (Section 3.1).
        """
        return self.total_size / self.num_processors

    @property
    def max_size(self) -> float:
        """The largest job size; a lower bound on any makespan."""
        return float(self.sizes.max()) if self.num_jobs else 0.0

    @property
    def is_unit_cost(self) -> bool:
        """True when every relocation cost is exactly one."""
        return bool(np.all(self.costs == 1.0))

    def job(self, index: int) -> Job:
        """Materialize job ``index`` as a :class:`Job` value."""
        return Job(
            size=float(self.sizes[index]),
            cost=float(self.costs[index]),
            index=index,
        )

    def jobs(self) -> list[Job]:
        """Materialize all jobs, in index order."""
        return [self.job(i) for i in range(self.num_jobs)]

    def jobs_on(self, processor: int) -> np.ndarray:
        """Indices of jobs initially on ``processor`` (ascending)."""
        return np.flatnonzero(self.initial == processor)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form suitable for JSON round-tripping."""
        return {
            "sizes": self.sizes.tolist(),
            "costs": self.costs.tolist(),
            "num_processors": self.num_processors,
            "initial": self.initial.tolist(),
        }

    def to_wire(self) -> dict:
        """Buffer export: like :meth:`to_dict` but with the arrays kept
        as numpy arrays instead of Python lists.

        The binary wire protocol (:mod:`repro.service.protocol` v2)
        ships these buffers raw; a JSON encoder listifies them to the
        exact :meth:`to_dict` output.  :meth:`from_dict` accepts either
        form, so ``from_dict(to_wire(...))`` round-trips bit-exactly —
        that is the buffer import path for frames decoded zero-copy via
        ``np.frombuffer``.
        """
        return {
            "sizes": self.sizes,
            "costs": self.costs,
            "num_processors": self.num_processors,
            "initial": self.initial,
        }

    def to_json(self) -> str:
        """Canonical JSON encoding of this instance."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            sizes=np.asarray(data["sizes"], dtype=np.float64),
            costs=np.asarray(data["costs"], dtype=np.float64),
            num_processors=int(data["num_processors"]),
            initial=np.asarray(data["initial"], dtype=np.int64),
        )

    @classmethod
    def from_json(cls, text: str) -> "Instance":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def with_unit_costs(self) -> "Instance":
        """Copy of this instance with all relocation costs set to 1."""
        return Instance(
            sizes=self.sizes,
            costs=np.ones(self.num_jobs),
            num_processors=self.num_processors,
            initial=self.initial,
        )

    def with_initial(self, initial: Sequence[int] | np.ndarray) -> "Instance":
        """Copy of this instance with a different initial assignment."""
        return Instance(
            sizes=self.sizes,
            costs=self.costs,
            num_processors=self.num_processors,
            initial=np.asarray(initial, dtype=np.int64),
        )

    def scaled(self, factor: float) -> "Instance":
        """Copy with every job size multiplied by ``factor > 0``.

        Rebalancing is scale-invariant (Definition 1 constrains move
        count / cost, not load); this helper supports property tests of
        that invariance.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Instance(
            sizes=self.sizes * factor,
            costs=self.costs,
            num_processors=self.num_processors,
            initial=self.initial,
        )


def compute_delta(base: Instance, new: Instance) -> dict | None:
    """Changed-site delta turning ``base`` into ``new``, or ``None``.

    The delta lists every job index whose size, cost, or initial
    placement differs, with the new values at those indices — the
    payload a v2 delta frame carries instead of a full snapshot.
    ``None`` means the instances are not delta-compatible (different
    job count or processor count) and a full snapshot must be sent.
    Comparisons are bit-exact (``!=`` on the raw float64/int64 arrays),
    so ``apply_delta(base, compute_delta(base, new))`` reconstructs
    ``new`` bit for bit.
    """
    if (
        base.num_jobs != new.num_jobs
        or base.num_processors != new.num_processors
    ):
        return None
    changed = (
        (base.sizes != new.sizes)
        | (base.costs != new.costs)
        | (base.initial != new.initial)
    )
    idx = np.flatnonzero(changed)
    return {
        "idx": idx.astype(np.int64, copy=False),
        "sizes": new.sizes[idx],
        "costs": new.costs[idx],
        "initial": new.initial[idx],
    }


def apply_delta(base: Instance, delta: dict) -> Instance:
    """Inverse of :func:`compute_delta`: materialize the new snapshot.

    ``delta`` values may be lists (JSON transport) or numpy arrays
    (binary transport).  Raises :class:`ValueError` on malformed deltas
    — mismatched array lengths or job indices outside ``[0, n)`` — so
    wire-facing callers can map it to a ``bad request``.
    """
    idx = np.asarray(delta["idx"], dtype=np.int64)
    sizes_new = np.asarray(delta["sizes"], dtype=np.float64)
    costs_new = np.asarray(delta["costs"], dtype=np.float64)
    initial_new = np.asarray(delta["initial"], dtype=np.int64)
    if not (idx.shape == sizes_new.shape == costs_new.shape == initial_new.shape):
        raise ValueError("delta arrays must all have the changed-site length")
    if idx.size and (idx.min() < 0 or idx.max() >= base.num_jobs):
        raise ValueError(
            f"delta refers to jobs outside [0, {base.num_jobs})"
        )
    sizes = base.sizes.copy()
    costs = base.costs.copy()
    initial = base.initial.copy()
    sizes[idx] = sizes_new
    costs[idx] = costs_new
    initial[idx] = initial_new
    return Instance(
        sizes=sizes,
        costs=costs,
        num_processors=base.num_processors,
        initial=initial,
    )


def make_instance(
    sizes: Iterable[float],
    initial: Iterable[int],
    num_processors: int | None = None,
    costs: Iterable[float] | None = None,
) -> Instance:
    """Convenience constructor.

    ``num_processors`` defaults to ``max(initial) + 1``; ``costs``
    defaults to unit costs.
    """
    sizes_arr = np.asarray(list(sizes), dtype=np.float64)
    initial_arr = np.asarray(list(initial), dtype=np.int64)
    if num_processors is None:
        if initial_arr.size == 0:
            raise ValueError("num_processors required for an empty instance")
        num_processors = int(initial_arr.max()) + 1
    if costs is None:
        costs_arr = np.ones(sizes_arr.shape[0], dtype=np.float64)
    else:
        costs_arr = np.asarray(list(costs), dtype=np.float64)
    return Instance(
        sizes=sizes_arr,
        costs=costs_arr,
        num_processors=num_processors,
        initial=initial_arr,
    )
