"""PARTITION and M-PARTITION — the 1.5-approximation (Section 3).

``PARTITION`` (Theorem 2) takes the value of ``OPT`` as input and
produces an assignment with makespan at most ``1.5 * OPT`` using no more
job removals than any optimal algorithm uses relocations.

``M-PARTITION`` (Section 3.1, Theorem 3) removes the ``OPT``-oracle
assumption: the tuple ``(L_T, a_i, b_i)`` changes only at the ``O(n)``
threshold values enumerated by :mod:`repro.core.thresholds`, so it scans
those guesses in increasing order and stops at the first guess whose
planned move count is within the budget ``k``.  Lemma 6 shows the
stopping guess never exceeds the true ``OPT``, which preserves the
``1.5``-approximation.

Terminology (Definition 1 of Section 3, with guess ``A``):

* a job is *large* iff its size is strictly greater than ``A / 2``;
* ``L_T`` = total number of large jobs, ``m_L`` = number of processors
  initially holding at least one large job, ``L_E = L_T - m_L``;
* a processor is *large-free* if it currently holds no large job.

The algorithm's phases:

1. On every processor with several large jobs, keep only the smallest
   large job (``L_E`` removals).
2. Compute ``a_i``, ``b_i``, ``c_i = a_i - b_i`` per processor.
3. Select the ``L_T`` processors of smallest ``c_i`` (ties prefer
   processors holding a large job) and remove their ``a_i`` largest
   small jobs, leaving small load at most ``A / 2``.
4. On every unselected processor remove the ``b_i`` largest jobs
   (largest-first removal takes the kept large job first), leaving load
   at most ``A`` and no large jobs; route the removed large jobs to
   distinct large-free selected processors.
5. Route the Step-1 large jobs to the remaining large-free selected
   processors.
6. Greedily place the removed small jobs, each on the current
   minimum-load processor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from .assignment import Assignment
from .instance import Instance
from .result import RebalanceResult
from .thresholds import ThresholdTables, build_tables, candidate_guesses, scan_start

__all__ = [
    "GuessEvaluation",
    "evaluate_guess",
    "partition_rebalance",
    "m_partition_rebalance",
]


@dataclass(frozen=True)
class GuessEvaluation:
    """Everything PARTITION derives from a guess ``A`` before moving jobs."""

    guess: float
    feasible: bool
    total_large: int  # L_T
    large_processors: int  # m_L
    extra_large: int  # L_E
    a_values: np.ndarray
    b_values: np.ndarray
    c_values: np.ndarray
    planned_moves: int  # \hat{k} = L_E + sum(selected a) + sum(unselected b)
    selected: np.ndarray  # processor indices chosen in Step 3


def _finalize_evaluation(
    guess: float,
    total_large: int,
    a: np.ndarray,
    b: np.ndarray,
    has_large: np.ndarray,
) -> GuessEvaluation:
    """Turn per-processor ``(a, b, has_large)`` values into the Step-3
    selection and planned move count.

    Shared by the scalar per-processor path (:func:`evaluate_guess`) and
    the engine's vectorized path (:mod:`repro.core.engine`), so both
    apply the identical tie-breaking rule and produce byte-identical
    evaluations.
    """
    m = int(a.shape[0])
    c = a - b
    large_processors = int(has_large.sum())
    extra_large = total_large - large_processors

    if total_large > m:
        return GuessEvaluation(
            guess=guess,
            feasible=False,
            total_large=total_large,
            large_processors=large_processors,
            extra_large=extra_large,
            a_values=a,
            b_values=b,
            c_values=c,
            planned_moves=np.iinfo(np.int64).max,
            selected=np.empty(0, dtype=np.int64),
        )

    # Step 3 selection: L_T smallest c_i, ties prefer large processors,
    # then lowest index (determinism).
    order = np.lexsort((np.arange(m), ~has_large, c))
    selected = np.sort(order[:total_large])
    sel_mask = np.zeros(m, dtype=bool)
    sel_mask[selected] = True
    planned = extra_large + int(a[sel_mask].sum()) + int(b[~sel_mask].sum())
    return GuessEvaluation(
        guess=guess,
        feasible=True,
        total_large=total_large,
        large_processors=large_processors,
        extra_large=extra_large,
        a_values=a,
        b_values=b,
        c_values=c,
        planned_moves=planned,
        selected=selected,
    )


def evaluate_guess(
    tables: ThresholdTables, guess: float, *, total_large: int | None = None
) -> GuessEvaluation:
    """Compute ``(L_T, a, b, c)``, the Step-3 selection and the planned
    move count for one guess, without constructing the assignment.

    A guess is infeasible when ``L_T > m`` (more large jobs than
    processors; no half-optimal configuration exists at this guess).

    ``total_large`` lets a caller that already knows ``L_T`` at this
    guess (e.g. a scan maintaining it incrementally) skip the
    ``tables.sizes_asc`` lookup — necessary whenever the global
    ascending size array is stale, as it is between the engine's
    full-scan decides on the O(churn) path.
    """
    m = len(tables.processors)
    if total_large is None:
        total_large = tables.total_large(guess)
    a = np.empty(m, dtype=np.int64)
    b = np.empty(m, dtype=np.int64)
    has_large = np.empty(m, dtype=bool)
    for i, proc in enumerate(tables.processors):
        a[i] = proc.a_value(guess)
        b[i] = proc.b_value(guess)
        has_large[i] = proc.has_large(guess)
    return _finalize_evaluation(guess, total_large, a, b, has_large)


def _construct(
    instance: Instance, tables: ThresholdTables, ev: GuessEvaluation
) -> Assignment:
    """Execute Steps 1 and 3–6 for an evaluated (feasible) guess."""
    if not ev.feasible:
        raise ValueError(f"guess {ev.guess} is infeasible (L_T > m)")
    guess = ev.guess
    m = instance.num_processors
    mapping = np.array(instance.initial, dtype=np.int64)
    # Per-processor totals already exist as the bucket prefix sums'
    # last entries — O(m), versus the O(n) scatter-add behind
    # ``instance.initial_loads``.
    loads = np.fromiter(
        (float(proc.prefix[-1]) for proc in tables.processors),
        dtype=np.float64, count=m,
    )
    sel_mask = np.zeros(m, dtype=bool)
    sel_mask[ev.selected] = True

    floating_large: list[int] = []  # removed large jobs awaiting a home
    removed_small: list[int] = []  # removed small jobs for Step 6
    selected_has_large = np.zeros(m, dtype=bool)

    for i, proc in enumerate(tables.processors):
        s_cnt = proc.small_count(guess)
        smalls = proc.jobs_asc[:s_cnt]
        larges = proc.jobs_asc[s_cnt:]
        # Step 1: keep only the smallest large job.
        for j in larges[1:]:
            floating_large.append(int(j))
            loads[i] -= instance.sizes[j]
        kept_large = int(larges[0]) if larges.size else None

        if sel_mask[i]:
            # Step 3: shed the a_i largest smalls; the large job stays.
            a_i = int(ev.a_values[i])
            for j in smalls[s_cnt - a_i :]:
                removed_small.append(int(j))
                loads[i] -= instance.sizes[j]
            selected_has_large[i] = kept_large is not None
        else:
            # Step 4: shed the b_i largest jobs of the current
            # configuration (smalls + kept large).  Largest-first
            # removal takes the kept large job first when b_i >= 1.
            b_i = int(ev.b_values[i])
            if kept_large is not None:
                # A large processor with b_i == 0 is always selected
                # (it has a_i == 0 hence c_i == 0, and the tie-break
                # prefers large processors), so here b_i >= 1.
                assert b_i >= 1, "unselected large processor with b_i == 0"
                floating_large.append(kept_large)
                loads[i] -= instance.sizes[kept_large]
                b_i -= 1
            for j in smalls[s_cnt - b_i :] if b_i else smalls[:0]:
                removed_small.append(int(j))
                loads[i] -= instance.sizes[j]

    # Steps 4b/5: route floating large jobs to distinct large-free
    # selected processors.  The counting identity L_E + (m_L - s_L) ==
    # L_T - s_L guarantees an exact fit.
    large_free_selected = [int(i) for i in ev.selected if not selected_has_large[i]]
    assert len(floating_large) == len(large_free_selected), (
        f"{len(floating_large)} floating large jobs vs "
        f"{len(large_free_selected)} large-free selected processors"
    )
    for j, i in zip(floating_large, large_free_selected):
        mapping[j] = i
        loads[i] += instance.sizes[j]
    touched = list(floating_large)

    # Step 6: greedy min-load placement of removed small jobs.  The
    # paper allows any order; descending size (Graham/LPT style) is the
    # strongest in practice and satisfies the same bound.  Heap entries
    # carry a per-processor version counter so staleness detection does
    # not depend on float round-trip identity.
    removed_small.sort(key=lambda j: (-instance.sizes[j], j))
    version = [0] * m
    heap = [(float(loads[i]), 0, i) for i in range(m)]
    heapq.heapify(heap)
    heap_pops = 0
    for j in removed_small:
        _, ver, i = heapq.heappop(heap)
        heap_pops += 1
        while ver != version[i]:
            _, ver, i = heapq.heappop(heap)  # stale entry
            heap_pops += 1
        mapping[j] = i
        loads[i] += instance.sizes[j]
        version[i] += 1
        heapq.heappush(heap, (float(loads[i]), version[i], i))
    telemetry.count("heap_pops", heap_pops)

    # Only jobs touched above can differ from the initial assignment (a
    # removed job may be placed back on its origin at zero real cost),
    # so the actual-relocation set — and the exact loads maintained all
    # along — are known here in O(moves): hand both to ``Assignment``
    # to skip its O(n) copy/scatter-add accounting.
    touched.extend(removed_small)
    if touched:
        cand = np.unique(np.asarray(touched, dtype=np.int64))
        moved = cand[mapping[cand] != np.asarray(instance.initial)[cand]]
    else:
        moved = np.empty(0, dtype=np.int64)
    return Assignment(
        instance=instance, mapping=mapping, _loads=loads, _moved=moved
    )


def partition_rebalance(
    instance: Instance,
    opt: float,
    k: int | None = None,
    tables: ThresholdTables | None = None,
) -> RebalanceResult:
    """PARTITION with a known (or guessed) value ``opt`` for the optimum.

    Theorem 2: if ``opt`` is the true optimal makespan for budget ``k``,
    the result has makespan at most ``1.5 * opt`` and uses at most as
    many moves as the optimal solution (hence at most ``k``).

    Passing a guess ``opt`` *below* the true optimum is allowed as long
    as it is feasible (``L_T <= m``); the makespan bound then degrades
    gracefully to ``1.5 *`` the true optimum (Section 3.1's analysis),
    while a guess above the optimum weakens the bound to
    ``1.5 * opt``.

    Raises ``ValueError`` on an infeasible guess; raises
    ``ValueError`` when ``k`` is given and the plan needs more moves.
    """
    tmark = telemetry.mark()
    if tables is None:
        with telemetry.span("partition.build_tables"):
            tables = build_tables(instance)
    with telemetry.span("partition.evaluate"):
        ev = evaluate_guess(tables, opt)
    if not ev.feasible:
        raise ValueError(
            f"guess {opt} admits {ev.total_large} large jobs on "
            f"{instance.num_processors} processors; no half-optimal "
            "configuration exists"
        )
    if k is not None and ev.planned_moves > k:
        raise ValueError(
            f"PARTITION at guess {opt} plans {ev.planned_moves} moves, "
            f"exceeding the budget k={k}; raise the guess"
        )
    with telemetry.span("partition.construct"):
        assignment = _construct(instance, tables, ev)
    assignment.validate(max_moves=k)
    return RebalanceResult(
        assignment=assignment,
        algorithm="partition",
        guessed_opt=opt,
        planned_moves=ev.planned_moves,
        meta=telemetry.attach(
            {
                "L_T": ev.total_large,
                "m_L": ev.large_processors,
                "L_E": ev.extra_large,
            },
            tmark,
        ),
    )


def m_partition_rebalance(
    instance: Instance,
    k: int,
    tables: ThresholdTables | None = None,
) -> RebalanceResult:
    """M-PARTITION (Theorem 3): the 1.5-approximation without the oracle.

    Scans the Lemma-5 threshold values in increasing order, starting
    from the largest threshold not exceeding the average load (the
    paper's starting guess — the average load never exceeds ``OPT``),
    and returns the construction at the first feasible guess whose
    planned move count is at most ``k``.

    Lemma 6 guarantees the scan stops no later than the largest
    threshold below the true ``OPT`` (which plans no more moves than the
    optimal solution), so the final guess is at most ``OPT`` and the
    resulting makespan is at most ``1.5 * OPT``.

    ``tables`` may supply prebuilt threshold tables for ``instance``
    (e.g. tables patched across epochs by
    :class:`repro.core.engine.RebalanceEngine`); they must describe the
    same sizes and initial assignment.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    tmark = telemetry.mark()
    if tables is None:
        with telemetry.span("m_partition.build_tables"):
            tables = build_tables(instance)
    if instance.num_jobs == 0:
        return RebalanceResult(
            assignment=Assignment.initial(instance),
            algorithm="m-partition",
            guessed_opt=0.0,
            planned_moves=0,
        )
    candidates = candidate_guesses(tables)
    start = scan_start(candidates, instance.average_load)
    tried = 0
    stop_ev: GuessEvaluation | None = None
    with telemetry.span("m_partition.scan"):
        for idx in range(start, candidates.shape[0]):
            guess = float(candidates[idx])
            ev = evaluate_guess(tables, guess)
            tried += 1
            if ev.feasible and ev.planned_moves <= k:
                stop_ev = ev
                break
    telemetry.count("thresholds_tried", tried)
    if stop_ev is not None:
        ev = stop_ev
        with telemetry.span("m_partition.construct"):
            assignment = _construct(instance, tables, ev)
        assignment.validate(max_moves=k)
        return RebalanceResult(
            assignment=assignment,
            algorithm="m-partition",
            guessed_opt=ev.guess,
            planned_moves=ev.planned_moves,
            meta=telemetry.attach(
                {
                    "L_T": ev.total_large,
                    "m_L": ev.large_processors,
                    "L_E": ev.extra_large,
                    "thresholds_tried": tried,
                },
                tmark,
            ),
        )
    # Unreachable for well-formed instances: the largest threshold is
    # the full load of the heaviest processor, where no moves are
    # planned.  Kept as a safeguard.
    raise RuntimeError("no feasible threshold found")  # pragma: no cover
