"""Exact rebalancing via mixed-integer programming (optional backend).

An independent formulation used to cross-check
:func:`repro.core.exact.exact_rebalance` in the test suite, built on
``scipy.optimize.milp`` (HiGHS).  Feature-detected: callers should
consult :data:`HAS_MILP` and fall back to the branch-and-bound solver
when scipy's MILP interface is unavailable.

Formulation::

    minimize    T
    subject to  sum_p x[j,p]            == 1        for every job j
                sum_j s_j x[j,p] - T    <= 0        for every processor p
                sum_{j,p != home_j} x[j,p]          <= k       (if given)
                sum_{j,p != home_j} c_j x[j,p]      <= B       (if given)
                x binary, T >= max_j s_j
"""

from __future__ import annotations

import numpy as np

from .assignment import Assignment
from .instance import Instance
from .result import RebalanceResult

try:  # pragma: no cover - import guard
    from scipy.optimize import Bounds, LinearConstraint, milp

    HAS_MILP = True
except ImportError:  # pragma: no cover
    HAS_MILP = False

__all__ = ["HAS_MILP", "milp_rebalance"]


def milp_rebalance(
    instance: Instance,
    k: int | None = None,
    budget: float | None = None,
    time_limit: float | None = 60.0,
) -> RebalanceResult:
    """Solve the instance to optimality with HiGHS.

    Variables are laid out as ``x[j * m + p]`` followed by the makespan
    variable ``T``.  Raises ``RuntimeError`` if scipy's MILP interface
    is missing or the solver fails.
    """
    if not HAS_MILP:  # pragma: no cover
        raise RuntimeError("scipy.optimize.milp is unavailable")
    n = instance.num_jobs
    m = instance.num_processors
    nv = n * m + 1  # + makespan variable T
    t_col = n * m

    c = np.zeros(nv)
    c[t_col] = 1.0  # minimize T

    constraints = []

    # Each job on exactly one processor.
    a_assign = np.zeros((n, nv))
    for j in range(n):
        a_assign[j, j * m : (j + 1) * m] = 1.0
    constraints.append(LinearConstraint(a_assign, 1.0, 1.0))

    # Loads below T.
    a_load = np.zeros((m, nv))
    for p in range(m):
        for j in range(n):
            a_load[p, j * m + p] = instance.sizes[j]
        a_load[p, t_col] = -1.0
    constraints.append(LinearConstraint(a_load, -np.inf, 0.0))

    # Move-count budget.
    if k is not None:
        row = np.zeros(nv)
        for j in range(n):
            h = int(instance.initial[j])
            for p in range(m):
                if p != h:
                    row[j * m + p] = 1.0
        constraints.append(LinearConstraint(row[None, :], -np.inf, float(k)))

    # Relocation-cost budget.
    if budget is not None:
        row = np.zeros(nv)
        for j in range(n):
            h = int(instance.initial[j])
            for p in range(m):
                if p != h:
                    row[j * m + p] = instance.costs[j]
        constraints.append(LinearConstraint(row[None, :], -np.inf, float(budget)))

    integrality = np.ones(nv)
    integrality[t_col] = 0.0
    lb = np.zeros(nv)
    ub = np.ones(nv)
    lb[t_col] = instance.max_size
    ub[t_col] = np.inf

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    if res.x is None:  # pragma: no cover - solver failure
        raise RuntimeError(f"MILP solver failed: {res.message}")

    x = res.x[: n * m].reshape(n, m)
    mapping = np.argmax(x, axis=1).astype(np.int64)
    assignment = Assignment(instance=instance, mapping=mapping)
    assignment.validate(max_moves=k, budget=budget)
    return RebalanceResult(
        assignment=assignment,
        algorithm="milp",
        planned_moves=assignment.num_moves,
        planned_cost=assignment.relocation_cost,
        meta={"status": res.status, "mip_gap": getattr(res, "mip_gap", None),
              "optimal": res.status == 0},
    )
