"""Knapsack subroutines for the arbitrary-cost variant (Section 3.2).

The weighted version of PARTITION needs, per processor, the *cheapest*
set of jobs to remove so that the remaining jobs fit under a capacity.
Equivalently (and how the paper phrases it): find the set of jobs to
**keep** with total size at most the capacity and total relocation cost
as **high** as possible; the removal cost is the complementary cost.

This module provides the two solvers the paper calls for:

* :func:`keep_max_cost_exact` — exact dynamic program over discretized
  sizes ("If the maximum relocation cost or the job sizes are
  polynomially bounded, then we can solve the knapsack problems
  exactly");
* :func:`keep_max_cost_fptas` — the classical cost-scaling FPTAS
  ("Otherwise, one can use a PTAS in the place of the knapsack
  routine"), which keeps a set of total size at most the capacity whose
  kept cost is at least ``(1 - eps)`` of the best.

Both return the kept index set, so callers can derive the removal plan.

Each solver has two interchangeable backends: ``backend="kernel"``
(default) runs the vectorized sweep DPs in :mod:`repro.core.kernels`;
``backend="reference"`` runs the original cell-at-a-time DPs kept here.
The backends trace identical kept sets on every input (the differential
tests assert this), so the switch affects speed only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import telemetry
from . import kernels

__all__ = [
    "KnapsackSolution",
    "keep_max_cost_exact",
    "keep_max_cost_fptas",
    "keep_max_cost",
    "min_removal_cost",
]


@dataclass(frozen=True)
class KnapsackSolution:
    """A kept-set solution of the keep-max-cost knapsack."""

    keep: tuple[int, ...]  # indices into the input arrays
    kept_cost: float
    kept_size: float

    def removed(self, n: int) -> tuple[int, ...]:
        """Complement of :attr:`keep` within ``range(n)``, ascending."""
        mask = np.ones(n, dtype=bool)
        if self.keep:
            mask[np.asarray(self.keep, dtype=np.intp)] = False
        return tuple(int(i) for i in np.flatnonzero(mask))


def _as_arrays(
    sizes: Sequence[float], costs: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    s = np.asarray(sizes, dtype=np.float64)
    c = np.asarray(costs, dtype=np.float64)
    if s.shape != c.shape or s.ndim != 1:
        raise ValueError("sizes and costs must be 1-d arrays of equal length")
    if s.size and s.min() <= 0:
        raise ValueError("sizes must be positive")
    if c.size and c.min() < 0:
        raise ValueError("costs must be non-negative")
    return s, c


def _size_grid(
    s: np.ndarray, capacity: float, resolution: int
) -> tuple[np.ndarray, int]:
    """Integer size grid shared by both exact-DP backends.

    If sizes are small integers, use them directly with the capacity
    floored — exact, because integer sizes fit under a real capacity iff
    they fit under its floor.  Otherwise scale up-rounded onto a grid of
    ``resolution`` units (conservative: never overpacks).  In the scaled
    regime an item's grid size overstates its true size by less than one
    unit ``capacity / resolution``, so the kept set forgoes at most the
    items of a true optimum restricted to total size
    ``capacity * (1 - n / resolution)`` — the discretization error bound
    that the ``resolution`` knob trades against the ``O(n * resolution)``
    run time.
    """
    if np.all(s == np.round(s)) and np.floor(capacity + 1e-9) <= resolution:
        ws = s.astype(np.int64)
        cap = int(np.floor(capacity + 1e-9))
    else:
        unit = capacity / resolution
        ws = np.ceil(s / unit - 1e-12).astype(np.int64)
        cap = resolution
    return np.maximum(ws, 1), cap


def _exact_reference_trace(
    c: np.ndarray, ws: np.ndarray, cap: int
) -> list[int]:
    """Original cell-at-a-time exact DP (``backend="reference"``)."""
    n = c.size
    telemetry.count("knapsack_cells", n * (cap + 1))

    # DP over capacities: best[v] = max kept cost using first i items at
    # total grid-size exactly <= v; choice[i][v] = keep item i at v?
    best = np.full(cap + 1, 0.0)
    take = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        w = int(ws[i])
        if w > cap:
            continue
        cand = np.full(cap + 1, -np.inf)
        cand[w:] = best[: cap + 1 - w] + c[i]
        better = cand > best
        take[i] = better
        best = np.where(better, cand, best)

    # Trace back the kept set.
    keep: list[int] = []
    v = int(np.argmax(best))
    for i in range(n - 1, -1, -1):
        if take[i, v]:
            keep.append(i)
            v -= int(ws[i])
    keep.reverse()
    return keep


def keep_max_cost_exact(
    sizes: Sequence[float],
    costs: Sequence[float],
    capacity: float,
    resolution: int = 4096,
    backend: str = "kernel",
) -> KnapsackSolution:
    """Exact (up to size discretization) keep-max-cost knapsack.

    Sizes are scaled onto an integer grid of at most ``resolution``
    units; sizes are rounded **up** so the kept set always truly fits
    under ``capacity``.  When the input sizes are already integers of
    modest magnitude the grid is exact and so is the solution; otherwise
    the rounding forgoes at most the cost of items within one grid unit
    of the boundary (the same conservative direction the paper uses for
    its discretizations) — see :func:`_size_grid` for the bound.

    ``O(n * resolution)`` time and memory.
    """
    s, c = _as_arrays(sizes, costs)
    n = s.size
    if n == 0 or capacity <= 0:
        if n and capacity < 0:
            raise ValueError("capacity must be non-negative")
        return KnapsackSolution(keep=(), kept_cost=0.0, kept_size=0.0)

    ws, cap = _size_grid(s, capacity, resolution)
    if backend == "kernel":
        keep = list(kernels.exact_keep_indices(s, c, ws, cap))
    elif backend == "reference":
        keep = _exact_reference_trace(c, ws, cap)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    kept_cost = float(c[keep].sum()) if keep else 0.0
    kept_size = float(s[keep].sum()) if keep else 0.0
    return KnapsackSolution(keep=tuple(keep), kept_cost=kept_cost, kept_size=kept_size)


def _fptas_reference_trace(
    s: np.ndarray, scaled: np.ndarray, max_total: int, capacity: float
) -> list[int]:
    """Original cell-at-a-time FPTAS DP (``backend="reference"``)."""
    n = s.size
    telemetry.count("knapsack_cells", n * (max_total + 1))
    # min_size[v] = smallest total size achieving scaled cost exactly v.
    min_size = np.full(max_total + 1, np.inf)
    min_size[0] = 0.0
    take = np.zeros((n, max_total + 1), dtype=bool)
    for i in range(n):
        v = int(scaled[i])
        if v == 0:
            # Zero scaled cost: item only matters through its size; skip
            # in the DP and reconsider greedily below.
            continue
        cand = np.full(max_total + 1, np.inf)
        cand[v:] = min_size[: max_total + 1 - v] + s[i]
        better = cand < min_size
        take[i] = better
        min_size = np.where(better, cand, min_size)

    feasible = np.flatnonzero(min_size <= capacity)
    v = int(feasible[-1]) if feasible.size else 0
    keep: list[int] = []
    for i in range(n - 1, -1, -1):
        if take[i, v]:
            keep.append(i)
            v -= int(scaled[i])
    keep.reverse()
    return keep


def keep_max_cost_fptas(
    sizes: Sequence[float],
    costs: Sequence[float],
    capacity: float,
    eps: float = 0.1,
    backend: str = "kernel",
) -> KnapsackSolution:
    """FPTAS for keep-max-cost: kept cost >= (1 - eps) * optimum.

    Classical cost scaling: round costs down to multiples of
    ``eps * c_max / n`` and run the exact DP over *cost* (O(n^2/eps)
    states), tracking the minimum size achieving each scaled cost.
    The kept set always fits under ``capacity`` exactly (sizes are not
    rounded), so feasibility is unconditional.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    s, c = _as_arrays(sizes, costs)
    n = s.size
    if n == 0 or capacity <= 0:
        return KnapsackSolution(keep=(), kept_cost=0.0, kept_size=0.0)
    feasible = np.flatnonzero(s <= capacity)
    if feasible.size < n:
        # Items larger than the capacity can never be kept, but their
        # costs would still enter ``c_max`` and inflate the scale step
        # ``mu`` — in the worst case until every keepable item rounds
        # to scaled cost 0, voiding the (1 - eps) guarantee (P_max in
        # the classical analysis ranges over feasible items only).
        sub = keep_max_cost_fptas(
            s[feasible], c[feasible], capacity, eps=eps, backend=backend
        )
        keep_t = tuple(sorted(int(feasible[i]) for i in sub.keep))
        return KnapsackSolution(
            keep=keep_t, kept_cost=sub.kept_cost, kept_size=sub.kept_size
        )
    c_max = float(c.max())
    if c_max == 0.0:
        # All-zero costs: keep greedily by size (any feasible set is optimal).
        order = np.argsort(s, kind="stable")
        keep: list[int] = []
        total = 0.0
        for i in order:
            if total + s[i] <= capacity:
                keep.append(int(i))
                total += float(s[i])
        return KnapsackSolution(keep=tuple(sorted(keep)), kept_cost=0.0, kept_size=total)

    mu = eps * c_max / n
    scaled = np.floor(c / mu).astype(np.int64)
    if backend == "kernel":
        keep, total = kernels.fptas_keep_trace(s, c, scaled, capacity)
    elif backend == "reference":
        keep = _fptas_reference_trace(s, scaled, int(scaled.sum()), capacity)
        total = float(s[keep].sum()) if keep else 0.0
    else:
        raise ValueError(f"unknown backend {backend!r}")
    kept = set(keep)
    # Greedily add zero-scaled-cost items that still fit (they can only help).
    zero_items = [int(i) for i in np.flatnonzero(scaled == 0)]
    zero_items.sort(key=lambda i: (s[i], -c[i]))
    for i in zero_items:
        if i not in kept and total + s[i] <= capacity:
            kept.add(i)
            total += float(s[i])
    keep_t = tuple(sorted(kept))
    return KnapsackSolution(
        keep=keep_t,
        kept_cost=float(c[list(keep_t)].sum()) if keep_t else 0.0,
        kept_size=float(s[list(keep_t)].sum()) if keep_t else 0.0,
    )


def keep_max_cost(
    sizes: Sequence[float],
    costs: Sequence[float],
    capacity: float,
    method: str = "auto",
    eps: float = 0.05,
    resolution: int = 4096,
    backend: str = "kernel",
) -> KnapsackSolution:
    """Dispatch between the exact DP and the FPTAS.

    ``"auto"`` uses the exact DP for small inputs and the FPTAS
    otherwise, mirroring the paper's "exact when polynomially bounded,
    PTAS otherwise" guidance.
    """
    if method == "exact":
        return keep_max_cost_exact(
            sizes, costs, capacity, resolution=resolution, backend=backend
        )
    if method == "fptas":
        return keep_max_cost_fptas(sizes, costs, capacity, eps=eps, backend=backend)
    if method == "auto":
        n = len(sizes)
        if n <= 64:
            return keep_max_cost_exact(
                sizes, costs, capacity, resolution=resolution, backend=backend
            )
        return keep_max_cost_fptas(sizes, costs, capacity, eps=eps, backend=backend)
    raise ValueError(f"unknown method {method!r}")


def min_removal_cost(
    sizes: Sequence[float],
    costs: Sequence[float],
    capacity: float,
    **kwargs,
) -> tuple[float, tuple[int, ...]]:
    """Minimum cost of a removal set whose complement fits ``capacity``.

    Returns ``(removal_cost, removed_indices)``; the paper's ``a_i`` and
    ``b_i`` for the weighted problem are instances of this.
    """
    sol = keep_max_cost(sizes, costs, capacity, **kwargs)
    total = float(np.asarray(costs, dtype=np.float64).sum())
    removed = sol.removed(len(sizes))
    return total - sol.kept_cost, removed
