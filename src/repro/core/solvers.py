"""Unified solver dispatch.

``rebalance(instance, ...)`` lets harness code, examples and the web
simulator select any algorithm in the library by name, with the budget
conventions normalized:

* move-count budget ``k`` (unit-cost problem), or
* relocation-cost budget ``budget`` (weighted problem).

Algorithms that only understand one budget type get the obvious
translation (a unit-cost instance with budget ``B`` is a move budget of
``floor(B)``).
"""

from __future__ import annotations

import math
from typing import Callable

from .cost_partition import cost_partition_rebalance
from .exact import exact_rebalance
from .greedy import greedy_rebalance
from .instance import Instance
from .partition import m_partition_rebalance
from .ptas import ptas_rebalance
from .result import RebalanceResult

__all__ = ["rebalance", "available_algorithms", "register_algorithm"]

_REGISTRY: dict[str, Callable[..., RebalanceResult]] = {}


def register_algorithm(name: str, fn: Callable[..., RebalanceResult]) -> None:
    """Register a solver under ``name`` for :func:`rebalance` dispatch.

    The callable must accept ``(instance, k=..., budget=..., **kwargs)``
    and return a :class:`~repro.core.result.RebalanceResult`; baseline
    packages use this hook so ``rebalance`` covers them too.
    """
    if name in _REGISTRY:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[name] = fn


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`rebalance`, sorted."""
    return tuple(sorted(set(_REGISTRY) | {"greedy", "m-partition", "cost-partition",
                                          "ptas", "exact"}))


def _normalize_budgets(
    instance: Instance, k: int | None, budget: float | None
) -> tuple[int | None, float | None]:
    if k is None and budget is None:
        raise ValueError("one of k (move budget) or budget (cost budget) is required")
    if k is not None and k < 0:
        raise ValueError("k must be non-negative")
    if budget is not None and budget < 0:
        raise ValueError("budget must be non-negative")
    return k, budget


def rebalance(
    instance: Instance,
    algorithm: str = "m-partition",
    k: int | None = None,
    budget: float | None = None,
    **kwargs,
) -> RebalanceResult:
    """Run ``algorithm`` on ``instance`` under the given budget.

    Built-in algorithm names: ``"greedy"``, ``"m-partition"``,
    ``"cost-partition"``, ``"ptas"``, ``"exact"``; baseline packages
    register more (see :func:`register_algorithm` and
    :mod:`repro.baselines`).
    """
    k, budget = _normalize_budgets(instance, k, budget)

    if algorithm == "greedy":
        if k is None:
            if not instance.is_unit_cost:
                raise ValueError("greedy needs a move budget k (unit-cost problem)")
            k = int(math.floor(budget))  # type: ignore[arg-type]
        return greedy_rebalance(instance, k, **kwargs)

    if algorithm == "m-partition":
        if k is None:
            if not instance.is_unit_cost:
                raise ValueError(
                    "m-partition needs a move budget k; use cost-partition "
                    "or ptas for weighted costs"
                )
            k = int(math.floor(budget))  # type: ignore[arg-type]
        return m_partition_rebalance(instance, k, **kwargs)

    if algorithm == "cost-partition":
        if budget is None:
            budget = float(k)  # unit-cost: cost budget == move budget
        return cost_partition_rebalance(instance, budget, **kwargs)

    if algorithm == "ptas":
        if budget is None:
            budget = float(k)
        return ptas_rebalance(instance, budget, **kwargs)

    if algorithm == "exact":
        return exact_rebalance(instance, k=k, budget=budget, **kwargs)

    if algorithm in _REGISTRY:
        return _REGISTRY[algorithm](instance, k=k, budget=budget, **kwargs)

    raise ValueError(
        f"unknown algorithm {algorithm!r}; available: {available_algorithms()}"
    )
