"""Warm-start rebalancing engine for epoch streams (Theorem 3, amortized).

The websim epoch loop used to rebuild every solver data structure from
scratch each epoch: :func:`~repro.core.thresholds.build_tables` re-sorts
all jobs and :func:`~repro.core.partition.evaluate_guess` walks the
processors in a Python loop for every threshold tried.  Consecutive
epochs of one evolving cluster differ only in the sites whose traffic
shifted, so almost all of that work is repeated verbatim.

:class:`RebalanceEngine` serves a *stream* of snapshots of one evolving
instance and amortizes the solver state across them:

* **Table cache** — the per-processor ascending orders and prefix sums
  (:class:`~repro.core.thresholds.ThresholdTables`) are kept between
  calls and patched via :func:`~repro.core.thresholds.patch_tables`:
  only the processors whose job composition changed are re-sorted,
  ``O(changed · n_i log n_i)`` instead of the full ``O(n log n)``
  Python bucketing pass.
* **Vectorized guess evaluation** — ``(a_i, b_i, has_large_i)`` for
  *all* processors at once from flattened prefix arrays (a handful of
  numpy passes over ``n`` elements) instead of three ``searchsorted``
  calls per processor per threshold.  The final Step-3 selection goes
  through the same :func:`~repro.core.partition._finalize_evaluation`
  as the scalar path, so evaluations are identical by construction.
* **Decision cache** — a fingerprint (blake2b over sizes, costs,
  initial assignment and processor count) keyed LRU of full
  :class:`~repro.core.result.RebalanceResult` objects, so a
  byte-identical snapshot (e.g. a flash crowd that fully decayed back
  to baseline) returns the cached decision without touching the solver.

Differential property tests enforce that every decision (assignment,
stopping guess, planned move count) is identical to a from-scratch
:func:`~repro.core.partition.m_partition_rebalance` call on the same
snapshot; the caches are pure transparent accelerations.

Telemetry counters (visible through :mod:`repro.telemetry` and mirrored
on :attr:`RebalanceEngine.stats`): ``cache_hits``, ``tables_reused``,
``buckets_patched``, ``full_builds``, plus the shared
``thresholds_tried``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from .assignment import Assignment
from .instance import Instance
from .partition import GuessEvaluation, _construct, _finalize_evaluation
from .result import RebalanceResult
from .thresholds import (
    ThresholdTables,
    build_tables,
    candidate_guesses,
    patch_tables,
    scan_start,
)

__all__ = ["EngineStats", "RebalanceEngine", "snapshot_fingerprint"]


@dataclass
class EngineStats:
    """Running counters of the engine's cache behavior.

    Always maintained (they are a handful of integer adds per decision),
    independent of whether :mod:`repro.telemetry` collection is active.
    """

    decisions: int = 0
    cache_hits: int = 0
    tables_reused: int = 0
    buckets_patched: int = 0
    full_builds: int = 0
    thresholds_tried: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "cache_hits": self.cache_hits,
            "tables_reused": self.tables_reused,
            "buckets_patched": self.buckets_patched,
            "full_builds": self.full_builds,
            "thresholds_tried": self.thresholds_tried,
        }


class _FlatTables:
    """Flattened per-processor views for vectorized guess evaluation.

    Concatenates every processor's prefix sums (``prefix[1:]``, length
    ``n_i`` each) into one array tagged with its processor id.  Within a
    segment the prefix values are ascending, so "how many prefix entries
    of processor ``i`` are at most ``x``" is a boolean mask plus one
    ``bincount`` — for all processors at once.
    """

    __slots__ = ("m", "n", "sizes", "job_proc", "counts", "prefix_flat",
                 "prefix_proc", "sizes_asc")

    def __init__(self, tables: ThresholdTables) -> None:
        instance = tables.instance
        self.m = instance.num_processors
        self.n = instance.num_jobs
        self.sizes = instance.sizes
        self.job_proc = instance.initial
        self.counts = np.array(
            [proc.num_jobs for proc in tables.processors], dtype=np.int64
        )
        if self.n:
            self.prefix_flat = np.concatenate(
                [proc.prefix[1:] for proc in tables.processors]
            )
        else:
            self.prefix_flat = np.empty(0)
        self.prefix_proc = np.repeat(np.arange(self.m, dtype=np.int64), self.counts)
        self.sizes_asc = tables.sizes_asc

    def evaluate(self, guess: float) -> GuessEvaluation:
        """Vectorized equivalent of
        :func:`repro.core.partition.evaluate_guess`.

        Derivation (per processor ``i``, all comparisons on the same
        floats the scalar path uses):

        * ``s_cnt = #{jobs on i with size <= guess/2}``;
        * ``a_i = s_cnt - keep`` where ``keep = #{1 <= l <= s_cnt :
          P_l <= guess/2}`` (``P_0 = 0`` always qualifies, cancelling
          the scalar path's ``searchsorted(...) - 1``);
        * ``b_i = q - min(#{l >= 1 : P_l <= guess}, q)`` with
          ``q = n_i`` if the processor is all-small else ``s_cnt + 1``.
        """
        half = guess / 2.0
        m = self.m
        total_large = self.n - int(
            np.searchsorted(self.sizes_asc, half, side="right")
        )
        s_cnt = np.bincount(self.job_proc[self.sizes <= half], minlength=m)
        cnt_prefix_half = np.bincount(
            self.prefix_proc[self.prefix_flat <= half], minlength=m
        )
        cnt_prefix_full = np.bincount(
            self.prefix_proc[self.prefix_flat <= guess], minlength=m
        )
        a = s_cnt - np.minimum(cnt_prefix_half, s_cnt)
        q = np.where(s_cnt == self.counts, self.counts, s_cnt + 1)
        b = q - np.minimum(cnt_prefix_full, q)
        has_large = s_cnt < self.counts
        return _finalize_evaluation(guess, total_large, a, b, has_large)


def snapshot_fingerprint(instance: Instance) -> bytes:
    """Digest of everything a rebalancing decision can depend on.

    Shared by the engine's decision cache and the service layer's
    within-batch dedupe (:mod:`repro.service.batching`): two instances
    with equal fingerprints are byte-identical snapshots.

    The digest is memoized on the instance — its arrays are read-only,
    so the bytes can never change — which matters at service rates:
    clients and the server both fingerprint every epoch snapshot they
    touch, and hashing three ``n``-element arrays is an O(n) cost that
    would otherwise recur per request instead of per snapshot.
    """
    memo = instance.__dict__.get("_snapshot_digest")
    if memo is not None:
        return memo
    h = hashlib.blake2b(digest_size=16)
    h.update(instance.num_processors.to_bytes(8, "little"))
    h.update(instance.sizes.tobytes())
    h.update(instance.costs.tobytes())
    h.update(instance.initial.tobytes())
    digest = h.digest()
    object.__setattr__(instance, "_snapshot_digest", digest)
    return digest


_fingerprint = snapshot_fingerprint


class RebalanceEngine:
    """Stateful M-PARTITION server for a stream of epoch snapshots.

    One engine serves one evolving cluster with one fixed move budget
    ``k``; construct a fresh engine (or call :meth:`reset`) for a
    different stream or budget.  Decisions are guaranteed identical to
    :func:`repro.core.partition.m_partition_rebalance` on every
    snapshot — the caches only skip repeated work, never change the
    answer.
    """

    def __init__(self, k: int, cache_size: int = 64) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.k = k
        self.cache_size = cache_size
        self.stats = EngineStats()
        self._tables: ThresholdTables | None = None
        self._cache: OrderedDict[bytes, RebalanceResult] = OrderedDict()

    def reset(self) -> None:
        """Drop all cached state (tables, decisions, counters)."""
        self.stats = EngineStats()
        self._tables = None
        self._cache.clear()

    @property
    def retained_snapshot(self) -> Instance | None:
        """The snapshot the warm threshold tables still reference.

        ``patch_tables`` diffs the next snapshot against this one, so
        its arrays stay live between decisions.  Callers that hand the
        engine borrowed array views (the service's shared-memory
        snapshot plane) use this to know when the borrow ends: once a
        later snapshot replaces it here, the old one's memory may be
        recycled.
        """
        return self._tables.instance if self._tables is not None else None

    def cached(self, fingerprint: bytes) -> RebalanceResult | None:
        """Decision-cache lookup by fingerprint alone.

        On a hit this counts a full decision (``decisions`` and
        ``cache_hits``) and returns the cached result — byte-identical
        to what :meth:`rebalance` would return — without the caller ever
        materializing the snapshot.  On a miss it returns ``None`` and
        touches no counters; the caller must follow up with
        :meth:`rebalance`.
        """
        cached = self._cache.get(fingerprint)
        if cached is None:
            return None
        self._cache.move_to_end(fingerprint)
        self.stats.decisions += 1
        self.stats.cache_hits += 1
        telemetry.count("cache_hits")
        return cached

    # ------------------------------------------------------------------
    def _update_tables(self, instance: Instance) -> ThresholdTables:
        """Cached tables patched to ``instance``, or a full build."""
        if self._tables is None:
            with telemetry.span("engine.build_tables"):
                tables = build_tables(instance)
            self.stats.full_builds += 1
            telemetry.count("full_builds")
        else:
            with telemetry.span("engine.patch_tables"):
                tables, patched = patch_tables(self._tables, instance)
            if patched < 0:
                self.stats.full_builds += 1
                telemetry.count("full_builds")
            else:
                self.stats.tables_reused += 1
                self.stats.buckets_patched += patched
                telemetry.count("tables_reused")
                telemetry.count("buckets_patched", patched)
        self._tables = tables
        return tables

    def rebalance(
        self, instance: Instance, *, fingerprint: bytes | None = None
    ) -> RebalanceResult:
        """Decide one epoch: M-PARTITION on ``instance`` with budget
        ``k``, served warm from the engine's caches.

        ``fingerprint`` lets a caller that already hashed the snapshot
        (the service layer computes :func:`snapshot_fingerprint` at
        admission for batching dedupe and delta bases) skip the second
        blake2b pass; it must be ``snapshot_fingerprint(instance)``.
        """
        tmark = telemetry.mark()
        fp = fingerprint if fingerprint is not None else _fingerprint(instance)
        cached = self.cached(fp)
        if cached is not None:
            return cached
        self.stats.decisions += 1

        tables = self._update_tables(instance)
        if instance.num_jobs == 0:
            result = RebalanceResult(
                assignment=Assignment.initial(instance),
                algorithm="m-partition-engine",
                guessed_opt=0.0,
                planned_moves=0,
            )
            self._remember(fp, result)
            return result

        candidates = candidate_guesses(tables)
        flat = _FlatTables(tables)
        start = scan_start(candidates, instance.average_load)
        tried = 0
        stop_ev: GuessEvaluation | None = None
        with telemetry.span("engine.scan"):
            for idx in range(start, candidates.shape[0]):
                ev = flat.evaluate(float(candidates[idx]))
                tried += 1
                if ev.feasible and ev.planned_moves <= self.k:
                    stop_ev = ev
                    break
        self.stats.thresholds_tried += tried
        telemetry.count("thresholds_tried", tried)
        if stop_ev is None:  # pragma: no cover - same safeguard as rescan
            raise RuntimeError("no feasible threshold found")
        with telemetry.span("engine.construct"):
            assignment = _construct(instance, tables, stop_ev)
        assignment.validate(max_moves=self.k)
        result = RebalanceResult(
            assignment=assignment,
            algorithm="m-partition-engine",
            guessed_opt=stop_ev.guess,
            planned_moves=stop_ev.planned_moves,
            meta=telemetry.attach(
                {
                    "L_T": stop_ev.total_large,
                    "m_L": stop_ev.large_processors,
                    "L_E": stop_ev.extra_large,
                    "thresholds_tried": tried,
                    "engine": self.stats.as_dict(),
                },
                tmark,
            ),
        )
        self._remember(fp, result)
        return result

    def _remember(self, fp: bytes, result: RebalanceResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[fp] = result
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
