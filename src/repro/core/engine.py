"""Warm-start rebalancing engine for epoch streams (Theorem 3, amortized).

The websim epoch loop used to rebuild every solver data structure from
scratch each epoch: :func:`~repro.core.thresholds.build_tables` re-sorts
all jobs and :func:`~repro.core.partition.evaluate_guess` walks the
processors in a Python loop for every threshold tried.  Consecutive
epochs of one evolving cluster differ only in the sites whose traffic
shifted, so almost all of that work is repeated verbatim.

:class:`RebalanceEngine` serves a *stream* of snapshots of one evolving
instance and amortizes the solver state across them:

* **Table cache** — the per-processor ascending orders and prefix sums
  (:class:`~repro.core.thresholds.ThresholdTables`) are kept between
  calls and patched via :func:`~repro.core.thresholds.patch_tables`:
  only the processors whose job composition changed are re-sorted,
  ``O(changed · n_i log n_i)`` instead of the full ``O(n log n)``
  Python bucketing pass.
* **Vectorized guess evaluation** — ``(a_i, b_i, has_large_i)`` for
  *all* processors at once from flattened prefix arrays (a handful of
  numpy passes over ``n`` elements) instead of three ``searchsorted``
  calls per processor per threshold.  The final Step-3 selection goes
  through the same :func:`~repro.core.partition._finalize_evaluation`
  as the scalar path, so evaluations are identical by construction.
* **Decision cache** — a fingerprint (blake2b over sizes, costs,
  initial assignment and processor count) keyed LRU of full
  :class:`~repro.core.result.RebalanceResult` objects, so a
  byte-identical snapshot (e.g. a flash crowd that fully decayed back
  to baseline) returns the cached decision without touching the solver.

Differential property tests enforce that every decision (assignment,
stopping guess, planned move count) is identical to a from-scratch
:func:`~repro.core.partition.m_partition_rebalance` call on the same
snapshot; the caches are pure transparent accelerations.

Telemetry counters (visible through :mod:`repro.telemetry` and mirrored
on :attr:`RebalanceEngine.stats`): ``cache_hits``, ``tables_reused``,
``buckets_patched``, ``full_builds``, plus the shared
``thresholds_tried``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from . import rollhash
from .assignment import Assignment
from .instance import Instance
from .partition import GuessEvaluation, _construct, _finalize_evaluation
from .partition_incremental import scan_incremental
from .result import RebalanceResult
from .thresholds import (
    ThresholdTables,
    build_tables,
    candidate_guesses,
    patch_tables,
    patch_tables_hint,
    scan_start,
)

__all__ = ["ChurnHint", "EngineStats", "RebalanceEngine", "snapshot_fingerprint"]

# A churn hint names the jobs that changed since the engine's tables
# were last valid: (idx, old_sizes, old_costs, old_initial), with the
# *new* values read from the snapshot itself.  ``old_sizes``/``old_costs``
# ride along so fingerprints can be rolled by the same tuple; the table
# patch itself only consumes ``idx`` and ``old_initial``.
ChurnHint = tuple


def _normalize_hint(hint: tuple) -> tuple:
    """Unique-ify a churn hint by job index (first occurrence wins).

    Hints accumulated across epochs may repeat a job; the *first* old
    value recorded for it is its value as of the tables' state, which is
    what the patch and fingerprint roll both need.
    """
    idx = np.asarray(hint[0], dtype=np.int64)
    old_sizes = np.asarray(hint[1], dtype=np.float64)
    old_costs = np.asarray(hint[2], dtype=np.float64)
    old_initial = np.asarray(hint[3], dtype=np.int64)
    already_canonical = idx.shape[0] < 2 or bool(np.all(idx[:-1] < idx[1:]))
    if already_canonical:
        return (idx, old_sizes, old_costs, old_initial)
    uniq, first = np.unique(idx, return_index=True)
    return (uniq, old_sizes[first], old_costs[first], old_initial[first])


def _merge_hints(pending: tuple | None, fresh: tuple | None) -> tuple | None:
    """Net-merge two normalized hints; ``pending`` is the older one."""
    if pending is None:
        return fresh
    if fresh is None:
        return pending
    return _normalize_hint(
        (
            np.concatenate((pending[0], fresh[0])),
            np.concatenate((pending[1], fresh[1])),
            np.concatenate((pending[2], fresh[2])),
            np.concatenate((pending[3], fresh[3])),
        )
    )


@dataclass
class EngineStats:
    """Running counters of the engine's cache behavior.

    Always maintained (they are a handful of integer adds per decision),
    independent of whether :mod:`repro.telemetry` collection is active.
    """

    decisions: int = 0
    cache_hits: int = 0
    tables_reused: int = 0
    buckets_patched: int = 0
    full_builds: int = 0
    thresholds_tried: int = 0
    incremental_decides: int = 0
    churn_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "cache_hits": self.cache_hits,
            "tables_reused": self.tables_reused,
            "buckets_patched": self.buckets_patched,
            "full_builds": self.full_builds,
            "thresholds_tried": self.thresholds_tried,
            "incremental_decides": self.incremental_decides,
            "churn_fallbacks": self.churn_fallbacks,
        }


class _FlatTables:
    """Flattened per-processor views for vectorized guess evaluation.

    Concatenates every processor's prefix sums (``prefix[1:]``, length
    ``n_i`` each) into one array tagged with its processor id.  Within a
    segment the prefix values are ascending, so "how many prefix entries
    of processor ``i`` are at most ``x``" is a boolean mask plus one
    ``bincount`` — for all processors at once.
    """

    __slots__ = ("m", "n", "sizes", "job_proc", "counts", "prefix_flat",
                 "prefix_proc", "sizes_asc")

    def __init__(self, tables: ThresholdTables) -> None:
        instance = tables.instance
        self.m = instance.num_processors
        self.n = instance.num_jobs
        self.sizes = instance.sizes
        self.job_proc = instance.initial
        self.counts = np.array(
            [proc.num_jobs for proc in tables.processors], dtype=np.int64
        )
        if self.n:
            self.prefix_flat = np.concatenate(
                [proc.prefix[1:] for proc in tables.processors]
            )
        else:
            self.prefix_flat = np.empty(0)
        self.prefix_proc = np.repeat(np.arange(self.m, dtype=np.int64), self.counts)
        self.sizes_asc = tables.sizes_asc

    def evaluate(self, guess: float) -> GuessEvaluation:
        """Vectorized equivalent of
        :func:`repro.core.partition.evaluate_guess`.

        Derivation (per processor ``i``, all comparisons on the same
        floats the scalar path uses):

        * ``s_cnt = #{jobs on i with size <= guess/2}``;
        * ``a_i = s_cnt - keep`` where ``keep = #{1 <= l <= s_cnt :
          P_l <= guess/2}`` (``P_0 = 0`` always qualifies, cancelling
          the scalar path's ``searchsorted(...) - 1``);
        * ``b_i = q - min(#{l >= 1 : P_l <= guess}, q)`` with
          ``q = n_i`` if the processor is all-small else ``s_cnt + 1``.
        """
        half = guess / 2.0
        m = self.m
        total_large = self.n - int(
            np.searchsorted(self.sizes_asc, half, side="right")
        )
        s_cnt = np.bincount(self.job_proc[self.sizes <= half], minlength=m)
        cnt_prefix_half = np.bincount(
            self.prefix_proc[self.prefix_flat <= half], minlength=m
        )
        cnt_prefix_full = np.bincount(
            self.prefix_proc[self.prefix_flat <= guess], minlength=m
        )
        a = s_cnt - np.minimum(cnt_prefix_half, s_cnt)
        q = np.where(s_cnt == self.counts, self.counts, s_cnt + 1)
        b = q - np.minimum(cnt_prefix_full, q)
        has_large = s_cnt < self.counts
        return _finalize_evaluation(guess, total_large, a, b, has_large)


def snapshot_fingerprint(instance: Instance) -> bytes:
    """Digest of everything a rebalancing decision can depend on.

    Shared by the engine's decision cache and the service layer's
    within-batch dedupe (:mod:`repro.service.batching`): two instances
    with equal fingerprints are byte-identical snapshots.

    Since the O(churn) decide path landed this is the *additive rolling
    hash* of :mod:`repro.core.rollhash`, not blake2b: the full digest
    here is still one O(n) vectorized pass, but a server holding the
    roll-capable state updates it from a churn of ``c`` sites in O(c)
    and lands on the byte-identical digest.  The digest stays 16 opaque
    bytes; every consumer treats it as a cache key.

    The digest is memoized on the instance — its arrays are read-only,
    so the bytes can never change — which matters at service rates:
    clients and the server both fingerprint every epoch snapshot they
    touch, and hashing three ``n``-element arrays is an O(n) cost that
    would otherwise recur per request instead of per snapshot.
    """
    memo = instance.__dict__.get("_snapshot_digest")
    if memo is not None:
        return memo
    digest = rollhash.instance_fingerprint(instance)
    object.__setattr__(instance, "_snapshot_digest", digest)
    return digest


_fingerprint = snapshot_fingerprint


class RebalanceEngine:
    """Stateful M-PARTITION server for a stream of epoch snapshots.

    One engine serves one evolving cluster with one fixed move budget
    ``k``; construct a fresh engine (or call :meth:`reset`) for a
    different stream or budget.  Decisions are guaranteed identical to
    :func:`repro.core.partition.m_partition_rebalance` on every
    snapshot — the caches only skip repeated work, never change the
    answer.
    """

    #: Above this fraction of changed jobs, the incremental scan stops
    #: paying for itself and the engine falls back to the vectorized
    #: full path (the tables are still hint-patched either way).
    churn_limit: float = 0.25

    def __init__(
        self, k: int, cache_size: int = 64, churn_limit: float | None = None
    ) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.k = k
        self.cache_size = cache_size
        if churn_limit is not None:
            self.churn_limit = churn_limit
        self.stats = EngineStats()
        self._tables: ThresholdTables | None = None
        self._cache: OrderedDict[bytes, RebalanceResult] = OrderedDict()
        # O(churn) path state: a pending (not yet applied) churn hint,
        # and whether _tables.sizes_asc has gone stale under hint
        # patching (it is only refreshed on full-scan decides).
        self._pending: tuple | None = None
        self._sizes_stale = False

    def reset(self) -> None:
        """Drop all cached state (tables, decisions, counters)."""
        self.stats = EngineStats()
        self._tables = None
        self._cache.clear()
        self._pending = None
        self._sizes_stale = False

    def note_churn(
        self,
        idx: np.ndarray,
        old_sizes: np.ndarray,
        old_costs: np.ndarray,
        old_initial: np.ndarray,
    ) -> None:
        """Record churn that happened *without* a decide.

        The server's solve plane applies every wire delta onto the
        shard's resident arrays in arrival order, but not every delta
        triggers a decision (deadline-shed requests and decision-memo
        hits still advance the state).  Those churn sets accumulate here
        and are folded into the next :meth:`rebalance` hint, keeping the
        warm tables patchable even though the arrays they alias have
        already moved on.
        """
        self._pending = _merge_hints(
            self._pending, _normalize_hint((idx, old_sizes, old_costs, old_initial))
        )

    @property
    def has_pending_churn(self) -> bool:
        """True when churn recorded via :meth:`note_churn` (or a cache
        hit with a hint) has not yet been folded into a decide.

        The server's solve plane checks this before handing the engine
        an arbitrary replacement snapshot with no hint: pending churn
        only describes the sites it names, so such a snapshot must be
        preceded by a :meth:`reset` (the pending hint cannot account
        for the other sites' differences).
        """
        return self._pending is not None

    @property
    def retained_snapshot(self) -> Instance | None:
        """The snapshot the warm threshold tables still reference.

        ``patch_tables`` diffs the next snapshot against this one, so
        its arrays stay live between decisions.  Callers that hand the
        engine borrowed array views (the service's shared-memory
        snapshot plane) use this to know when the borrow ends: once a
        later snapshot replaces it here, the old one's memory may be
        recycled.
        """
        return self._tables.instance if self._tables is not None else None

    def cached(self, fingerprint: bytes) -> RebalanceResult | None:
        """Decision-cache lookup by fingerprint alone.

        On a hit this counts a full decision (``decisions`` and
        ``cache_hits``) and returns the cached result — byte-identical
        to what :meth:`rebalance` would return — without the caller ever
        materializing the snapshot.  On a miss it returns ``None`` and
        touches no counters; the caller must follow up with
        :meth:`rebalance`.
        """
        cached = self._cache.get(fingerprint)
        if cached is None:
            return None
        self._cache.move_to_end(fingerprint)
        self.stats.decisions += 1
        self.stats.cache_hits += 1
        telemetry.count("cache_hits")
        return cached

    # ------------------------------------------------------------------
    def _update_tables(self, instance: Instance) -> ThresholdTables:
        """Cached tables patched to ``instance``, or a full build."""
        if self._tables is None:
            with telemetry.span("engine.build_tables"):
                tables = build_tables(instance)
            self.stats.full_builds += 1
            telemetry.count("full_builds")
        else:
            with telemetry.span("engine.patch_tables"):
                tables, patched = patch_tables(self._tables, instance)
            if patched < 0:
                self.stats.full_builds += 1
                telemetry.count("full_builds")
            else:
                self.stats.tables_reused += 1
                self.stats.buckets_patched += patched
                telemetry.count("tables_reused")
                telemetry.count("buckets_patched", patched)
        self._tables = tables
        return tables

    def rebalance(
        self,
        instance: Instance,
        *,
        fingerprint: bytes | None = None,
        changed: tuple | None = None,
    ) -> RebalanceResult:
        """Decide one epoch: M-PARTITION on ``instance`` with budget
        ``k``, served warm from the engine's caches.

        ``fingerprint`` lets a caller that already hashed the snapshot
        (the service layer rolls :func:`snapshot_fingerprint` at
        admission for batching dedupe and delta bases) skip the second
        hashing pass; it must be ``snapshot_fingerprint(instance)``.

        ``changed`` is an optional churn hint ``(idx, old_sizes,
        old_costs, old_initial)`` naming exactly the jobs that differ
        from the snapshot the engine's tables describe (plus any churn
        recorded via :meth:`note_churn`).  With a hint the engine never
        diffs arrays — which is what makes it correct for the O(churn)
        server path, where ``instance`` is a read-only view of resident
        arrays mutated in place, aliasing the tables' own snapshot.
        When the hinted churn is at most ``churn_limit * n`` the decide
        runs the windowed incremental scan
        (:func:`~repro.core.partition_incremental.scan_incremental`) —
        O(churn · bucket + scanned · log) instead of O(n log n) — and is
        byte-identical to the full path by construction (differential
        tests enforce it).
        """
        tmark = telemetry.mark()
        fp = fingerprint if fingerprint is not None else _fingerprint(instance)
        cached = self.cached(fp)
        if cached is not None:
            if changed is not None:
                # The arrays advanced even though the decision was
                # cached; remember the churn for the next real decide.
                self._pending = _merge_hints(
                    self._pending, _normalize_hint(changed)
                )
            return cached
        self.stats.decisions += 1

        hint = _merge_hints(
            self._pending,
            _normalize_hint(changed) if changed is not None else None,
        )
        self._pending = None
        n = instance.num_jobs
        hint_usable = (
            hint is not None
            and self._tables is not None
            and self._tables.instance.num_jobs == n
            and self._tables.instance.num_processors == instance.num_processors
            and n > 0
        )
        incremental = False
        if hint_usable:
            with telemetry.span("engine.patch_tables"):
                tables, changed_procs = patch_tables_hint(
                    self._tables, instance, hint[0], hint[3]
                )
            self._tables = tables
            self._sizes_stale = True
            self.stats.tables_reused += 1
            self.stats.buckets_patched += int(changed_procs.shape[0])
            telemetry.count("tables_reused")
            telemetry.count("buckets_patched", int(changed_procs.shape[0]))
            incremental = hint[0].shape[0] <= self.churn_limit * n
            if not incremental:
                self.stats.churn_fallbacks += 1
                telemetry.count("churn_fallbacks")
        else:
            if self._sizes_stale or (hint is not None and self._tables is not None):
                # The warm tables were hint-patched against arrays that
                # mutate in place (or the hint does not match their
                # shape), so a value diff against them is meaningless —
                # rebuild from the snapshot.
                self._tables = None
                self._sizes_stale = False
            tables = self._update_tables(instance)

        if n == 0:
            result = RebalanceResult(
                assignment=Assignment.initial(instance),
                algorithm="m-partition-engine",
                guessed_opt=0.0,
                planned_moves=0,
            )
            self._remember(fp, result)
            return result

        if incremental:
            with telemetry.span("engine.scan_incremental"):
                scan = scan_incremental(tables, self.k, instance.average_load)
            if scan is not None:
                stop_guess, k_hat, tried, refreshes, state = scan
                self.stats.thresholds_tried += tried
                self.stats.incremental_decides += 1
                telemetry.count("thresholds_tried", tried)
                telemetry.count("incremental_refreshes", refreshes)
                # The scan state holds every processor's exact values at
                # the stop guess (values change only at a processor's
                # own thresholds, all of which are in its stream), so
                # the Step-3 selection finalizes straight from it.
                ev = _finalize_evaluation(
                    stop_guess,
                    state.total_large_jobs,
                    state.a,
                    state.b,
                    state.has_large,
                )
                assert ev.planned_moves == k_hat, (
                    f"incremental k-hat {k_hat} disagrees with rescan "
                    f"{ev.planned_moves} at guess {stop_guess}"
                )
                with telemetry.span("engine.construct"):
                    assignment = _construct(instance, tables, ev)
                # O(moves) post-condition on the steady path: the O(n)
                # load-recompute guard of ``validate`` runs on every
                # full decide (and fallback), and the incremental
                # construction is additionally pinned by the k-hat
                # rescan assert above plus the differential tests.
                assert assignment.num_moves <= self.k, (
                    f"{assignment.num_moves} moves exceeds budget {self.k}"
                )
                result = RebalanceResult(
                    assignment=assignment,
                    algorithm="m-partition-engine",
                    guessed_opt=ev.guess,
                    planned_moves=ev.planned_moves,
                    meta=telemetry.attach(
                        {
                            "L_T": ev.total_large,
                            "m_L": ev.large_processors,
                            "L_E": ev.extra_large,
                            "thresholds_tried": tried,
                            "engine": self.stats.as_dict(),
                        },
                        tmark,
                    ),
                )
                self._remember(fp, result)
                return result
            # Candidate streams exhausted without a feasible stop —
            # fall through to the full scan, which reproduces the full
            # path's result or error semantics exactly.

        if self._sizes_stale:
            # Hint patching leaves the global ascending sizes stale; the
            # vectorized scan needs them fresh.
            tables = ThresholdTables(
                instance=instance,
                processors=tables.processors,
                sizes_asc=np.sort(instance.sizes),
            )
            self._tables = tables
            self._sizes_stale = False

        candidates = candidate_guesses(tables)
        flat = _FlatTables(tables)
        start = scan_start(candidates, instance.average_load)
        tried = 0
        stop_ev: GuessEvaluation | None = None
        with telemetry.span("engine.scan"):
            for idx in range(start, candidates.shape[0]):
                ev = flat.evaluate(float(candidates[idx]))
                tried += 1
                if ev.feasible and ev.planned_moves <= self.k:
                    stop_ev = ev
                    break
        self.stats.thresholds_tried += tried
        telemetry.count("thresholds_tried", tried)
        if stop_ev is None:  # pragma: no cover - same safeguard as rescan
            raise RuntimeError("no feasible threshold found")
        with telemetry.span("engine.construct"):
            assignment = _construct(instance, tables, stop_ev)
        assignment.validate(max_moves=self.k)
        result = RebalanceResult(
            assignment=assignment,
            algorithm="m-partition-engine",
            guessed_opt=stop_ev.guess,
            planned_moves=stop_ev.planned_moves,
            meta=telemetry.attach(
                {
                    "L_T": stop_ev.total_large,
                    "m_L": stop_ev.large_processors,
                    "L_E": stop_ev.extra_large,
                    "thresholds_tried": tried,
                    "engine": self.stats.as_dict(),
                },
                tmark,
            ),
        )
        self._remember(fp, result)
        return result

    def _remember(self, fp: bytes, result: RebalanceResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[fp] = result
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
