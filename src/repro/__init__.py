"""repro — a reproduction of "The Load Rebalancing Problem" (SPAA 2003).

Given jobs already assigned to processors, relocate at most ``k`` of
them (or a set of total relocation cost at most ``B``) to minimize the
makespan.  This library implements every algorithm in the paper —
GREEDY (tight ``2 - 1/m``), PARTITION / M-PARTITION (1.5), the
arbitrary-cost extension, and the PTAS — together with exact solvers,
classical baselines, the Section-5 hardness gadgets, a web-cluster
rebalancing simulator, workload generators and an experiment harness.

Quickstart::

    import repro

    inst = repro.make_instance(
        sizes=[5, 3, 3, 2, 2, 1], initial=[0, 0, 0, 0, 1, 1],
        num_processors=3,
    )
    result = repro.rebalance(inst, algorithm="m-partition", k=2)
    print(result.makespan, result.num_moves)
"""

from . import parallel, telemetry
from .core import (
    Assignment,
    Instance,
    Job,
    RebalanceResult,
    available_algorithms,
    cost_partition_rebalance,
    exact_rebalance,
    greedy_rebalance,
    m_partition_rebalance,
    make_instance,
    partition_rebalance,
    ptas_rebalance,
    rebalance,
)
from . import baselines  # noqa: E402  (registers baseline algorithms)

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "Instance",
    "Job",
    "RebalanceResult",
    "available_algorithms",
    "cost_partition_rebalance",
    "exact_rebalance",
    "greedy_rebalance",
    "m_partition_rebalance",
    "make_instance",
    "partition_rebalance",
    "ptas_rebalance",
    "parallel",
    "rebalance",
    "telemetry",
    "__version__",
]
