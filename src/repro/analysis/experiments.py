"""Experiment drivers E1–E10 (see DESIGN.md section 3).

The paper is a theory paper with no empirical tables; each driver here
regenerates, as a table, the quantity one of its theorems bounds —
measured on the paper's own tightness instances and on random families
— plus the motivating web-cluster simulation.  Each driver returns an
:class:`~repro.analysis.tables.ExperimentReport`; the benchmark harness
prints them, and EXPERIMENTS.md records paper-expected vs measured.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines.local_search import hill_climb_rebalance
from ..baselines.random_moves import random_rebalance
from ..baselines.shmoys_tardos import shmoys_tardos_rebalance
from ..core.cost_partition import cost_partition_rebalance
from ..core.exact import exact_rebalance
from ..core.greedy import greedy_rebalance
from ..core.instance import Instance
from ..core.lower_bounds import combined_lower_bound
from ..core.partition import m_partition_rebalance, partition_rebalance
from ..core.ptas import ptas_rebalance
from ..hardness.gap_costs import verify_gadget_gap
from ..hardness.conflict import conflict_gadget_from_3dm, feasible_conflict_assignment
from ..hardness.constrained import constrained_gadget_from_3dm, exact_constrained
from ..hardness.move_minimization import (
    min_moves_exact,
    min_moves_greedy,
    reduction_from_partition,
)
from ..hardness.partition_problem import random_no_instance, random_yes_instance
from ..hardness.three_dim_matching import planted_yes_instance, verified_no_instance
from ..websim.policies import (
    EngineMPartitionPolicy,
    FullRepackPolicy,
    GreedyPolicy,
    HillClimbPolicy,
    MPartitionPolicy,
    NoRebalance,
)
from ..websim.simulator import Simulation, build_cluster
from ..websim.traffic import make_traffic
from ..workloads.adversarial import (
    greedy_tight_instance,
    partition_tight_instance,
    planted_imbalance_instance,
)
from ..workloads.generators import random_instance
from .ratios import measure_ratios
from .scaling import loglog_slope, measure_scaling
from .tables import ExperimentReport

__all__ = [
    "experiment_e1_greedy",
    "experiment_e2_partition",
    "experiment_e3_scaling",
    "experiment_e4_ptas",
    "experiment_e5_costs",
    "experiment_e6_websim",
    "experiment_e7_movemin",
    "experiment_e8_frontier",
    "experiment_e9_headtohead",
    "experiment_e10_hardness",
    "experiment_e11_scale_oracles",
    "experiment_e12_engine",
    "experiment_e13_kernels",
    "experiment_e14_service",
    "experiment_e15_wire",
    "experiment_e16_shm",
    "experiment_e17_cluster",
    "wire_sizes",
    "ALL_EXPERIMENTS",
]


# ----------------------------------------------------------------------
# E1 — Theorem 1: GREEDY is a tight (2 - 1/m)-approximation.
# ----------------------------------------------------------------------
def experiment_e1_greedy(
    ms: tuple[int, ...] = (2, 3, 4, 6, 8),
    trials: int = 20,
    seed: int = 0,
) -> ExperimentReport:
    """Tightness family ratio vs ``2 - 1/m``, plus random-family ratios."""
    report = ExperimentReport(
        experiment_id="E1",
        title="GREEDY approximation ratio (Theorem 1: tight 2 - 1/m)",
        columns=("family", "m", "measured ratio", "bound 2-1/m", "within"),
    )
    for m in ms:
        instance, k, opt = greedy_tight_instance(m)
        # The paper's adversary makes Step 2 reinsert the big job last.
        res = greedy_rebalance(instance, k, insert_order="ascending")
        ratio = res.makespan / opt
        bound = 2.0 - 1.0 / m
        report.add_row("tight(Thm1)", m, ratio, bound, ratio <= bound + 1e-9)

    rng = np.random.default_rng(seed)
    for m in ms[:3]:
        ratios = []
        for _ in range(trials):
            inst = random_instance(int(rng.integers(5, 10)), m, rng,
                                   integer_sizes=True)
            k = int(rng.integers(0, inst.num_jobs + 1))
            opt = exact_rebalance(inst, k=k).makespan
            ratios.append(greedy_rebalance(inst, k).makespan / opt)
        bound = 2.0 - 1.0 / m
        worst = max(ratios)
        report.add_row(f"random x{trials}", m, worst, bound, worst <= bound + 1e-9)
    report.notes.append(
        "tight family: one size-m job + m(m-1) unit jobs, k = m-1; "
        "adversarial reinsertion order realizes exactly 2 - 1/m."
    )
    return report


# ----------------------------------------------------------------------
# E2 — Theorems 2/3: (M-)PARTITION is a tight 1.5-approximation.
# ----------------------------------------------------------------------
def experiment_e2_partition(
    trials: int = 30, seed: int = 1
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E2",
        title="(M-)PARTITION approximation ratio (Theorems 2-3: tight 1.5)",
        columns=("family", "algorithm", "worst ratio", "bound", "within"),
    )
    instance, k, opt = partition_tight_instance()
    r_known = partition_rebalance(instance, opt, k=k).makespan / opt
    report.add_row("tight(Thm2)", "partition(OPT)", r_known, 1.5, r_known <= 1.5 + 1e-9)
    r_m = m_partition_rebalance(instance, k).makespan / opt
    report.add_row("tight(Thm2)", "m-partition", r_m, 1.5, r_m <= 1.5 + 1e-9)

    rng = np.random.default_rng(seed)
    worst_known = worst_m = 1.0
    for _ in range(trials):
        inst = random_instance(
            int(rng.integers(5, 10)), int(rng.integers(2, 5)), rng,
            integer_sizes=True,
        )
        k = int(rng.integers(0, inst.num_jobs + 1))
        opt = exact_rebalance(inst, k=k).makespan
        worst_known = max(
            worst_known, partition_rebalance(inst, opt, k=k).makespan / opt
        )
        worst_m = max(worst_m, m_partition_rebalance(inst, k).makespan / opt)
    report.add_row(f"random x{trials}", "partition(OPT)", worst_known, 1.5,
                   worst_known <= 1.5 + 1e-9)
    report.add_row(f"random x{trials}", "m-partition", worst_m, 1.5,
                   worst_m <= 1.5 + 1e-9)
    report.notes.append(
        "tight family: procs {1/2, 1} and {1/2}, k=1; PARTITION makes no "
        "move and lands on exactly 1.5."
    )
    return report


# ----------------------------------------------------------------------
# E3 — O(n log n) runtime scaling.
# ----------------------------------------------------------------------
def experiment_e3_scaling(
    sizes: tuple[int, ...] = (512, 1024, 2048, 4096, 8192),
    m: int = 16,
    seed: int = 2,
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E3",
        title="Runtime scaling (Theorems 1/3: O(n log n))",
        columns=("algorithm", "n range", "log-log slope", "time@max-n (ms)"),
    )

    def make_input(n: int) -> tuple[Instance, int]:
        rng = np.random.default_rng(seed + n)
        return random_instance(n, m, rng), n // 10

    for name, runner in (
        ("greedy", lambda pair: greedy_rebalance(pair[0], pair[1])),
        ("m-partition", lambda pair: m_partition_rebalance(pair[0], pair[1])),
    ):
        points = measure_scaling(make_input, runner, sizes, repeats=2)
        slope = loglog_slope(points)
        report.add_row(
            name,
            f"{sizes[0]}..{sizes[-1]}",
            slope,
            points[-1].seconds * 1e3,
        )
    report.notes.append(
        "slope ~1 is quasi-linear; m-partition pays an O(n) threshold scan "
        "with O(m log n) work per threshold on top of the O(n log n) sort."
    )
    return report


# ----------------------------------------------------------------------
# E4 — Theorem 4: PTAS quality/cost trade-off.
# ----------------------------------------------------------------------
def experiment_e4_ptas(
    eps_values: tuple[float, ...] = (2.0, 1.0, 0.75, 0.5),
    trials: int = 8,
    seed: int = 3,
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E4",
        title="PTAS ratio vs eps (Theorem 4: makespan <= (1+eps) OPT, cost <= B)",
        columns=("eps", "bound 1+eps", "mean ratio", "worst ratio",
                 "budget ok", "mean time (ms)"),
    )
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(
            int(rng.integers(5, 9)), int(rng.integers(2, 4)), rng,
            cost_family="random", integer_sizes=True,
        )
        budget = float(rng.uniform(0.0, inst.costs.sum()))
        opt = exact_rebalance(inst, budget=budget).makespan
        cases.append((inst, budget, opt))
    for eps in eps_values:
        ratios = []
        times = []
        budget_ok = True
        for inst, budget, opt in cases:
            start = time.perf_counter()
            res = ptas_rebalance(inst, budget, eps=eps)
            times.append(time.perf_counter() - start)
            ratios.append(res.makespan / opt if opt else 1.0)
            budget_ok &= res.relocation_cost <= budget + 1e-9
        report.add_row(
            eps, 1.0 + eps, float(np.mean(ratios)), float(np.max(ratios)),
            budget_ok, float(np.mean(times) * 1e3),
        )
    report.notes.append(
        "ratio must stay below 1+eps and shrink as eps does; runtime grows "
        "steeply (the DP is exponential in the class count)."
    )
    return report


# ----------------------------------------------------------------------
# E5 — Section 3.2 vs the Shmoys–Tardos 2-approximation.
# ----------------------------------------------------------------------
def experiment_e5_costs(
    trials: int = 15, seed: int = 4
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E5",
        title="Weighted rebalancing: Section 3.2 vs Shmoys-Tardos LP (2-approx)",
        columns=("algorithm", "mean ratio", "worst ratio", "mean cost used",
                 "budget ok"),
    )
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(
            int(rng.integers(5, 10)), int(rng.integers(2, 4)), rng,
            cost_family="random", integer_sizes=True,
        )
        budget = float(rng.uniform(1.0, inst.costs.sum()))
        opt = exact_rebalance(inst, budget=budget).makespan
        cases.append((inst, budget, opt))
    for name, fn in (
        ("cost-partition(3.2)", lambda i, b: cost_partition_rebalance(i, b)),
        ("shmoys-tardos", lambda i, b: shmoys_tardos_rebalance(i, budget=b)),
    ):
        ratios = []
        costs = []
        ok = True
        for inst, budget, opt in cases:
            res = fn(inst, budget)
            ratios.append(res.makespan / opt if opt else 1.0)
            costs.append(res.relocation_cost)
            ok &= res.relocation_cost <= budget + 1e-6
        report.add_row(name, float(np.mean(ratios)), float(np.max(ratios)),
                       float(np.mean(costs)), ok)
    report.notes.append(
        "the paper's algorithm should dominate the LP baseline's worst "
        "case (1.5(1+alpha) vs 2)."
    )
    return report


# ----------------------------------------------------------------------
# E6 — the motivating web-cluster simulation.
# ----------------------------------------------------------------------
def experiment_e6_websim(
    num_sites: int = 60,
    num_servers: int = 6,
    epochs: int = 40,
    k: int = 3,
    seed: int = 5,
    traffic: str = "diurnal+flash",
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E6",
        title="Web-cluster simulation: bounded-migration policies "
              "(Section 1 motivation)",
        columns=("policy", "mean makespan", "peak makespan", "mean imbalance",
                 "migrations"),
    )
    policies = (
        NoRebalance(),
        GreedyPolicy(k=k),
        MPartitionPolicy(k=k),
        HillClimbPolicy(k=k),
        FullRepackPolicy(),
    )
    for policy in policies:
        rng = np.random.default_rng(seed)
        cluster = build_cluster(num_sites, num_servers, rng)
        model = make_traffic(traffic, flash_probability=0.15)
        sim = Simulation(cluster=cluster, traffic=model, policy=policy,
                         seed=seed + 1)
        res = sim.run(epochs)
        s = res.summary()
        report.add_row(
            s["policy"], s["mean_makespan"], s["peak_makespan"],
            s["mean_imbalance"], s["total_migrations"],
        )
    report.notes.append(
        f"k={k} migrations/epoch; bounded policies should approach "
        "full-repack at a small fraction of its migrations and dominate "
        "no-rebalancing."
    )
    return report


# ----------------------------------------------------------------------
# E7 — Theorem 5: move minimization encodes PARTITION.
# ----------------------------------------------------------------------
def experiment_e7_movemin(
    trials: int = 6, n: int = 10, seed: int = 6
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E7",
        title="Move minimization (Theorem 5: inapproximable; gadget gap)",
        columns=("gadget", "exact achievable", "exact moves",
                 "greedy achievable", "greedy sound"),
    )
    rng = np.random.default_rng(seed)
    for kind in ("yes", "no"):
        for t in range(trials):
            part = (
                random_yes_instance(n, rng)
                if kind == "yes"
                else random_no_instance(n, rng)
            )
            inst, bound = reduction_from_partition(part)
            exact = min_moves_exact(inst, bound)
            greedy = min_moves_greedy(inst, bound)
            # Soundness: greedy never claims achievable when exact says no.
            sound = (not greedy.achievable) or exact.achievable
            report.add_row(
                f"{kind}#{t}", exact.achievable,
                exact.moves if exact.moves is not None else "-",
                greedy.achievable, sound,
            )
    report.notes.append(
        "yes-gadgets are achievable, no-gadgets never are; any polynomial "
        "approximation would have to tell these apart (Theorem 5)."
    )
    return report


# ----------------------------------------------------------------------
# E8 — makespan-vs-k frontier.
# ----------------------------------------------------------------------
def experiment_e8_frontier(
    m: int = 4,
    jobs_per_processor: int = 5,
    displaced: int = 8,
    seed: int = 7,
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E8",
        title="Makespan vs move budget k (planted-imbalance family)",
        columns=("k", "lower bound", "greedy", "m-partition", "exact/planted"),
    )
    rng = np.random.default_rng(seed)
    instance, k_star, opt = planted_imbalance_instance(
        m, jobs_per_processor, displaced, rng
    )
    for k in range(0, k_star + 3):
        lb = combined_lower_bound(instance, k)
        g = greedy_rebalance(instance, k).makespan
        mp = m_partition_rebalance(instance, k).makespan
        planted = opt if k >= k_star else float("nan")
        report.add_row(k, lb, g, mp, planted)
    report.notes.append(
        f"displaced={displaced}: the frontier must flatten at the planted "
        f"optimum once k >= {k_star}."
    )
    return report


# ----------------------------------------------------------------------
# E9 — head-to-head comparison.
# ----------------------------------------------------------------------
def experiment_e9_headtohead(
    trials: int = 12, seed: int = 8
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E9",
        title="Head-to-head on random families (ratio vs exact)",
        columns=("algorithm", "mean ratio", "p95 ratio", "worst ratio",
                 "mean moves", "mean time (ms)"),
    )
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(
            int(rng.integers(6, 11)), int(rng.integers(2, 5)), rng,
            size_family=str(rng.choice(["uniform", "exponential", "zipf"])),
            integer_sizes=True,
        )
        k = int(rng.integers(1, inst.num_jobs))
        cases.append((inst, k))
    algorithms = {
        "greedy": lambda i, k: greedy_rebalance(i, k),
        "m-partition": lambda i, k: m_partition_rebalance(i, k),
        "hill-climb": lambda i, k: hill_climb_rebalance(i, k=k),
        "random": lambda i, k: random_rebalance(i, k=k, seed=0),
    }
    stats = measure_ratios(cases, algorithms)
    for name, s in stats.items():
        report.add_row(name, s.mean, s.p95, s.worst, s.mean_moves,
                       s.mean_runtime_ms)
    report.notes.append(
        "expected order: m-partition <= 1.5 worst, greedy <= 2 - 1/m worst, "
        "hill-climb unbounded-in-theory, random far behind."
    )
    return report


# ----------------------------------------------------------------------
# E10 — Theorems 6/7 + Corollary 1 gadget gaps.
# ----------------------------------------------------------------------
def experiment_e10_hardness(
    n: int = 3, trials: int = 4, seed: int = 9
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E10",
        title="Hardness gadgets (Theorems 6-7, Corollary 1): observed gaps",
        columns=("gadget", "instance", "has matching", "observed", "consistent"),
    )
    rng = np.random.default_rng(seed)
    for t in range(trials):
        yes = planted_yes_instance(n, n, rng)
        no = verified_no_instance(n, 2 * n, rng)
        for label, tdm in (("yes", yes), ("no", no)):
            # Theorem 6: two-valued-cost GAP.
            v = verify_gadget_gap(tdm)
            report.add_row(
                "Thm6 GAP", f"{label}#{t}", v["has_matching"],
                f"makespan {v['gadget_makespan']}", bool(v["consistent"]),
            )
            # Theorem 7: conflict scheduling feasibility.
            g = conflict_gadget_from_3dm(tdm)
            feasible = feasible_conflict_assignment(g) is not None
            report.add_row(
                "Thm7 conflict", f"{label}#{t}", v["has_matching"],
                f"feasible={feasible}", feasible == v["has_matching"],
            )
        # Corollary 1: constrained rebalancing (yes-instances only; the
        # gadget needs every element covered by some triple).
        ci, target = constrained_gadget_from_3dm(yes)
        mk, _ = exact_constrained(ci, k=ci.instance.num_jobs)
        report.add_row(
            "Cor1 constrained", f"yes#{t}", True, f"makespan {mk}",
            abs(mk - target) < 1e-9,
        )
    report.notes.append(
        "every yes-gadget must hit the small value (2 / feasible); every "
        "no-gadget must miss it — the 1.5 and unbounded gaps of Section 5."
    )
    return report


# ----------------------------------------------------------------------
# E11 — guarantees certified at scale (no exact solver).
# ----------------------------------------------------------------------
def experiment_e11_scale_oracles(
    sizes: tuple[tuple[int, int], ...] = ((1_000, 16), (10_000, 32),
                                          (50_000, 64)),
    seed: int = 10,
) -> ExperimentReport:
    """Theorem bounds verified at sizes exact search cannot touch.

    Two oracles make this possible: the closed-form optimum for
    unit-size jobs (the Rudolph et al. model of Section 1) and the
    planted-imbalance family, where the Lemma-1 lower bound is exactly
    the optimum.  Each run is re-checked by an independent certificate
    (:mod:`repro.core.certify`).
    """
    from ..core.certify import certify
    from ..core.unit_jobs import unit_opt_value, unit_rebalance_exact

    report = ExperimentReport(
        experiment_id="E11",
        title="Guarantees certified at scale (unit-size and planted oracles)",
        columns=("oracle", "n", "m", "algorithm", "ratio vs oracle",
                 "bound", "certified"),
    )
    rng = np.random.default_rng(seed)
    for n, m in sizes:
        # Unit-size oracle.
        initial = rng.integers(0, m, n)
        inst = Instance(
            sizes=np.ones(n), costs=np.ones(n), num_processors=m,
            initial=initial,
        )
        k = n // 20
        opt = unit_opt_value(inst, k)
        exact = unit_rebalance_exact(inst, k)
        assert exact.makespan == opt
        for name, res in (
            ("greedy", greedy_rebalance(inst, k)),
            ("m-partition", m_partition_rebalance(inst, k)),
        ):
            cert = certify(res, k=k)
            bound = 1.5 if name == "m-partition" else 2.0 - 1.0 / m
            ratio = res.makespan / opt
            report.add_row(
                "unit", n, m, name, ratio, bound,
                cert.valid and ratio <= bound + 1e-9,
            )
        # Planted oracle.
        per = max(2, n // m)
        displaced = per // 2
        inst2, k2, opt2 = planted_imbalance_instance(m, per, displaced, rng)
        for name, res in (
            ("greedy", greedy_rebalance(inst2, k2)),
            ("m-partition", m_partition_rebalance(inst2, k2)),
        ):
            cert = certify(res, k=k2)
            bound = 1.5 if name == "m-partition" else 2.0 - 1.0 / m
            ratio = res.makespan / opt2
            report.add_row(
                "planted", inst2.num_jobs, m, name, ratio, bound,
                cert.valid and ratio <= bound + 1e-9,
            )
    report.notes.append(
        "oracle optima are exact by construction; certificates "
        "re-derive loads, budgets and bounds independently of the "
        "algorithms' own bookkeeping."
    )
    return report


# ----------------------------------------------------------------------
# E12 — the warm-start engine vs from-scratch M-PARTITION in the loop.
# ----------------------------------------------------------------------
def experiment_e12_engine(
    num_sites: int = 2_000,
    num_servers: int = 32,
    epochs: int = 50,
    k: int = 8,
    seed: int = 12,
) -> ExperimentReport:
    """Epoch-loop wall clock: engine-backed vs from-scratch M-PARTITION.

    Both policies must produce the identical trajectory (the engine is a
    transparent acceleration); the table reports the decide-time totals
    and the engine's cache counters under dense traffic (every site's
    load drifts each epoch) and sparse traffic (flash crowds only — most
    snapshots change a handful of sites, and fully decayed crowds
    return byte-identical snapshots the decision cache answers).
    """
    report = ExperimentReport(
        experiment_id="E12",
        title="Warm-start engine vs from-scratch M-PARTITION "
              "(epoch-loop decide wall clock)",
        columns=("traffic", "policy", "decide s", "speedup",
                 "tables reused", "buckets patched", "cache hits",
                 "identical"),
    )
    traffics = (
        ("dense",
         lambda: make_traffic("diurnal+flash", flash_probability=0.1)),
        ("sparse", lambda: make_traffic("flash", flash_probability=0.05)),
    )
    for label, build_traffic in traffics:
        runs = {}
        for policy in (MPartitionPolicy(k=k), EngineMPartitionPolicy(k=k)):
            rng = np.random.default_rng(seed)
            cluster = build_cluster(num_sites, num_servers, rng)
            sim = Simulation(cluster=cluster, traffic=build_traffic(),
                             policy=policy, seed=seed + 1)
            res = sim.run(epochs)
            runs[policy.name] = (
                res,
                sum(r.decide_seconds for r in res.records),
            )
        scratch_res, scratch_s = runs["m-partition"]
        engine_res, engine_s = runs["m-partition-engine"]
        identical = [r.makespan for r in scratch_res.records] == [
            r.makespan for r in engine_res.records
        ] and [r.migrations for r in scratch_res.records] == [
            r.migrations for r in engine_res.records
        ]
        # Counters live on the engine the simulation deep-copied away,
        # so replay the same trajectory against a probe engine directly.
        stats = _engine_stats_for(
            EngineMPartitionPolicy(k=k), build_traffic(),
            num_sites, num_servers, epochs, seed,
        )
        report.add_row(label, "m-partition", scratch_s, 1.0, "-", "-", "-",
                       identical)
        report.add_row(
            label, "m-partition-engine", engine_s,
            scratch_s / engine_s if engine_s else float("inf"),
            stats["tables_reused"], stats["buckets_patched"],
            stats["cache_hits"], identical,
        )
    report.notes.append(
        f"n={num_sites} sites, m={num_servers} servers, {epochs} epochs, "
        f"k={k}; identical=True certifies the engine returned the exact "
        "from-scratch decisions while reusing cached threshold tables."
    )
    return report


def _engine_stats_for(
    probe: EngineMPartitionPolicy,
    traffic,
    num_sites: int,
    num_servers: int,
    epochs: int,
    seed: int,
) -> dict[str, int]:
    """Run the epoch loop directly against ``probe``'s engine so its
    cache counters survive (Simulation deep-copies its policy)."""
    rng = np.random.default_rng(seed + 1)
    cluster = build_cluster(num_sites, num_servers, np.random.default_rng(seed))
    for epoch in range(epochs):
        traffic.step(cluster.sites, epoch, rng)
        assignment = probe.decide(cluster.to_instance(), epoch)
        cluster.apply_assignment(assignment)
    return probe.engine.stats.as_dict()


# ----------------------------------------------------------------------
# E13 — vectorized DP kernels + parallel sweep vs the reference paths.
# ----------------------------------------------------------------------
def experiment_e13_kernels(
    trials: int = 4,
    seed: int = 13,
    worker_counts: tuple[int, ...] = (1, 2),
) -> ExperimentReport:
    """Kernel-vs-reference decide time for the cost/budgeted solvers.

    Three cases at the E4/E5 seed sizes — the budgeted PTAS, the
    Section-3.2 cost-partition scan, and the bare exact knapsack — each
    run once per backend over identical instances.  ``identical=True``
    certifies the kernel returned the exact reference solution (guess,
    planned cost, and assignment; kept set for the knapsack).  The
    ``dp work`` column is the backend's own account of its DP effort
    (``ptas_dp_states`` / ``knapsack_cells`` telemetry counters): the
    reference counts every allocated cell, the kernel only the cells it
    actually touches.  Worker rows rerun the kernel PTAS with the outer
    guess sweep fanned out over ``repro.parallel`` worker processes —
    the thresholds are identical by construction, so the row only
    measures scheduling overhead vs parallelism on this machine.
    """
    from .. import telemetry as _telemetry

    report = ExperimentReport(
        experiment_id="E13",
        title="Vectorized DP kernels vs reference (decide wall clock)",
        columns=("case", "backend", "time (s)", "speedup", "dp work",
                 "identical"),
    )
    rng = np.random.default_rng(seed)

    def timed(fn, cases):
        outs = []
        with _telemetry.collect() as col:
            start = time.perf_counter()
            for case in cases:
                outs.append(fn(case))
            elapsed = time.perf_counter() - start
        return outs, elapsed, dict(col.counters)

    def result_key(res):
        return (res.guessed_opt, res.planned_cost,
                tuple(int(x) for x in res.assignment.mapping))

    # Case 1: the budgeted PTAS at the E4 seed size.
    ptas_cases = []
    for _ in range(trials):
        inst = random_instance(7, 3, rng, cost_family="random",
                               integer_sizes=True)
        ptas_cases.append((inst, float(inst.costs.sum()) / 2.0))
    ref, ref_s, ref_w = timed(
        lambda c: ptas_rebalance(c[0], c[1], eps=0.75, backend="reference"),
        ptas_cases,
    )
    ker, ker_s, ker_w = timed(
        lambda c: ptas_rebalance(c[0], c[1], eps=0.75, backend="kernel"),
        ptas_cases,
    )
    identical = all(
        result_key(a) == result_key(b) for a, b in zip(ref, ker)
    )
    report.add_row("E4 ptas (n=7 m=3 eps=0.75)", "reference", ref_s, 1.0,
                   ref_w.get("ptas_dp_states", 0), True)
    report.add_row("E4 ptas (n=7 m=3 eps=0.75)", "kernel", ker_s,
                   ref_s / ker_s if ker_s else float("inf"),
                   ker_w.get("ptas_dp_states", 0), identical)
    for w in worker_counts:
        if w <= 1:
            continue
        par, par_s, _ = timed(
            lambda c: ptas_rebalance(c[0], c[1], eps=0.75, backend="kernel",
                                     workers=w),
            ptas_cases,
        )
        identical_w = all(
            result_key(a) == result_key(b) for a, b in zip(ker, par)
        )
        report.add_row(
            "E4 ptas (n=7 m=3 eps=0.75)", f"kernel workers={w}", par_s,
            ref_s / par_s if par_s else float("inf"), "-", identical_w,
        )

    # Case 2: the cost-partition guess scan at the E5 upper seed size.
    cp_cases = []
    for t in range(trials):
        inst = random_instance(64, 6, rng, cost_family="random")
        cp_cases.append((inst, float(inst.costs.sum()) / 4.0))
    ref, ref_s, ref_w = timed(
        lambda c: cost_partition_rebalance(c[0], c[1], backend="reference"),
        cp_cases,
    )
    ker, ker_s, ker_w = timed(
        lambda c: cost_partition_rebalance(c[0], c[1], backend="kernel"),
        cp_cases,
    )
    identical = all(
        result_key(a) == result_key(b) for a, b in zip(ref, ker)
    )
    report.add_row("E5 cost-partition (n=64 m=6)", "reference", ref_s, 1.0,
                   ref_w.get("knapsack_cells", 0), True)
    report.add_row("E5 cost-partition (n=64 m=6)", "kernel", ker_s,
                   ref_s / ker_s if ker_s else float("inf"),
                   ker_w.get("knapsack_cells", 0), identical)

    # Case 3: the bare exact knapsack on an overloaded shape (the DP
    # actually runs; fitting shapes exit through the all-fits shortcut).
    from ..core.knapsack import keep_max_cost_exact

    ks_cases = []
    for _ in range(trials * 12):
        sizes = rng.integers(1, 15, 48).astype(np.float64)
        costs = rng.integers(0, 20, 48).astype(np.float64)
        ks_cases.append((sizes, costs, float(sizes.sum()) * 0.6))
    ref, ref_s, ref_w = timed(
        lambda c: keep_max_cost_exact(c[0], c[1], c[2], backend="reference"),
        ks_cases,
    )
    ker, ker_s, ker_w = timed(
        lambda c: keep_max_cost_exact(c[0], c[1], c[2], backend="kernel"),
        ks_cases,
    )
    identical = all(a == b for a, b in zip(ref, ker))
    report.add_row("exact knapsack (n=48 overloaded)", "reference", ref_s,
                   1.0, ref_w.get("knapsack_cells", 0), True)
    report.add_row("exact knapsack (n=48 overloaded)", "kernel", ker_s,
                   ref_s / ker_s if ker_s else float("inf"),
                   ker_w.get("knapsack_cells", 0), identical)

    report.notes.append(
        "same instances per backend; identical=True certifies byte-equal "
        "solutions. Worker rows depend on the machine's core count "
        "(process-pool overhead dominates on a single core)."
    )
    return report


# ----------------------------------------------------------------------
# E14 — the rebalancing service: batching + admission vs naive serving.
# ----------------------------------------------------------------------
def _e14_run(server_config, loadgen_config):
    """One load-generation run against a fresh in-process server;
    returns the report plus whether the server still answered ``ping``
    after the run (the no-crash witness for the overload rows)."""
    from ..service import ServiceClient, run_loadgen, start_background

    with start_background(server_config) as handle:
        report = run_loadgen(handle.host, handle.port, loadgen_config)
        with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
            alive = probe.ping()
    return report, alive


def experiment_e14_service(
    rate: float = 120.0,
    duration_s: float = 2.0,
    duplicates: int = 4,
    deadline_ms: float = 300.0,
    seed: int = 14,
) -> ExperimentReport:
    """The asyncio service: batched vs naive goodput under open load.

    Four runs against fresh in-process servers on a workload calibrated
    so one from-scratch solve costs >= 15ms on this host (so the naive
    one-request-per-solve server's capacity is well below the offered
    rate regardless of machine speed).  ``batched`` is the full
    pipeline — admission queue, fingerprint-dedupe micro-batching, warm
    per-shard engines; ``naive`` solves every request from scratch,
    one at a time.  The overload rows re-run each mode past capacity
    with a tighter admission queue: graceful degradation means the
    excess is turned away as rejections/sheds while the server stays
    alive (``alive`` = answered ``ping`` after the run) — never an
    unbounded queue or a crash.
    """
    from dataclasses import replace as _replace

    from ..service import ServerConfig, calibrate_workload

    base, scratch_s = calibrate_workload(seed=seed)
    report = ExperimentReport(
        experiment_id="E14",
        title="Rebalancing service: batched vs naive serving (open loop)",
        columns=("mode", "rate/s", "goodput/s", "p50 ms", "p99 ms",
                 "ok", "late", "rej", "shed", "err", "alive"),
    )
    cases = (
        ("batched", ServerConfig(max_queue=64), rate),
        ("naive", ServerConfig.naive(max_queue=64), rate),
        ("batched 2x rate q=24", ServerConfig(max_queue=24), 2 * rate),
        ("naive overload q=24", ServerConfig.naive(max_queue=24), rate),
    )
    for mode, server_config, offered_rate in cases:
        lg = _replace(
            base, rate=offered_rate, duration_s=duration_s,
            duplicates=duplicates, deadline_ms=deadline_ms,
        )
        run, alive = _e14_run(server_config, lg)
        report.add_row(
            mode, offered_rate, run.goodput_per_s, run.p50_ms, run.p99_ms,
            run.completed, run.late, run.rejected, run.shed, run.errors,
            alive,
        )
    report.notes.append(
        f"calibrated workload: n={base.num_sites} m={base.num_servers} "
        f"k={base.k}, scratch solve {scratch_s * 1e3:.1f}ms "
        f"(naive capacity ~{1.0 / scratch_s:.0f}/s); "
        f"duplicates={duplicates}, deadline {deadline_ms:.0f}ms. "
        "goodput counts completions within the client deadline; "
        "rej = admission rejections, shed = server-side deadline "
        "expiries. Client and servers share this host, so the batched "
        "ceiling is also machine-bound."
    )
    return report


# ----------------------------------------------------------------------
# E15 — wire formats: v2 binary + delta snapshots vs v1 JSON.
# ----------------------------------------------------------------------
def wire_sizes(config) -> dict:
    """Frame sizes for one epoch stream under every transport.

    Encodes each snapshot of ``config``'s workload as a full v1-JSON
    request and a full v2-binary request, and each consecutive-epoch
    transition as the v2 delta frame the client would actually send
    (``compute_delta`` + fingerprint header).  Returns the per-request
    byte counts plus the changed-site counts behind the deltas.
    """
    from ..core.instance import compute_delta
    from ..service import PROTOCOL_V1, PROTOCOL_V2, build_snapshots, encode_frame

    def request(key, payload):
        return {"op": "rebalance", "shard": "wire", "k": config.k,
                "deadline_ms": 300.0, key: payload}

    snapshots = build_snapshots(config)
    v1_full = [len(encode_frame(request("instance", s.to_dict()),
                                version=PROTOCOL_V1)) for s in snapshots]
    v2_full = [len(encode_frame(request("instance", s.to_wire()),
                                version=PROTOCOL_V2)) for s in snapshots]
    v2_delta, changed = [], []
    for prev, cur in zip(snapshots, snapshots[1:]):
        delta = compute_delta(prev, cur)
        changed.append(int(len(delta["idx"])))
        message = request("delta", {"base": "00" * 16, **delta})
        v2_delta.append(len(encode_frame(message, version=PROTOCOL_V2)))
    return {
        "epochs": len(snapshots),
        "v1_full_bytes": float(np.mean(v1_full)),
        "v2_full_bytes": float(np.mean(v2_full)),
        "v2_delta_bytes": float(np.mean(v2_delta)),
        "v2_delta_max_bytes": int(max(v2_delta)),
        "changed_sites_mean": float(np.mean(changed)),
        "binary_reduction": float(np.mean(v1_full) / np.mean(v2_full)),
        "delta_reduction": float(np.mean(v1_full) / np.mean(v2_delta)),
    }


def experiment_e15_wire(
    duration_s: float = 2.0,
    deadline_ms: float = 300.0,
    overload: float = 1.35,
    rate_cap: float = 400.0,
    seed: int = 15,
) -> ExperimentReport:
    """Wire formats end to end: bytes per request and goodput.

    One steady-traffic multi-shard workload, calibrated so a single
    v1-JSON codec round costs a fixed time on this host, offered at
    ``overload`` times the v1 codec's own capacity.  The v1 leg (thread
    executor) must fall behind — its codec cannot even serialize the
    offered load on time — while the v2 binary+delta leg over the
    process executor serves the same arrival stream with its event loop
    barely working.  The middle row prices the full v2 binary snapshot,
    which is only modestly smaller than JSON; the order-of-magnitude
    win is the delta row, and it is the transport the optimized leg
    actually runs on.
    """
    from dataclasses import replace as _replace

    from ..service import ServerConfig, calibrate_wire_workload

    base, codec_s = calibrate_wire_workload(seed=seed)
    sizes = wire_sizes(base)
    rate = min(rate_cap, overload / codec_s)
    report = ExperimentReport(
        experiment_id="E15",
        title="Wire formats: v2 binary + delta snapshots vs v1 JSON",
        columns=("transport", "req bytes", "vs v1", "goodput/s",
                 "p50 ms", "p99 ms", "ok", "late", "shed", "err", "alive"),
    )
    lg = _replace(base, rate=rate, duration_s=duration_s,
                  deadline_ms=deadline_ms)
    cases = (
        ("v1 json full / thread", ServerConfig(max_queue=64), lg,
         sizes["v1_full_bytes"], 1.0),
        ("v2 delta / process x2",
         ServerConfig(executor="process", process_workers=2, max_queue=64),
         _replace(lg, protocol="binary", delta=True),
         sizes["v2_delta_bytes"], sizes["delta_reduction"]),
    )
    for mode, server_config, config, req_bytes, reduction in cases:
        run, alive = _e14_run(server_config, config)
        report.add_row(
            mode, int(req_bytes), f"{reduction:.1f}x", run.goodput_per_s,
            run.p50_ms, run.p99_ms, run.completed, run.late, run.shed,
            run.errors, alive,
        )
    report.add_row(
        "v2 binary full (encoded only)", int(sizes["v2_full_bytes"]),
        f"{sizes['binary_reduction']:.2f}x", "-", "-", "-", "-", "-", "-",
        "-", "-",
    )
    report.notes.append(
        f"calibrated workload: n={base.num_sites} m={base.num_servers} "
        f"k={base.k}, shards={base.shards}, duplicates={base.duplicates}, "
        f"steady traffic ({sizes['changed_sites_mean']:.1f} changed "
        f"sites/epoch); v1 codec round {codec_s * 1e3:.1f}ms -> offered "
        f"rate {rate:.0f}/s = {overload:.2f}x the v1 codec's capacity. "
        "Request bytes are measured frame sizes for the same epoch "
        "stream; the delta row is what the optimized leg sends once its "
        "per-shard bases are warm."
    )
    return report


# ----------------------------------------------------------------------
# E16 — shared-memory snapshot plane vs the inline worker-pipe codec.
# ----------------------------------------------------------------------
def _e16_run(server_config, loadgen_config, prime_passes: int = 2):
    """One primed load-generation run against a fresh in-process server.

    The priming passes walk the whole epoch stream through one delta
    client first, so both legs start the measured window with warm
    worker decision caches, delta bases, and (when enabled) published
    ring slots — the steady state a long-running service lives in.
    Returns the loadgen report, the post-run ``ping`` liveness, and the
    server's metric counters.
    """
    from ..service import (
        ServiceClient,
        build_snapshots,
        run_loadgen,
        start_background,
    )

    snapshots = build_snapshots(loadgen_config)
    with start_background(server_config) as handle:
        with ServiceClient(
            handle.host, handle.port, protocol="binary", delta=True
        ) as primer:
            for _ in range(prime_passes):
                for snapshot in snapshots:
                    primer.rebalance(
                        snapshot, loadgen_config.k,
                        shard=loadgen_config.shard,
                    )
        report = run_loadgen(handle.host, handle.port, loadgen_config)
        with ServiceClient(handle.host, handle.port, timeout=5.0) as probe:
            alive = probe.ping()
            counters = probe.status()["metrics"]["counters"]
    return report, alive, counters


def experiment_e16_shm(
    duration_s: float = 2.0,
    deadline_ms: float = 300.0,
    load_factor: float = 0.15,
    rate_cap: float = 120.0,
    steady_rate: float = 200.0,
    seed: int = 16,
) -> ExperimentReport:
    """The shared-memory snapshot plane end to end: goodput and latency.

    One churn-traffic workload (every epoch snapshot distinct, sparsely
    changed), calibrated so a single inline worker-pipe marshal round
    costs a fixed time on this host, offered at a rate that prices that
    marshal at ``load_factor`` of a core.  The inline-codec leg pays
    the marshal for every dispatched solve and falls over — queueing
    past the client deadline — while the shm leg ships O(1) slot
    references over the pipe and serves the same arrival stream with
    headroom.  The steady row then measures the quiet-cluster fast
    path on a small snapshot: decision-memo hits answered on the event
    loop, no worker round trip, sub-millisecond p50.
    """
    from dataclasses import replace as _replace

    from ..service import ServerConfig, calibrate_shm_workload

    base, marshal_s = calibrate_shm_workload(seed=seed)
    rate = min(rate_cap, load_factor / marshal_s)
    slot_bytes = 1 << max(20, (16 + 24 * base.num_sites).bit_length())
    report = ExperimentReport(
        experiment_id="E16",
        title="Shared-memory snapshot plane vs inline worker-pipe codec",
        columns=("transport", "ipc MB out", "goodput/s", "p50 ms",
                 "p99 ms", "ok", "late", "rej", "shed", "err", "alive"),
    )
    lg = _replace(base, rate=rate, duration_s=duration_s,
                  deadline_ms=deadline_ms, connections=8)
    # The overload legs disable the decision memo: after priming, the
    # cycled epochs would otherwise be answered from the memo and the
    # worker pipe — the transport under comparison — never touched.
    cases = (
        ("shm slot refs / process x2",
         ServerConfig(executor="process", process_workers=2,
                      max_queue=64, shm_slot_bytes=slot_bytes,
                      decision_cache_size=0)),
        ("inline arrays / process x2",
         ServerConfig(executor="process", process_workers=2,
                      max_queue=64, shm=False, decision_cache_size=0)),
    )
    for mode, server_config in cases:
        run, alive, counters = _e16_run(server_config, lg)
        report.add_row(
            mode, counters.get("service.ipc_bytes_out", 0) / 1e6,
            run.goodput_per_s, run.p50_ms, run.p99_ms, run.completed,
            run.late, run.rejected, run.shed, run.errors, alive,
        )
    steady_lg = _replace(
        base, num_sites=600, rate=steady_rate, duration_s=duration_s,
        deadline_ms=100.0, connections=4,
    )
    steady_server = ServerConfig(
        executor="process", process_workers=2, max_wait_ms=0.0
    )
    run, alive, counters = _e16_run(steady_server, steady_lg)
    report.add_row(
        "steady state (n=600, memo fast path)",
        counters.get("service.ipc_bytes_out", 0) / 1e6,
        run.goodput_per_s, run.p50_ms, run.p99_ms, run.completed,
        run.late, run.rejected, run.shed, run.errors, alive,
    )
    report.notes.append(
        f"calibrated workload: n={base.num_sites} m={base.num_servers} "
        f"k={base.k}, churn traffic, duplicates=1; inline marshal round "
        f"{marshal_s * 1e3:.2f}ms -> offered rate {rate:.0f}/s prices "
        f"the inline leg's per-solve marshal at {load_factor:.0%} of a "
        "core while the shm leg dispatches O(1) slot references.  The "
        "goodput gap opens once the rate exceeds the inline leg's "
        "capacity — host-speed dependent; bench_e16_shm hunts that "
        "window explicitly — whereas the ipc column differs by orders "
        "of magnitude at any rate.  Both legs are primed "
        "with two full passes over the epoch stream before measuring.  "
        "ipc MB out counts request bytes crossing worker pipes, "
        "priming included — the shm column stays near zero because "
        "snapshots cross as (slot, generation) references.  The steady "
        "row is the decision-memo fast path: repeated fingerprints "
        "answered on the event loop in sub-millisecond p50."
    )
    return report


# ----------------------------------------------------------------------
# E17 — the cluster tier: router + N backend processes, failover.
# ----------------------------------------------------------------------
def _e17_balanced_shard_base(
    node_names: list[str], shards: int, vnodes: int = 64
) -> str:
    """A shard base name whose ``shards`` lane names split evenly
    across the backend ring.

    The ring is a pure function of logical node names and crc32, so
    the hunt is deterministic: every E17 run measures the same
    placement.  The split matters because goodput under overload is
    per-owner capacity summed over nodes — an uneven split caps the
    cluster leg below the linear-scaling claim E17 pins.
    """
    from collections import Counter

    from ..service import HashRing

    ring = HashRing(tuple(node_names), vnodes=vnodes)
    per_node = shards // len(node_names)
    for trial in range(10_000):
        base = f"lane{trial}"
        counts = Counter(ring.owner(f"{base}-{i}") for i in range(shards))
        if all(counts.get(name, 0) == per_node for name in node_names):
            return base
    raise RuntimeError("no balanced shard split found")  # pragma: no cover


def _e17_workload(seed: int):
    """A small fixed-size workload plus its measured scratch-solve
    time.

    E17's per-node capacity comes from the synthetic service floor,
    not the solve, so the instance only needs to be big enough to
    exercise the delta path.  Keeping it small keeps the per-request
    CPU (codec, router re-encoding, replicate handling) negligible
    next to the floor — on a one-core host that CPU is shared by the
    loadgen, the router, and both backends, and a calibrated-size
    instance would eat the scale-out it is trying to measure.
    """
    import time as _time

    from ..core.partition import m_partition_rebalance
    from ..service import LoadGenConfig, build_snapshots

    config = LoadGenConfig(
        num_sites=300, num_servers=12, k=8, epochs=24, seed=seed
    )
    from dataclasses import replace as _replace

    snapshot = build_snapshots(_replace(config, epochs=1))[0]
    solve_s = float("inf")
    for _ in range(2):  # best-of-2 strips scheduler spikes
        start = _time.perf_counter()
        m_partition_rebalance(snapshot, config.k)
        solve_s = min(solve_s, _time.perf_counter() - start)
    return config, solve_s


def _e17_leg(
    loadgen_config,
    n_backends: int,
    *,
    router: bool,
    kill_at_s: float | None = None,
    max_queue: int = 16,
    solve_delay_ms: float = 0.0,
):
    """One E17 leg: spawn real ``serve`` OS processes, optionally put
    a router in front, and run the open loop.

    Backends run ``--naive --solver-workers 1`` plus a synthetic
    per-solve service-time floor (``--solve-delay-ms``): each node
    serves exactly one request per ``solve + floor`` interval, and the
    sleep releases the GIL and the core.  Capacity is therefore pinned
    *per node* no matter how many cores the host has — without the
    floor, two CPU-bound backend processes on a one-core CI box share
    the core and can never show the scale-out the cluster tier
    actually provides.  ``--max-queue`` is sized by the caller so a
    full queue drains in about half the deadline: admitted requests
    complete in time and the excess is rejected (backpressure), which
    goodput correctly ignores.  A deeper queue would silently convert
    rejections into deadline misses and cap measured goodput far
    below capacity.  ``kill_at_s`` arms a ``kill -9`` of the *last*
    backend mid-run — the failover injection.  Returns
    ``(report, router_counters)``.
    """
    import threading

    from ..service import (
        BackendSpec,
        RouterConfig,
        ServiceClient,
        run_loadgen,
        spawn_serve_process,
        start_router_background,
    )

    extra = (
        "--naive", "--solver-workers", "1", "--max-queue", str(max_queue),
        "--solve-delay-ms", str(solve_delay_ms),
    )
    processes = []
    handle = None
    timer = None
    counters: dict[str, int] = {}
    try:
        for _ in range(n_backends):
            processes.append(spawn_serve_process(*extra))
        if router:
            specs = tuple(
                BackendSpec(f"backend-{i}", proc.host, proc.port)
                for i, proc in enumerate(processes)
            )
            handle = start_router_background(RouterConfig(backends=specs))
            host, port = handle.host, handle.port
        else:
            host, port = processes[0].host, processes[0].port
        if kill_at_s is not None:
            timer = threading.Timer(kill_at_s, processes[-1].kill)
            timer.start()
        report = run_loadgen(host, port, loadgen_config)
        if router:
            with ServiceClient(host, port, timeout=10.0) as probe:
                counters = probe.status()["router"]["metrics"]["counters"]
    finally:
        if timer is not None:
            timer.cancel()
        if handle is not None:
            handle.stop()
        for proc in processes:
            proc.terminate()
    return report, counters


def experiment_e17_cluster(
    duration_s: float = 2.5,
    deadline_ms: float = 500.0,
    overload: float = 2.4,
    rate_cap: float = 150.0,
    shards: int = 8,
    seed: int = 17,
    solve_delay_ms: float = 80.0,
) -> ExperimentReport:
    """The cluster tier end to end: scale-out goodput and failover.

    Per-node capacity is pinned by construction: backends solve one
    request at a time and each solve carries a ``solve_delay_ms``
    service-time floor (slept on the solve thread, releasing the GIL
    and the core), so a node serves ~``1/(solve + floor)`` requests
    per second regardless of host CPU — two backends scale to ~2x
    even on a one-core machine, which is what lets this experiment
    measure the *cluster tier* rather than the core count.  The
    workload is offered at ``overload`` times one node's capacity.
    Three legs, same arrival stream: a single backend process
    saturates at its capacity; two backend processes behind the
    router serve about twice that (the shard lanes split evenly
    across the ring by construction); and the failover leg
    ``kill -9``-s one of the two mid-run — the router promotes the
    delta-replicated standby and replays in-flight requests, so
    clients observe a latency blip but **zero errors**.
    """
    from dataclasses import replace as _replace

    base, solve_s = _e17_workload(seed)
    service_s = solve_s + solve_delay_ms / 1e3
    capacity = 1.0 / service_s
    rate = min(rate_cap, overload * capacity)
    # Queue depth scales with the pinned service time so a full queue
    # drains in ~70% of the deadline: deep enough to smooth arrival
    # bursts (a too-thin queue lets a node idle between them), shallow
    # enough that every admitted request still clears the deadline.
    max_queue = max(2, int(0.7 * (deadline_ms / 1e3) / service_s))
    shard_base = _e17_balanced_shard_base(["backend-0", "backend-1"], shards)
    lg = _replace(
        base, rate=rate, duration_s=duration_s, deadline_ms=deadline_ms,
        connections=16, duplicates=1, shards=shards, shard=shard_base,
        protocol="binary", delta=True,
    )
    report = ExperimentReport(
        experiment_id="E17",
        title="Cluster tier: router over backend processes, failover mid-run",
        columns=("topology", "goodput/s", "vs single", "p50 ms", "p99 ms",
                 "ok", "late", "rej", "shed", "err", "replicated", "deaths"),
    )
    single, _ = _e17_leg(
        lg, 1, router=False, max_queue=max_queue,
        solve_delay_ms=solve_delay_ms,
    )
    cluster, counters = _e17_leg(
        lg, 2, router=True, max_queue=max_queue,
        solve_delay_ms=solve_delay_ms,
    )
    failover, f_counters = _e17_leg(
        lg, 2, router=True, kill_at_s=duration_s / 2, max_queue=max_queue,
        solve_delay_ms=solve_delay_ms,
    )
    for name, run, ctrs in (
        ("single backend (direct)", single, {}),
        ("router + 2 backends", cluster, counters),
        ("router + 2 backends, one killed", failover, f_counters),
    ):
        ratio = (
            run.goodput_per_s / single.goodput_per_s
            if single.goodput_per_s else float("nan")
        )
        report.add_row(
            name, run.goodput_per_s, f"{ratio:.2f}x", run.p50_ms,
            run.p99_ms, run.completed, run.late, run.rejected, run.shed,
            run.errors, ctrs.get("router.replicated", 0),
            ctrs.get("router.backend_deaths", 0),
        )
    report.notes.append(
        f"fixed small workload: n={base.num_sites} m={base.num_servers} "
        f"k={base.k}; scratch solve {solve_s * 1e3:.1f}ms + "
        f"{solve_delay_ms:.0f}ms service floor -> per-backend capacity "
        f"~{capacity:.0f}/s pinned regardless of host cores, offered "
        f"rate {rate:.0f}/s = {overload:.1f}x one backend.  Backends "
        "are real OS processes (--naive --solver-workers 1 "
        "--solve-delay-ms: one request per service interval; "
        f"--max-queue {max_queue} drains in ~70% of the deadline); the "
        f"{shards} shard lanes split 50/50 across the ring "
        f"(base {shard_base!r}, hunted deterministically).  The failover "
        "leg SIGKILLs one backend at the half-way mark: the router "
        "detects the death inline (transport error) or via health "
        "probes, promotes the standby that absorbed the shard's delta "
        "replica stream, and replays the in-flight requests — the err "
        "column staying 0 through a kill -9 is the tentpole claim."
    )
    return report


ALL_EXPERIMENTS = {
    "E1": experiment_e1_greedy,
    "E2": experiment_e2_partition,
    "E3": experiment_e3_scaling,
    "E4": experiment_e4_ptas,
    "E5": experiment_e5_costs,
    "E6": experiment_e6_websim,
    "E7": experiment_e7_movemin,
    "E8": experiment_e8_frontier,
    "E9": experiment_e9_headtohead,
    "E10": experiment_e10_hardness,
    "E11": experiment_e11_scale_oracles,
    "E12": experiment_e12_engine,
    "E13": experiment_e13_kernels,
    "E14": experiment_e14_service,
    "E15": experiment_e15_wire,
    "E16": experiment_e16_shm,
    "E17": experiment_e17_cluster,
}
