"""Approximation-ratio measurement against exact optima.

The paper's theorems bound each algorithm's makespan against ``OPT``;
these helpers compute the measured ratio distributions over instance
families (experiments E1, E2, E4, E5, E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.exact import exact_rebalance
from ..core.instance import Instance
from ..core.result import RebalanceResult

__all__ = ["RatioStats", "measure_ratios"]


@dataclass(frozen=True)
class RatioStats:
    """Summary of makespan ratios (algorithm / optimum) over a family."""

    algorithm: str
    count: int
    mean: float
    p95: float
    worst: float
    mean_moves: float
    mean_runtime_ms: float

    @classmethod
    def from_samples(
        cls,
        algorithm: str,
        ratios: Sequence[float],
        moves: Sequence[int],
        runtimes: Sequence[float],
    ) -> "RatioStats":
        arr = np.asarray(ratios, dtype=np.float64)
        return cls(
            algorithm=algorithm,
            count=int(arr.shape[0]),
            mean=float(arr.mean()),
            p95=float(np.percentile(arr, 95)),
            worst=float(arr.max()),
            mean_moves=float(np.mean(moves)),
            mean_runtime_ms=float(np.mean(runtimes) * 1e3),
        )


def measure_ratios(
    instances: Sequence[tuple[Instance, int]],
    algorithms: dict[str, Callable[[Instance, int], RebalanceResult]],
    opt_values: Sequence[float] | None = None,
) -> dict[str, RatioStats]:
    """Run every algorithm on every ``(instance, k)`` pair and compare
    to the exact optimum.

    ``opt_values`` may supply known optima (planted families); when
    ``None`` the branch-and-bound exact solver computes them.
    """
    import time

    per_alg: dict[str, tuple[list[float], list[int], list[float]]] = {
        name: ([], [], []) for name in algorithms
    }
    for idx, (instance, k) in enumerate(instances):
        if opt_values is not None:
            opt = float(opt_values[idx])
        else:
            opt = exact_rebalance(instance, k=k).makespan
        for name, fn in algorithms.items():
            start = time.perf_counter()
            result = fn(instance, k)
            elapsed = time.perf_counter() - start
            ratios, moves, runtimes = per_alg[name]
            ratios.append(result.makespan / opt if opt > 0 else 1.0)
            moves.append(result.num_moves)
            runtimes.append(elapsed)
    return {
        name: RatioStats.from_samples(name, *per_alg[name]) for name in algorithms
    }
