"""Experiment harness: ratio measurement, runtime scaling, ASCII tables
and the E1–E10 drivers that regenerate every result in EXPERIMENTS.md."""

from .experiments import (
    ALL_EXPERIMENTS,
    experiment_e1_greedy,
    experiment_e2_partition,
    experiment_e3_scaling,
    experiment_e4_ptas,
    experiment_e5_costs,
    experiment_e6_websim,
    experiment_e7_movemin,
    experiment_e8_frontier,
    experiment_e9_headtohead,
    experiment_e10_hardness,
    experiment_e11_scale_oracles,
    experiment_e12_engine,
    experiment_e13_kernels,
    experiment_e14_service,
    experiment_e15_wire,
    experiment_e16_shm,
    experiment_e17_cluster,
    wire_sizes,
)
from .ablations import (
    ALL_ABLATIONS,
    ablation_a1_insert_order,
    ablation_a2_knapsack_backend,
    ablation_a3_scan_strategy,
)
from .ratios import RatioStats, measure_ratios
from .scaling import ScalingPoint, loglog_slope, measure_scaling
from .tables import ExperimentReport, render_table

__all__ = [
    "ALL_ABLATIONS",
    "ALL_EXPERIMENTS",
    "ablation_a1_insert_order",
    "ablation_a2_knapsack_backend",
    "ablation_a3_scan_strategy",
    "ExperimentReport",
    "RatioStats",
    "ScalingPoint",
    "experiment_e1_greedy",
    "experiment_e2_partition",
    "experiment_e3_scaling",
    "experiment_e4_ptas",
    "experiment_e5_costs",
    "experiment_e6_websim",
    "experiment_e7_movemin",
    "experiment_e8_frontier",
    "experiment_e9_headtohead",
    "experiment_e10_hardness",
    "experiment_e11_scale_oracles",
    "experiment_e12_engine",
    "experiment_e13_kernels",
    "experiment_e14_service",
    "experiment_e15_wire",
    "experiment_e16_shm",
    "experiment_e17_cluster",
    "loglog_slope",
    "measure_ratios",
    "measure_scaling",
    "render_table",
    "wire_sizes",
]
