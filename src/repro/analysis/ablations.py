"""Ablation studies for the reproduction's design choices.

Three choices in this implementation are defensible either way; each
ablation quantifies the difference so DESIGN.md's choices are backed by
data rather than taste:

* **A1 — GREEDY reinsertion order** (the paper says "arbitrary"):
  removal order vs size-descending vs size-ascending, on random
  families and on the Theorem-1 adversarial family (where the order is
  exactly what separates ratio ``2 - 1/m`` from much better).
* **A2 — knapsack backend for Section 3.2**: exact DP vs FPTAS inside
  ``cost_partition_rebalance`` — solution quality, budget usage and
  runtime.
* **A3 — M-PARTITION scan strategy**: per-threshold full rescan vs the
  Theorem-3 incremental aggregates — identical answers (enforced), so
  the comparison is pure runtime.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.cost_partition import cost_partition_rebalance
from ..core.exact import exact_rebalance
from ..core.greedy import greedy_rebalance
from ..core.partition import m_partition_rebalance
from ..core.partition_incremental import m_partition_rebalance_incremental
from ..workloads.adversarial import greedy_tight_instance
from ..workloads.generators import random_instance
from .tables import ExperimentReport

__all__ = [
    "ablation_a1_insert_order",
    "ablation_a2_knapsack_backend",
    "ablation_a3_scan_strategy",
    "ALL_ABLATIONS",
]


def ablation_a1_insert_order(
    trials: int = 15, seed: int = 100
) -> ExperimentReport:
    """GREEDY Step-2 reinsertion order."""
    report = ExperimentReport(
        experiment_id="A1",
        title="Ablation: GREEDY reinsertion order (paper: 'arbitrary order')",
        columns=("family", "order", "mean ratio", "worst ratio"),
    )
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(
            int(rng.integers(5, 10)), int(rng.integers(2, 5)), rng,
            integer_sizes=True,
        )
        k = int(rng.integers(1, inst.num_jobs + 1))
        cases.append((inst, k, exact_rebalance(inst, k=k).makespan))
    for order in ("removal", "descending", "ascending"):
        ratios = [
            greedy_rebalance(inst, k, insert_order=order).makespan / opt
            for inst, k, opt in cases
        ]
        report.add_row(
            f"random x{trials}", order, float(np.mean(ratios)),
            float(np.max(ratios)),
        )
    # The adversarial family: order is the whole story.
    inst, k, opt = greedy_tight_instance(8)
    for order in ("removal", "descending", "ascending"):
        ratio = greedy_rebalance(inst, k, insert_order=order).makespan / opt
        report.add_row("tight(m=8)", order, ratio, ratio)
    report.notes.append(
        "on the Theorem-1 family, reinserting the big job last "
        "(ascending) realizes the full 2 - 1/m; descending avoids it — "
        "the guarantee is order-independent but the constant is not."
    )
    return report


def ablation_a2_knapsack_backend(
    trials: int = 10, seed: int = 101
) -> ExperimentReport:
    """Exact-DP vs FPTAS knapsacks inside the Section-3.2 algorithm."""
    report = ExperimentReport(
        experiment_id="A2",
        title="Ablation: Section 3.2 knapsack backend (exact DP vs FPTAS)",
        columns=("backend", "mean ratio", "worst ratio", "mean time (ms)",
                 "budget ok"),
    )
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(trials):
        inst = random_instance(
            int(rng.integers(6, 10)), int(rng.integers(2, 4)), rng,
            cost_family="random", integer_sizes=True,
        )
        budget = float(rng.uniform(1.0, inst.costs.sum()))
        cases.append((inst, budget, exact_rebalance(inst, budget=budget).makespan))
    for backend, eps in (("exact", 0.0), ("fptas eps=0.2", 0.2),
                         ("fptas eps=0.5", 0.5)):
        method = "exact" if backend == "exact" else "fptas"
        ratios = []
        times = []
        ok = True
        for inst, budget, opt in cases:
            start = time.perf_counter()
            res = cost_partition_rebalance(
                inst, budget, knapsack_method=method,
                knapsack_eps=eps or 0.05,
            )
            times.append(time.perf_counter() - start)
            ratios.append(res.makespan / opt if opt else 1.0)
            ok &= res.relocation_cost <= budget + 1e-6
        report.add_row(
            backend, float(np.mean(ratios)), float(np.max(ratios)),
            float(np.mean(times) * 1e3), ok,
        )
    report.notes.append(
        "the FPTAS never violates the budget (it rounds costs, not "
        "sizes); its looser plans may stop the guess scan later, "
        "trading a little makespan for speed on large processors."
    )
    return report


def ablation_a3_scan_strategy(
    sizes: tuple[int, ...] = (512, 1024, 2048, 4096),
    m: int = 8,
    seed: int = 102,
) -> ExperimentReport:
    """Rescan vs incremental threshold scan, equal answers enforced."""
    report = ExperimentReport(
        experiment_id="A3",
        title="Ablation: M-PARTITION threshold scan (rescan vs incremental)",
        columns=("n", "rescan (ms)", "incremental (ms)", "same answer"),
    )
    for n in sizes:
        rng = np.random.default_rng(seed + n)
        inst = random_instance(n, m, rng, placement="skewed")
        k = max(1, n // 20)
        start = time.perf_counter()
        a = m_partition_rebalance(inst, k)
        t_rescan = time.perf_counter() - start
        start = time.perf_counter()
        b = m_partition_rebalance_incremental(inst, k)
        t_incr = time.perf_counter() - start
        same = (
            a.guessed_opt == b.guessed_opt
            and a.makespan == b.makespan
            and a.planned_moves == b.planned_moves
        )
        report.add_row(n, t_rescan * 1e3, t_incr * 1e3, same)
    report.notes.append(
        "identical stopping thresholds and assignments by construction; "
        "the incremental scan's O(log n) per-threshold updates matter "
        "when the scan crosses many thresholds (skewed placements)."
    )
    return report


ALL_ABLATIONS = {
    "A1": ablation_a1_insert_order,
    "A2": ablation_a2_knapsack_backend,
    "A3": ablation_a3_scan_strategy,
}
