"""Fixed-width ASCII tables for experiment reports.

The benchmark harness prints every experiment's table through these
helpers, so ``pytest benchmarks/ --benchmark-only`` regenerates the
full result set in a uniform format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentReport", "render_table"]


@dataclass
class ExperimentReport:
    """A rendered experiment: identity, tabular data and prose notes."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        return render_table(
            title=f"[{self.experiment_id}] {self.title}",
            columns=self.columns,
            rows=self.rows,
            notes=self.notes,
        )


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """Render a titled fixed-width table with optional footnotes."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines = [title, "=" * max(len(title), len(header)), header, sep]
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"  * {note}")
    return "\n".join(lines)
