"""Runtime scaling measurement (experiment E3).

Theorems 1 and 3 claim ``O(n log n)`` running time for GREEDY and
M-PARTITION.  These helpers time an algorithm over a size sweep and fit
the log–log slope: quasi-linear algorithms land near slope 1 (the
``log n`` factor nudges it slightly above).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ScalingPoint", "measure_scaling", "loglog_slope"]


@dataclass(frozen=True)
class ScalingPoint:
    """One timed size point."""

    n: int
    seconds: float


def measure_scaling(
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    sizes: Sequence[int],
    repeats: int = 3,
) -> list[ScalingPoint]:
    """Time ``run(make_input(n))`` for each ``n``; best of ``repeats``.

    Input construction is excluded from the timing.
    """
    points = []
    for n in sizes:
        payload = make_input(n)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run(payload)
            best = min(best, time.perf_counter() - start)
        points.append(ScalingPoint(n=int(n), seconds=best))
    return points


def loglog_slope(points: Sequence[ScalingPoint]) -> float:
    """Least-squares slope of ``log(seconds)`` against ``log(n)``.

    ~1.0 = linear / quasi-linear, ~2.0 = quadratic.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    x = np.log([p.n for p in points])
    y = np.log([max(p.seconds, 1e-9) for p in points])
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)
