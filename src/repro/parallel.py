"""Deterministic process-pool sweep runner.

The experiments, benchmarks, and outer guess searches in this repo are
all *embarrassingly parallel sweeps*: apply one picklable function to a
list of independent items.  This module gives them a single fan-out API
with the three properties the reproduction needs:

* **Deterministic ordering** — results come back indexed by input
  position regardless of worker scheduling, so a parallel run is
  byte-identical to a serial one.
* **Telemetry merge** — when the parent has a telemetry collector
  installed, each worker collects its own spans/counters and the parent
  folds them back in (:meth:`repro.telemetry.Collector.merge`), so
  ``--profile`` still accounts for work done in workers.
* **Serial fallback** — ``workers <= 1`` (or a single item) runs inline
  on the calling thread with zero pool overhead, which keeps the
  parallel path an opt-in strictly-faster variant of the serial one.

:func:`run_until` layers an early-exit scan on top: items are evaluated
in chunks, in order, and the first item (by input position) whose
result satisfies the predicate wins.  Later items may be evaluated
speculatively — wasted work, never a different answer — which is
exactly the contract the PTAS outer guess search needs to parallelize
while returning the identical threshold to the serial scan.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import struct
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from . import telemetry

__all__ = [
    "PersistentWorkerPool",
    "SnapshotRing",
    "default_workers",
    "run_sweep",
    "run_until",
    "spawn_piped_process",
]


def default_workers() -> int:
    """Worker count to use when the caller says "all": the CPU count."""
    return max(1, os.cpu_count() or 1)


def _call_collected(payload: tuple) -> tuple[int, Any, dict | None]:
    """Worker-side shim: run one item, optionally under a collector."""
    fn, idx, item, with_telemetry = payload
    if with_telemetry:
        with telemetry.collect() as collector:
            out = fn(item)
        return idx, out, collector.as_dict()
    return idx, fn(item), None


def _merge_worker_telemetry(data: dict | None) -> None:
    collector = telemetry.current()
    if collector is not None and data is not None:
        collector.merge(data)


def run_sweep(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: int | None = None,
    chunksize: int = 1,
    executor: str = "process",
) -> list[Any]:
    """Apply ``fn`` to every item, returning results in input order.

    ``fn`` and the items must be picklable when ``workers > 1`` with
    the default ``executor="process"`` (``fn`` is typically a
    module-level function taking one payload tuple).  ``workers=None``
    means :func:`default_workers`.

    ``executor="thread"`` fans out over a thread pool instead: nothing
    is pickled, so stateful unpicklable objects (e.g. the service
    layer's per-shard :class:`~repro.core.engine.RebalanceEngine`
    pools) can be mutated in place by the workers.  Threads share the
    GIL, so this pays off for numpy-heavy work and for keeping an
    asyncio event loop responsive, not for pure-Python loops.
    Telemetry merging works identically in both modes (each worker
    thread gets its own thread-local collector).
    """
    if executor not in ("process", "thread"):
        raise ValueError(f"unknown executor {executor!r}")
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    with_tel = telemetry.enabled()
    payloads = [(fn, idx, item, with_tel) for idx, item in enumerate(items)]
    results: list[Any] = [None] * len(items)
    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=min(workers, len(items))) as pool:
        for idx, out, tel in pool.map(
            _call_collected, payloads, chunksize=chunksize
        ):
            results[idx] = out
            _merge_worker_telemetry(tel)
    return results


# ----------------------------------------------------------------------
# Shared-memory snapshot ring
# ----------------------------------------------------------------------
_SLOT_HEADER = 16  # generation (u64 little-endian) + job count (u64)
_ARRAYS_PER_SLOT = 3  # sizes (f8), costs (f8), initial (i8)


def _attach_untracked(name: str) -> Any:
    """Attach to an existing segment without resource-tracker custody.

    A spawned worker that merely *attaches* to a segment must not let
    its resource tracker unlink the segment at exit — the serving
    process owns the name.  Python 3.13 grew ``track=False`` for this.
    Older interpreters share one tracker process across the pool, and
    its registry is a plain set of names: attach-then-``unregister``
    would erase the *owner's* registration too, so the portable
    spelling is to suppress ``register`` for the duration of the
    attach instead.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SnapshotRing:
    """A fixed-slot shared-memory ring of snapshot array triples.

    One segment holds ``slots`` equal-size slots.  Each slot stores a
    16-byte header (a monotonically increasing *generation* counter and
    the job count ``n``) followed by three 8-byte-aligned arrays:
    ``sizes`` (float64), ``costs`` (float64), ``initial`` (int64) — the
    variable-length payload of one :class:`~repro.core.instance.Instance`.

    The serving process :meth:`create`\\ s the ring, writes each decoded
    snapshot exactly once, and is the only writer; worker processes
    :meth:`attach` and rebuild read-only ``np.frombuffer`` views over
    the same pages, so a solve request crossing the worker pipe shrinks
    to ``(slot, generation, n)``.  The generation counter is the
    recycling guard: the owner bumps it on every (re)write, a reader
    passes the generation it was promised, and :meth:`read` returns
    ``None`` on any mismatch instead of views over foreign data.  The
    owner's allocation protocol (pinning slots while requests are in
    flight) makes a mismatch unreachable in normal operation; the check
    turns accounting bugs and ring restarts into an explicit
    stale-segment signal rather than silent corruption.

    Lifecycle: the creating process unlinks the segment in
    :meth:`close`; attached readers only unmap.  Readers detach from
    their resource tracker so a worker exiting never unlinks the name
    out from under the owner.
    """

    def __init__(
        self, shm: Any, slots: int, slot_bytes: int, *, owner: bool
    ) -> None:
        self._shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._owner = owner

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "SnapshotRing":
        """Allocate a fresh ring (the caller becomes the owner)."""
        from multiprocessing import shared_memory

        if slots <= 0:
            raise ValueError("slots must be positive")
        if slot_bytes <= _SLOT_HEADER:
            raise ValueError(f"slot_bytes must exceed {_SLOT_HEADER}")
        if slot_bytes % 8:
            raise ValueError("slot_bytes must be 8-byte aligned")
        name = f"repro-ring-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=slots * slot_bytes
        )
        return cls(shm, slots, slot_bytes, owner=True)

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "SnapshotRing":
        """Map an existing ring read-mostly (worker side)."""
        return cls(_attach_untracked(name), slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @staticmethod
    def needed_bytes(n: int) -> int:
        """Slot bytes an ``n``-job snapshot requires (header included)."""
        return _SLOT_HEADER + 8 * _ARRAYS_PER_SLOT * n

    def fits(self, n: int) -> bool:
        """Whether an ``n``-job snapshot fits in one slot."""
        return self.needed_bytes(n) <= self.slot_bytes

    def _offsets(self, slot: int, n: int) -> tuple[int, int, int]:
        base = slot * self.slot_bytes + _SLOT_HEADER
        return base, base + 8 * n, base + 16 * n

    def write(
        self,
        slot: int,
        generation: int,
        sizes: np.ndarray,
        costs: np.ndarray,
        initial: np.ndarray,
    ) -> None:
        """Owner-only: publish one snapshot into ``slot``.

        The caller guarantees no reader holds the slot (its allocation
        protocol); the generation lands with the data, so a reader
        presenting a stale generation can never validate against the
        new contents.
        """
        if not self._owner:
            raise RuntimeError("only the ring owner writes slots")
        n = int(sizes.shape[0])
        if not self.fits(n):
            raise ValueError(f"{n}-job snapshot exceeds slot_bytes")
        buf = self._shm.buf
        o_sizes, o_costs, o_initial = self._offsets(slot, n)
        np.frombuffer(buf, dtype="<f8", count=n, offset=o_sizes)[:] = sizes
        np.frombuffer(buf, dtype="<f8", count=n, offset=o_costs)[:] = costs
        np.frombuffer(buf, dtype="<i8", count=n, offset=o_initial)[:] = initial
        struct.pack_into("<QQ", buf, slot * self.slot_bytes, generation, n)

    def read(
        self, slot: int, generation: int, n: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Read-only views of ``slot``, or ``None`` if it was recycled.

        The views alias the shared pages — zero copies.  They stay
        valid for as long as the owner keeps the slot's generation (the
        owner pins slots referenced by in-flight work and by worker
        engines' retained snapshots).
        """
        if not (0 <= slot < self.slots):
            return None
        header = struct.unpack_from("<QQ", self._shm.buf, slot * self.slot_bytes)
        if header[0] != generation or header[1] != n:
            return None
        buf = self._shm.buf
        o_sizes, o_costs, o_initial = self._offsets(slot, n)
        sizes = np.frombuffer(buf, dtype="<f8", count=n, offset=o_sizes)
        costs = np.frombuffer(buf, dtype="<f8", count=n, offset=o_costs)
        initial = np.frombuffer(buf, dtype="<i8", count=n, offset=o_initial)
        for arr in (sizes, costs, initial):
            arr.setflags(write=False)
        return sizes, costs, initial

    def close(self) -> None:
        """Unmap (and, for the owner, unlink) the segment.

        Safe to call twice.  A reader that still exports live views
        (a worker's engine retaining its last snapshot) keeps its
        mapping until process exit — unmapping is best-effort.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # live frombuffer views keep the map alive
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ----------------------------------------------------------------------
# Persistent workers: long-lived processes with addressable state
# ----------------------------------------------------------------------
_OK = b"\x00"
_ERR = b"\x01"


def spawn_piped_process(target, *args, daemon: bool = True):
    """Start a ``spawn``-context process wired to a duplex pipe.

    ``target(child_conn, *args)`` runs in the child; the parent gets
    ``(process, parent_conn)``.  The child's end is closed in the
    parent so EOF propagates when the child exits — the idiom both
    :class:`PersistentWorkerPool` and the sharded-router control plane
    build their pipe protocols on.  ``spawn`` (never fork): forking a
    process that already runs an asyncio loop plus solver threads is
    undefined behavior.
    """
    ctx = multiprocessing.get_context("spawn")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=target, args=(child, *args), daemon=daemon)
    proc.start()
    child.close()
    return proc, parent


def _persistent_worker_loop(conn, handler, initializer, initargs) -> None:
    """Worker-process main: init once, then serve requests until EOF.

    The reply wire format is one status byte (0 = ok payload follows,
    1 = utf-8 error text follows) so a handler bug surfaces as a
    :class:`RuntimeError` in the parent instead of a hung pipe.
    """
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # report init failure, then exit
        try:
            conn.send_bytes(_ERR + f"{type(exc).__name__}: {exc}".encode())
        finally:
            conn.close()
        return
    conn.send_bytes(_OK)  # ready handshake
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if not payload:  # empty request = orderly shutdown
            break
        try:
            reply = handler(payload)
        except BaseException as exc:
            conn.send_bytes(_ERR + f"{type(exc).__name__}: {exc}".encode())
            continue
        conn.send_bytes(_OK + reply)
    conn.close()


class PersistentWorkerPool:
    """N long-lived worker processes, each owning process-local state.

    :class:`~concurrent.futures.ProcessPoolExecutor` (and
    :func:`run_sweep` over it) treats workers as interchangeable —
    right for stateless sweeps, wrong for stateful servers: the service
    layer's multi-process shard executor needs every request for one
    shard to land in the *same* process, where that shard's warm
    :class:`~repro.core.engine.RebalanceEngine` lives.  This pool keeps
    the workers addressable: the caller picks the worker index, so
    affinity is the caller's (deterministic) routing function.

    Messages are raw ``bytes`` both ways (``Connection.send_bytes`` —
    no pickling; the service marshals arrays with its binary wire
    codec).  ``handler`` must be a picklable module-level function
    ``bytes -> bytes``; ``initializer(*initargs)`` runs once per worker
    before the ready handshake.  Workers are started with the ``spawn``
    context: forking a process that already runs an asyncio loop plus
    solver threads is undefined behavior, and spawn keeps the workers'
    import state explicit.

    Concurrency contract: ``request`` is not thread-safe; exactly one
    thread drives the pool (the service's single solve-executor
    thread).  A worker that dies mid-request surfaces as
    :class:`RuntimeError` from ``request``.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        workers: int,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        ring: SnapshotRing | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        # The pool owns the optional snapshot ring's lifetime: workers
        # attach to it during init (the ready handshake covers attach
        # failures), and close() unlinks it only after every worker has
        # exited — including the construction-failure path below.
        self._ring = ring
        self._procs = []
        self._conns = []
        for _ in range(workers):
            proc, parent = spawn_piped_process(
                _persistent_worker_loop, handler, initializer, initargs
            )
            self._procs.append(proc)
            self._conns.append(parent)
        for index, conn in enumerate(self._conns):
            try:
                ready = conn.recv_bytes()
            except (EOFError, OSError) as exc:
                self.close()
                raise RuntimeError(f"worker {index} died during startup") from exc
            if ready[:1] == _ERR:
                message = ready[1:].decode("utf-8", "replace")
                self.close()
                raise RuntimeError(f"worker {index} failed to initialize: {message}")

    @property
    def workers(self) -> int:
        return len(self._procs)

    def request(self, assignments: dict[int, bytes]) -> dict[int, bytes]:
        """One round: send each worker its payload, gather every reply.

        ``assignments`` maps worker index -> request bytes.  All sends
        complete before the first receive, so the addressed workers run
        concurrently; the reply dict has the same keys.

        Every addressed worker's reply is drained before any error is
        raised — raising on the first ``_ERR`` would leave the other
        workers' replies sitting in their pipes, and the next round
        would read those stale bytes as its own answers.  A dead worker
        still raises (its pipe has nothing left to drain), reported
        after the remaining replies are consumed.
        """
        for index, payload in assignments.items():
            if not payload:
                raise ValueError("empty payloads are reserved for shutdown")
            self._conns[index].send_bytes(payload)
        replies: dict[int, bytes] = {}
        dead: list[int] = []
        failed: list[tuple[int, str]] = []
        for index in assignments:
            try:
                reply = self._conns[index].recv_bytes()
            except (EOFError, OSError):
                dead.append(index)
                continue
            if reply[:1] == _ERR:
                failed.append((index, reply[1:].decode("utf-8", "replace")))
            else:
                replies[index] = reply[1:]
        if dead:
            raise RuntimeError(f"worker {dead[0]} died mid-request")
        if failed:
            index, message = failed[0]
            raise RuntimeError(f"worker {index} failed: {message}")
        return replies

    def broadcast(self, payload: bytes) -> dict[int, bytes]:
        """``request`` to every worker at once (stats, resets)."""
        return self.request({index: payload for index in range(self.workers)})

    def close(self, timeout: float = 5.0) -> None:
        """Orderly shutdown: EOF every pipe, join, terminate stragglers."""
        for conn in self._conns:
            try:
                conn.send_bytes(b"")
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout)
        self._procs = []
        self._conns = []
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def run_until(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    accept: Callable[[Any], bool],
    *,
    workers: int | None = None,
    chunk: int | None = None,
) -> tuple[int, Any] | None:
    """Ordered early-exit scan: first item whose result is accepted.

    Evaluates ``items`` in chunks of ``chunk`` (default: one chunk per
    worker batch), in input order within and across chunks, and returns
    ``(index, result)`` for the smallest index whose result satisfies
    ``accept`` — the same pair a serial left-to-right scan would return
    — or ``None`` when nothing is accepted.  With ``workers <= 1`` the
    scan degrades to exactly that serial loop, evaluating nothing past
    the hit.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1:
        for idx, item in enumerate(items):
            result = fn(item)
            if accept(result):
                return idx, result
        return None

    if chunk is None:
        chunk = 2 * workers
    with_tel = telemetry.enabled()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for start in range(0, len(items), chunk):
            batch = items[start : start + chunk]
            payloads = [
                (fn, start + j, item, with_tel) for j, item in enumerate(batch)
            ]
            outs: list[Any] = [None] * len(batch)
            for idx, out, tel in pool.map(_call_collected, payloads):
                outs[idx - start] = out
                _merge_worker_telemetry(tel)
            for j, result in enumerate(outs):
                if accept(result):
                    return start + j, result
    return None
