"""Deterministic process-pool sweep runner.

The experiments, benchmarks, and outer guess searches in this repo are
all *embarrassingly parallel sweeps*: apply one picklable function to a
list of independent items.  This module gives them a single fan-out API
with the three properties the reproduction needs:

* **Deterministic ordering** — results come back indexed by input
  position regardless of worker scheduling, so a parallel run is
  byte-identical to a serial one.
* **Telemetry merge** — when the parent has a telemetry collector
  installed, each worker collects its own spans/counters and the parent
  folds them back in (:meth:`repro.telemetry.Collector.merge`), so
  ``--profile`` still accounts for work done in workers.
* **Serial fallback** — ``workers <= 1`` (or a single item) runs inline
  on the calling thread with zero pool overhead, which keeps the
  parallel path an opt-in strictly-faster variant of the serial one.

:func:`run_until` layers an early-exit scan on top: items are evaluated
in chunks, in order, and the first item (by input position) whose
result satisfies the predicate wins.  Later items may be evaluated
speculatively — wasted work, never a different answer — which is
exactly the contract the PTAS outer guess search needs to parallelize
while returning the identical threshold to the serial scan.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from . import telemetry

__all__ = [
    "PersistentWorkerPool",
    "default_workers",
    "run_sweep",
    "run_until",
]


def default_workers() -> int:
    """Worker count to use when the caller says "all": the CPU count."""
    return max(1, os.cpu_count() or 1)


def _call_collected(payload: tuple) -> tuple[int, Any, dict | None]:
    """Worker-side shim: run one item, optionally under a collector."""
    fn, idx, item, with_telemetry = payload
    if with_telemetry:
        with telemetry.collect() as collector:
            out = fn(item)
        return idx, out, collector.as_dict()
    return idx, fn(item), None


def _merge_worker_telemetry(data: dict | None) -> None:
    collector = telemetry.current()
    if collector is not None and data is not None:
        collector.merge(data)


def run_sweep(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: int | None = None,
    chunksize: int = 1,
    executor: str = "process",
) -> list[Any]:
    """Apply ``fn`` to every item, returning results in input order.

    ``fn`` and the items must be picklable when ``workers > 1`` with
    the default ``executor="process"`` (``fn`` is typically a
    module-level function taking one payload tuple).  ``workers=None``
    means :func:`default_workers`.

    ``executor="thread"`` fans out over a thread pool instead: nothing
    is pickled, so stateful unpicklable objects (e.g. the service
    layer's per-shard :class:`~repro.core.engine.RebalanceEngine`
    pools) can be mutated in place by the workers.  Threads share the
    GIL, so this pays off for numpy-heavy work and for keeping an
    asyncio event loop responsive, not for pure-Python loops.
    Telemetry merging works identically in both modes (each worker
    thread gets its own thread-local collector).
    """
    if executor not in ("process", "thread"):
        raise ValueError(f"unknown executor {executor!r}")
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    with_tel = telemetry.enabled()
    payloads = [(fn, idx, item, with_tel) for idx, item in enumerate(items)]
    results: list[Any] = [None] * len(items)
    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=min(workers, len(items))) as pool:
        for idx, out, tel in pool.map(
            _call_collected, payloads, chunksize=chunksize
        ):
            results[idx] = out
            _merge_worker_telemetry(tel)
    return results


# ----------------------------------------------------------------------
# Persistent workers: long-lived processes with addressable state
# ----------------------------------------------------------------------
_OK = b"\x00"
_ERR = b"\x01"


def _persistent_worker_loop(conn, handler, initializer, initargs) -> None:
    """Worker-process main: init once, then serve requests until EOF.

    The reply wire format is one status byte (0 = ok payload follows,
    1 = utf-8 error text follows) so a handler bug surfaces as a
    :class:`RuntimeError` in the parent instead of a hung pipe.
    """
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # report init failure, then exit
        try:
            conn.send_bytes(_ERR + f"{type(exc).__name__}: {exc}".encode())
        finally:
            conn.close()
        return
    conn.send_bytes(_OK)  # ready handshake
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if not payload:  # empty request = orderly shutdown
            break
        try:
            reply = handler(payload)
        except BaseException as exc:
            conn.send_bytes(_ERR + f"{type(exc).__name__}: {exc}".encode())
            continue
        conn.send_bytes(_OK + reply)
    conn.close()


class PersistentWorkerPool:
    """N long-lived worker processes, each owning process-local state.

    :class:`~concurrent.futures.ProcessPoolExecutor` (and
    :func:`run_sweep` over it) treats workers as interchangeable —
    right for stateless sweeps, wrong for stateful servers: the service
    layer's multi-process shard executor needs every request for one
    shard to land in the *same* process, where that shard's warm
    :class:`~repro.core.engine.RebalanceEngine` lives.  This pool keeps
    the workers addressable: the caller picks the worker index, so
    affinity is the caller's (deterministic) routing function.

    Messages are raw ``bytes`` both ways (``Connection.send_bytes`` —
    no pickling; the service marshals arrays with its binary wire
    codec).  ``handler`` must be a picklable module-level function
    ``bytes -> bytes``; ``initializer(*initargs)`` runs once per worker
    before the ready handshake.  Workers are started with the ``spawn``
    context: forking a process that already runs an asyncio loop plus
    solver threads is undefined behavior, and spawn keeps the workers'
    import state explicit.

    Concurrency contract: ``request`` is not thread-safe; exactly one
    thread drives the pool (the service's single solve-executor
    thread).  A worker that dies mid-request surfaces as
    :class:`RuntimeError` from ``request``.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        workers: int,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        ctx = multiprocessing.get_context("spawn")
        self._procs = []
        self._conns = []
        for _ in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_persistent_worker_loop,
                args=(child, handler, initializer, initargs),
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        for index, conn in enumerate(self._conns):
            try:
                ready = conn.recv_bytes()
            except (EOFError, OSError) as exc:
                self.close()
                raise RuntimeError(f"worker {index} died during startup") from exc
            if ready[:1] == _ERR:
                message = ready[1:].decode("utf-8", "replace")
                self.close()
                raise RuntimeError(f"worker {index} failed to initialize: {message}")

    @property
    def workers(self) -> int:
        return len(self._procs)

    def request(self, assignments: dict[int, bytes]) -> dict[int, bytes]:
        """One round: send each worker its payload, gather every reply.

        ``assignments`` maps worker index -> request bytes.  All sends
        complete before the first receive, so the addressed workers run
        concurrently; the reply dict has the same keys.
        """
        for index, payload in assignments.items():
            if not payload:
                raise ValueError("empty payloads are reserved for shutdown")
            self._conns[index].send_bytes(payload)
        replies: dict[int, bytes] = {}
        for index in assignments:
            try:
                reply = self._conns[index].recv_bytes()
            except (EOFError, OSError) as exc:
                raise RuntimeError(f"worker {index} died mid-request") from exc
            if reply[:1] == _ERR:
                raise RuntimeError(
                    f"worker {index} failed: {reply[1:].decode('utf-8', 'replace')}"
                )
            replies[index] = reply[1:]
        return replies

    def broadcast(self, payload: bytes) -> dict[int, bytes]:
        """``request`` to every worker at once (stats, resets)."""
        return self.request({index: payload for index in range(self.workers)})

    def close(self, timeout: float = 5.0) -> None:
        """Orderly shutdown: EOF every pipe, join, terminate stragglers."""
        for conn in self._conns:
            try:
                conn.send_bytes(b"")
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout)
        self._procs = []
        self._conns = []

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def run_until(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    accept: Callable[[Any], bool],
    *,
    workers: int | None = None,
    chunk: int | None = None,
) -> tuple[int, Any] | None:
    """Ordered early-exit scan: first item whose result is accepted.

    Evaluates ``items`` in chunks of ``chunk`` (default: one chunk per
    worker batch), in input order within and across chunks, and returns
    ``(index, result)`` for the smallest index whose result satisfies
    ``accept`` — the same pair a serial left-to-right scan would return
    — or ``None`` when nothing is accepted.  With ``workers <= 1`` the
    scan degrades to exactly that serial loop, evaluating nothing past
    the hit.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1:
        for idx, item in enumerate(items):
            result = fn(item)
            if accept(result):
                return idx, result
        return None

    if chunk is None:
        chunk = 2 * workers
    with_tel = telemetry.enabled()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for start in range(0, len(items), chunk):
            batch = items[start : start + chunk]
            payloads = [
                (fn, start + j, item, with_tel) for j, item in enumerate(batch)
            ]
            outs: list[Any] = [None] * len(batch)
            for idx, out, tel in pool.map(_call_collected, payloads):
                outs[idx - start] = out
                _merge_worker_telemetry(tel)
            for j, result in enumerate(outs):
                if accept(result):
                    return start + j, result
    return None
