"""Deterministic process-pool sweep runner.

The experiments, benchmarks, and outer guess searches in this repo are
all *embarrassingly parallel sweeps*: apply one picklable function to a
list of independent items.  This module gives them a single fan-out API
with the three properties the reproduction needs:

* **Deterministic ordering** — results come back indexed by input
  position regardless of worker scheduling, so a parallel run is
  byte-identical to a serial one.
* **Telemetry merge** — when the parent has a telemetry collector
  installed, each worker collects its own spans/counters and the parent
  folds them back in (:meth:`repro.telemetry.Collector.merge`), so
  ``--profile`` still accounts for work done in workers.
* **Serial fallback** — ``workers <= 1`` (or a single item) runs inline
  on the calling thread with zero pool overhead, which keeps the
  parallel path an opt-in strictly-faster variant of the serial one.

:func:`run_until` layers an early-exit scan on top: items are evaluated
in chunks, in order, and the first item (by input position) whose
result satisfies the predicate wins.  Later items may be evaluated
speculatively — wasted work, never a different answer — which is
exactly the contract the PTAS outer guess search needs to parallelize
while returning the identical threshold to the serial scan.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from . import telemetry

__all__ = ["default_workers", "run_sweep", "run_until"]


def default_workers() -> int:
    """Worker count to use when the caller says "all": the CPU count."""
    return max(1, os.cpu_count() or 1)


def _call_collected(payload: tuple) -> tuple[int, Any, dict | None]:
    """Worker-side shim: run one item, optionally under a collector."""
    fn, idx, item, with_telemetry = payload
    if with_telemetry:
        with telemetry.collect() as collector:
            out = fn(item)
        return idx, out, collector.as_dict()
    return idx, fn(item), None


def _merge_worker_telemetry(data: dict | None) -> None:
    collector = telemetry.current()
    if collector is not None and data is not None:
        collector.merge(data)


def run_sweep(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: int | None = None,
    chunksize: int = 1,
    executor: str = "process",
) -> list[Any]:
    """Apply ``fn`` to every item, returning results in input order.

    ``fn`` and the items must be picklable when ``workers > 1`` with
    the default ``executor="process"`` (``fn`` is typically a
    module-level function taking one payload tuple).  ``workers=None``
    means :func:`default_workers`.

    ``executor="thread"`` fans out over a thread pool instead: nothing
    is pickled, so stateful unpicklable objects (e.g. the service
    layer's per-shard :class:`~repro.core.engine.RebalanceEngine`
    pools) can be mutated in place by the workers.  Threads share the
    GIL, so this pays off for numpy-heavy work and for keeping an
    asyncio event loop responsive, not for pure-Python loops.
    Telemetry merging works identically in both modes (each worker
    thread gets its own thread-local collector).
    """
    if executor not in ("process", "thread"):
        raise ValueError(f"unknown executor {executor!r}")
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    with_tel = telemetry.enabled()
    payloads = [(fn, idx, item, with_tel) for idx, item in enumerate(items)]
    results: list[Any] = [None] * len(items)
    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=min(workers, len(items))) as pool:
        for idx, out, tel in pool.map(
            _call_collected, payloads, chunksize=chunksize
        ):
            results[idx] = out
            _merge_worker_telemetry(tel)
    return results


def run_until(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    accept: Callable[[Any], bool],
    *,
    workers: int | None = None,
    chunk: int | None = None,
) -> tuple[int, Any] | None:
    """Ordered early-exit scan: first item whose result is accepted.

    Evaluates ``items`` in chunks of ``chunk`` (default: one chunk per
    worker batch), in input order within and across chunks, and returns
    ``(index, result)`` for the smallest index whose result satisfies
    ``accept`` — the same pair a serial left-to-right scan would return
    — or ``None`` when nothing is accepted.  With ``workers <= 1`` the
    scan degrades to exactly that serial loop, evaluating nothing past
    the hit.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1:
        for idx, item in enumerate(items):
            result = fn(item)
            if accept(result):
                return idx, result
        return None

    if chunk is None:
        chunk = 2 * workers
    with_tel = telemetry.enabled()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for start in range(0, len(items), chunk):
            batch = items[start : start + chunk]
            payloads = [
                (fn, start + j, item, with_tel) for j, item in enumerate(batch)
            ]
            outs: list[Any] = [None] * len(batch)
            for idx, out, tel in pool.map(_call_collected, payloads):
                outs[idx - start] = out
                _merge_worker_telemetry(tel)
            for j, result in enumerate(outs):
                if accept(result):
                    return start + j, result
    return None
