"""The drift comparator: gate a fresh scenario run against its record.

Comparison is policy-driven (:class:`repro.scenarios.spec.DriftPolicy`):
exact metrics must match (floats within 1e-9 relative — the
byte-identity flags, error counts and deterministic ratios), banded
metrics must land within a multiplicative factor of the recorded value
(latency and goodput, which track host speed), declared table columns
must match cell for cell, and the *key set* of the metrics dict must
match exactly — a metric that appears or vanishes is schema drift, not
noise.

Every failure mode is a distinct :class:`DriftIssue` kind with a
distinct exception class, so CI output says *what* drifted and *how to
act on it* rather than dumping two JSON blobs:

============================  =========================================
kind / exception              meaning
============================  =========================================
``schema-version-mismatch``   record written by a different record
                              format — regenerate the record, don't
                              chase value diffs
``missing-metric``            recorded metric absent from the fresh
                              run — the runner stopped emitting it
``extra-metric``              fresh metric absent from the record —
                              re-record to adopt it
``exact-mismatch``            a deterministic field changed — a real
                              behavior change (or lost determinism)
``tolerance-exceeded``        a banded metric left its window — perf
                              regression or a noisy host
``table-mismatch``            a deterministic table cell changed
``table-shape``               columns/row-count changed — the
                              experiment's shape moved
============================  =========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from .spec import DriftPolicy

__all__ = [
    "DriftError",
    "DriftIssue",
    "DriftReport",
    "ExactMismatch",
    "ExtraMetric",
    "MissingMetric",
    "SchemaVersionMismatch",
    "TableMismatch",
    "ToleranceExceeded",
    "compare_records",
]

_REL_TOL = 1e-9
_ABS_TOL = 1e-12


class DriftError(Exception):
    """Base for typed drift failures (strict mode)."""


class SchemaVersionMismatch(DriftError):
    pass


class MissingMetric(DriftError):
    pass


class ExtraMetric(DriftError):
    pass


class ExactMismatch(DriftError):
    pass


class ToleranceExceeded(DriftError):
    pass


class TableMismatch(DriftError):
    pass


_KIND_TO_ERROR = {
    "schema-version-mismatch": SchemaVersionMismatch,
    "missing-metric": MissingMetric,
    "extra-metric": ExtraMetric,
    "exact-mismatch": ExactMismatch,
    "tolerance-exceeded": ToleranceExceeded,
    "table-mismatch": TableMismatch,
    "table-shape": TableMismatch,
}


@dataclass(frozen=True)
class DriftIssue:
    kind: str
    path: str
    message: str

    def error(self) -> DriftError:
        return _KIND_TO_ERROR[self.kind](f"[{self.path}] {self.message}")


@dataclass
class DriftReport:
    """All issues one record comparison produced."""

    scenario_id: str
    tier: str
    issues: list[DriftIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, kind: str, path: str, message: str) -> None:
        self.issues.append(DriftIssue(kind, path, message))

    def raise_first(self) -> None:
        """Strict mode: raise the typed error for the first issue."""
        if self.issues:
            raise self.issues[0].error()

    def render(self) -> str:
        if self.ok:
            return f"{self.scenario_id} [{self.tier}]: no drift"
        lines = [
            f"{self.scenario_id} [{self.tier}]: "
            f"{len(self.issues)} drift issue(s)"
        ]
        for issue in self.issues:
            lines.append(f"  - {issue.kind} @ {issue.path}: {issue.message}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario_id,
            "tier": self.tier,
            "ok": self.ok,
            "issues": [
                {"kind": i.kind, "path": i.path, "message": i.message}
                for i in self.issues
            ],
        }


def _values_equal(recorded: Any, fresh: Any) -> bool:
    """Exact-field equality: numbers within 1e-9 relative, everything
    else by ``==``; ``None`` (serialized NaN/inf) only equals None."""
    if recorded is None or fresh is None:
        return recorded is None and fresh is None
    if isinstance(recorded, bool) or isinstance(fresh, bool):
        return recorded == fresh
    if isinstance(recorded, (int, float)) and isinstance(fresh, (int, float)):
        return math.isclose(
            float(recorded), float(fresh), rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        )
    return recorded == fresh


def _within_band(recorded: Any, fresh: Any, factor: float) -> bool:
    """Banded equality: within a multiplicative ``factor`` either way.

    Bands exist for strictly-positive rate/latency metrics; zero only
    matches zero, and non-numeric values fall back to exact equality.
    """
    if not isinstance(recorded, (int, float)) or isinstance(recorded, bool) \
            or not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
        return _values_equal(recorded, fresh)
    a, b = float(recorded), float(fresh)
    if a <= 0.0 or b <= 0.0:
        return a == b
    hi, lo = max(a, b), min(a, b)
    return hi / lo <= factor


def compare_records(
    recorded: dict,
    fresh: dict,
    policy: DriftPolicy,
    *,
    scenario_id: str = "?",
    tier: str = "?",
) -> DriftReport:
    """Compare a fresh record against the committed one.

    Returns a :class:`DriftReport`; callers wanting exceptions use
    ``report.raise_first()``.  A schema-version mismatch short-circuits
    — value diffs across formats are meaningless.
    """
    report = DriftReport(scenario_id=scenario_id, tier=tier)

    for side, rec in (("recorded", recorded), ("fresh", fresh)):
        schema = (rec.get("schema"), rec.get("schema_version"))
        if schema != (_expected_schema(), _expected_version()):
            report.add(
                "schema-version-mismatch", side,
                f"{side} record has schema {schema!r}, this tree writes "
                f"{(_expected_schema(), _expected_version())!r}; regenerate "
                "the record with 'reproduce --record' instead of comparing "
                "across formats",
            )
            return report

    rec_metrics = recorded.get("metrics") or {}
    new_metrics = fresh.get("metrics") or {}

    for key in sorted(set(rec_metrics) - set(new_metrics)):
        report.add(
            "missing-metric", f"metrics.{key}",
            f"recorded metric {key!r} is absent from the fresh run; the "
            "runner stopped emitting it — fix the runner or re-record",
        )
    for key in sorted(set(new_metrics) - set(rec_metrics)):
        report.add(
            "extra-metric", f"metrics.{key}",
            f"fresh run emits metric {key!r} the record lacks; "
            "re-record to adopt the new metric",
        )

    shared = set(rec_metrics) & set(new_metrics)
    for key in sorted(set(policy.exact) & shared):
        if not _values_equal(rec_metrics[key], new_metrics[key]):
            report.add(
                "exact-mismatch", f"metrics.{key}",
                f"recorded {rec_metrics[key]!r} != fresh "
                f"{new_metrics[key]!r} (exact field — a deterministic "
                "behavior changed)",
            )
    for key, factor in sorted(policy.band.items()):
        if key not in shared:
            continue
        if not _within_band(rec_metrics[key], new_metrics[key], factor):
            report.add(
                "tolerance-exceeded", f"metrics.{key}",
                f"fresh {new_metrics[key]!r} is outside {factor:g}x of "
                f"recorded {rec_metrics[key]!r}",
            )

    _compare_tables(recorded.get("table"), fresh.get("table"), policy, report)
    return report


def _compare_tables(rec_table, new_table, policy: DriftPolicy,
                    report: DriftReport) -> None:
    if not policy.table_exact_columns:
        return
    if (rec_table is None) != (new_table is None):
        report.add(
            "table-shape", "table",
            "one side has a table and the other does not",
        )
        return
    if rec_table is None:
        return
    rec_cols, new_cols = list(rec_table["columns"]), list(new_table["columns"])
    if rec_cols != new_cols:
        report.add(
            "table-shape", "table.columns",
            f"columns changed: recorded {rec_cols} vs fresh {new_cols}",
        )
        return
    rec_rows, new_rows = rec_table["rows"], new_table["rows"]
    if len(rec_rows) != len(new_rows):
        report.add(
            "table-shape", "table.rows",
            f"row count changed: recorded {len(rec_rows)} vs fresh "
            f"{len(new_rows)}",
        )
        return
    for column in policy.table_exact_columns:
        if column not in rec_cols:
            report.add(
                "table-shape", f"table.columns.{column}",
                f"drift policy names column {column!r} the table lacks",
            )
            continue
        idx = rec_cols.index(column)
        for row_no, (rec_row, new_row) in enumerate(zip(rec_rows, new_rows)):
            if not _values_equal(rec_row[idx], new_row[idx]):
                report.add(
                    "table-mismatch",
                    f"table[{row_no}].{column}",
                    f"recorded {rec_row[idx]!r} != fresh {new_row[idx]!r}",
                )


def _expected_schema() -> str:
    from .records import SCHEMA

    return SCHEMA


def _expected_version() -> int:
    from .records import SCHEMA_VERSION

    return SCHEMA_VERSION
