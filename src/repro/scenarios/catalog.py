"""The ScenarioCatalog: every reproducible result as a declarative config.

One :class:`~repro.scenarios.spec.Scenario` per experiment (E1–E18) and
ablation (A1–A3), each composing the three axes — workload (what the
instances are), traffic (how load evolves and arrives), transport (what
decides and how bytes move) — with tier-resolved parameters, machine-
readable acceptance checks and a drift policy.  ``python -m repro
reproduce`` is a pure interpreter over this table: adding a scenario
here (a vector-load family, a stochastic-size family, a router HA
drill) is the *entire* cost of making it reproducible, checkable and
CI-gated.

Conventions:

* ``table`` names the analysis-registry experiment whose
  :class:`ExperimentReport` the scenario regenerates; ``bench`` names a
  :data:`~repro.scenarios.benches.BENCH_RUNNERS` acceptance runner.
* The ``ci`` tier is scaled down but asserts the *same invariants*;
  ``full`` is the canonical scale written up in EXPERIMENTS.md.
* Drift ``exact`` fields are deterministic (seeded math, byte-identity
  flags, error counters); ``band`` fields track host speed and get a
  multiplicative window.  Table timing columns never gate.
"""

from __future__ import annotations

from .spec import (
    Check,
    DriftPolicy,
    Scenario,
    TrafficAxis,
    TransportAxis,
    WorkloadAxis,
)

__all__ = ["CATALOG", "get_scenario", "scenario_ids"]


def _exact_table(*columns: str, exact=(), band=None) -> DriftPolicy:
    return DriftPolicy(
        exact=("table_rows",) + tuple(exact),
        band=dict(band or {}),
        table_exact_columns=columns,
    )


_SERVICE_BENCH_TABLE_TIERS = ("full",)

_SCENARIOS = (
    # ------------------------------------------------------------------
    # Theory tables: seeded math, fully deterministic, drift-gated cell
    # by cell.
    # ------------------------------------------------------------------
    Scenario(
        scenario_id="E1",
        title="GREEDY approximation ratio (Theorem 1: tight 2 - 1/m)",
        workload=WorkloadAxis(family="tightness+random", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="greedy", backend="kernel"),
        table="E1",
        acceptance=(Check("table.all:within", "truthy"),),
        drift=_exact_table("family", "m", "measured ratio", "bound 2-1/m",
                           "within"),
        description="Tight family meets 2-1/m; random families stay under.",
    ),
    Scenario(
        scenario_id="E2",
        title="(M-)PARTITION approximation ratio (Theorems 2-3: tight 1.5)",
        workload=WorkloadAxis(family="tightness+random", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="partition", backend="kernel"),
        table="E2",
        acceptance=(Check("table.all:within", "truthy"),),
        drift=_exact_table("family", "algorithm", "worst ratio", "bound",
                           "within"),
    ),
    Scenario(
        scenario_id="E3",
        title="Runtime scaling (Theorems 1/3: O(n log n))",
        workload=WorkloadAxis(family="random", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="greedy+m-partition"),
        table="E3",
        drift=_exact_table("algorithm", "n range"),
        description="Timing columns (slope, time@max-n) are informational.",
    ),
    Scenario(
        scenario_id="E4",
        title="PTAS ratio vs eps (Theorem 4)",
        workload=WorkloadAxis(family="random", costs="random"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="ptas", backend="kernel"),
        table="E4",
        acceptance=(Check("table.all:budget ok", "truthy"),),
        drift=_exact_table("eps", "bound 1+eps", "mean ratio", "worst ratio",
                           "budget ok"),
    ),
    Scenario(
        scenario_id="E5",
        title="Weighted rebalancing: Section 3.2 vs Shmoys-Tardos LP",
        workload=WorkloadAxis(family="random", costs="random"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="cost-partition+lp"),
        table="E5",
        acceptance=(Check("table.all:budget ok", "truthy"),),
        drift=_exact_table("algorithm", "mean ratio", "worst ratio",
                           "mean cost used", "budget ok"),
    ),
    Scenario(
        scenario_id="E6",
        title="Web-cluster simulation: bounded-migration policies",
        workload=WorkloadAxis(family="websim-cluster", num_sites=60,
                              num_servers=6, k=3, seed=5, sizes="zipf"),
        traffic=TrafficAxis(kind="diurnal+flash", epochs=40),
        transport=TransportAxis(solver="policy-suite", engine="scratch"),
        table="E6",
        params={"table": {"traffic": "diurnal+flash"}},
        drift=_exact_table("policy", "mean makespan", "peak makespan",
                           "mean imbalance", "migrations"),
    ),
    Scenario(
        scenario_id="E7",
        title="Move minimization (Theorem 5: inapproximable; gadget gap)",
        workload=WorkloadAxis(family="gadget", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="exact+greedy"),
        table="E7",
        acceptance=(Check("table.all:greedy sound", "truthy"),),
        drift=_exact_table("gadget", "exact achievable", "exact moves",
                           "greedy achievable", "greedy sound"),
    ),
    Scenario(
        scenario_id="E8",
        title="Makespan vs move budget k (planted-imbalance family)",
        workload=WorkloadAxis(family="planted", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="greedy+m-partition+exact"),
        table="E8",
        drift=_exact_table("k", "lower bound", "greedy", "m-partition",
                           "exact/planted"),
        description="NaN cells (exact beyond reach) serialize as null and "
                    "must stay null.",
    ),
    Scenario(
        scenario_id="E9",
        title="Head-to-head on random families (ratio vs exact)",
        workload=WorkloadAxis(family="random", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="suite"),
        table="E9",
        drift=_exact_table("algorithm", "mean ratio", "p95 ratio",
                           "worst ratio", "mean moves"),
    ),
    Scenario(
        scenario_id="E10",
        title="Hardness gadgets (Theorems 6-7, Corollary 1)",
        workload=WorkloadAxis(family="gadget", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="exact"),
        table="E10",
        acceptance=(Check("table.all:consistent", "truthy"),),
        drift=_exact_table("gadget", "instance", "has matching", "observed",
                           "consistent"),
    ),
    Scenario(
        scenario_id="E11",
        title="Theorem bounds at oracle scale (n up to 50k)",
        workload=WorkloadAxis(family="unit+two-point", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="suite", backend="kernel"),
        table="E11",
        acceptance=(Check("table.all:certified", "truthy"),),
        drift=_exact_table("oracle", "n", "m", "algorithm",
                           "ratio vs oracle", "bound", "certified"),
    ),
    Scenario(
        scenario_id="E12",
        title="Warm-start engine vs from-scratch M-PARTITION",
        workload=WorkloadAxis(family="websim-cluster", num_sites=2_000,
                              num_servers=32, k=8, seed=12, sizes="zipf"),
        traffic=TrafficAxis(kind="diurnal+flash", epochs=50),
        transport=TransportAxis(engine="both"),
        table="E12",
        acceptance=(Check("table.all:identical", "truthy"),),
        drift=_exact_table("traffic", "policy", "tables reused",
                           "buckets patched", "cache hits", "identical"),
        description="identical=True is the engine's byte-identity contract.",
    ),
    # ------------------------------------------------------------------
    # Systems scenarios: table (full tier) + acceptance bench (both
    # tiers).  The bench params at ci tier are exactly what the old
    # per-script CI ran.
    # ------------------------------------------------------------------
    Scenario(
        scenario_id="E13",
        title="Vectorized DP kernels vs reference paths",
        workload=WorkloadAxis(family="random", costs="random"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(backend="both"),
        table="E13",
        table_tiers=_SERVICE_BENCH_TABLE_TIERS,
        bench="e13-kernels",
        bench_json="BENCH_e13.json",
        acceptance=(
            Check("solutions_identical", "truthy"),
            Check("e4_ptas_speedup", ">=", 3.0),
            Check("e5_cost_partition_speedup", ">=", 3.0),
        ),
        drift=DriftPolicy(
            exact=("solutions_identical",),
            band={"e4_ptas_speedup": 3.0, "e5_cost_partition_speedup": 3.0},
            table_exact_columns=("case", "backend", "identical"),
        ),
    ),
    Scenario(
        scenario_id="E14",
        title="Serving the solver: batched asyncio service vs naive",
        workload=WorkloadAxis(family="calibrated", calibration="service",
                              sizes="drifting"),
        traffic=TrafficAxis(kind="drift", arrival="open-loop"),
        transport=TransportAxis(wire="v1", executor="thread"),
        table="E14",
        table_tiers=_SERVICE_BENCH_TABLE_TIERS,
        bench="e14-service",
        bench_json="BENCH_e14.json",
        acceptance=(
            Check("goodput_ratio", ">=", 3.0),
            Check("batched_p99_le_naive", "truthy"),
            Check("errors_total", "==", 0),
            Check("accounted_ok", "truthy"),
            Check("alive_all", "truthy"),
            Check("overload_naive_rejected", ">", 0),
            Check("overload_queues_drained", "truthy"),
        ),
        drift=DriftPolicy(
            exact=("errors_total", "accounted_ok", "alive_all",
                   "batched_p99_le_naive", "overload_queues_drained"),
            # goodput_ratio divides by the *collapsed* naive leg, which
            # is chaotic at overload -- the acceptance floor is the
            # invariant, so it stays informational here.
            table_exact_columns=("mode", "alive"),
        ),
    ),
    Scenario(
        scenario_id="E15",
        title="v2 binary wire + delta snapshots vs v1 JSON",
        workload=WorkloadAxis(family="calibrated", calibration="wire",
                              sizes="drifting"),
        traffic=TrafficAxis(kind="drift", arrival="open-loop"),
        transport=TransportAxis(wire="both", executor="both"),
        table="E15",
        table_tiers=_SERVICE_BENCH_TABLE_TIERS,
        bench="e15-wire",
        bench_json="BENCH_e15.json",
        acceptance=(
            Check("v2_frame_smaller", "truthy"),
            Check("v2_full_smaller", "truthy"),
            Check("decode_bit_exact", "truthy"),
            Check("delta_reduction", ">=", 5.0),
            Check("goodput_ratio", ">=", 2.0),
            Check("optimized_p99_le_baseline", "truthy"),
            Check("optimized_deltas_sent", ">", 0),
            Check("errors_total", "==", 0),
            Check("accounted_ok", "truthy"),
            Check("alive_all", "truthy"),
            Check("optimized_executor_process", "truthy"),
            Check("queues_drained", "truthy"),
        ),
        drift=DriftPolicy(
            exact=("v2_frame_smaller", "v2_full_smaller", "decode_bit_exact",
                   "errors_total", "accounted_ok", "alive_all",
                   "optimized_executor_process", "queues_drained",
                   "optimized_p99_le_baseline"),
            # goodput_ratio's denominator is the v1 leg at overload
            # collapse (observed 45x..416x run to run) -- acceptance
            # floor only, not drift-banded.
            band={"binary_reduction": 1.5, "delta_reduction": 2.0},
            table_exact_columns=("transport", "alive"),
        ),
        description="decode_bit_exact is E15's byte-identity contract.",
    ),
    Scenario(
        scenario_id="E16",
        title="Zero-copy shm snapshot plane vs worker-pipe codec",
        workload=WorkloadAxis(family="calibrated", calibration="shm",
                              sizes="drifting"),
        traffic=TrafficAxis(kind="steady+drift", arrival="open-loop"),
        transport=TransportAxis(wire="v2+delta", executor="process+shm"),
        table="E16",
        table_tiers=_SERVICE_BENCH_TABLE_TIERS,
        bench="e16-shm",
        bench_json="BENCH_e16.json",
        params={"bench": {"load_factor": 0.12, "rate_step": 1.15,
                          "rate_leap": 1.3, "max_rounds": 8}},
        acceptance=(
            Check("ipc_flat_across_n", "truthy"),
            Check("ipc_single_shm_write", "truthy"),
            Check("found_differential_rate", "truthy"),
            Check("goodput_ratio", ">=", 5.0),
            Check("shm_sustained", "truthy"),
            Check("shm_ipc_below_tenth_of_inline", "truthy"),
            Check("errors_total", "==", 0),
            Check("accounted_ok", "truthy"),
            Check("alive_all", "truthy"),
            Check("queues_drained", "truthy"),
            Check("steady_p50_ms", "<", 1.0),
            Check("steady_clean", "truthy"),
        ),
        drift=DriftPolicy(
            exact=("ipc_flat_across_n", "ipc_single_shm_write",
                   "found_differential_rate", "steady_clean",
                   "errors_total", "accounted_ok", "alive_all",
                   "queues_drained", "shm_sustained",
                   "shm_ipc_below_tenth_of_inline"),
            # goodput_ratio comes from the hunted collapse window
            # (historically 5x..80x) -- acceptance floor only.
            band={"steady_p50_ms": 4.0},
            table_exact_columns=("transport", "alive"),
        ),
    ),
    Scenario(
        scenario_id="E17",
        title="Cluster tier: scale-out, kill -9 failover, router "
              "trajectory transparency",
        workload=WorkloadAxis(family="calibrated", calibration="service",
                              sizes="drifting"),
        traffic=TrafficAxis(kind="diurnal+flash", arrival="open-loop",
                            failure="kill9@midrun"),
        transport=TransportAxis(wire="v2+delta", executor="process",
                                router_backends=2),
        table="E17",
        table_tiers=_SERVICE_BENCH_TABLE_TIERS,
        bench="e17-cluster",
        bench_json="BENCH_e17.json",
        acceptance=(
            Check("trajectory_identical", "truthy"),
            Check("scaleout_found", "truthy"),
            Check("scaleout_ratio", ">=", 1.8),
            Check("failover_errors", "==", 0),
            Check("failover_deaths", ">=", 1),
            Check("failover_p99_bounded", "truthy"),
            Check("failover_completed", ">", 0),
        ),
        drift=DriftPolicy(
            exact=("trajectory_identical", "scaleout_found",
                   "failover_errors", "failover_p99_bounded"),
            band={"scaleout_ratio": 2.0},
            table_exact_columns=("topology", "alive"),
        ),
        description="trajectory_identical is E17's byte-identity contract; "
                    "the failure axis is the router's kill -9 path.",
    ),
    Scenario(
        scenario_id="E18",
        title="Million-site steady state: O(churn) decides through the "
              "sharded cluster",
        workload=WorkloadAxis(family="zipf-churn", num_servers=64, k=512,
                              seed=18, sizes="zipf"),
        traffic=TrafficAxis(kind="paced-churn", arrival="paced", epochs=24),
        transport=TransportAxis(engine="incremental", wire="v2+delta",
                                executor="process", router_backends=3),
        bench="e18-scale",
        bench_json="BENCH_e18.json",
        params={"bench": {"backends": 3, "shards": 6, "servers": 64,
                          "k": 512, "churn": 16, "epochs": 24, "warmup": 3,
                          "epoch_interval_ms": 300.0,
                          "p50_growth_bound": 2.0, "seed": 18}},
        tiers={
            "ci": {"bench": {"sites_small": 2_000, "sites_large": 20_000,
                             "required_total_large": 0}},
            "full": {"bench": {"sites_small": 16_700, "sites_large": 167_000,
                               "required_total_large": 1_000_000}},
        },
        acceptance=(
            Check("scale_target_met", "truthy"),
            Check("trajectory_identical", "truthy"),
            Check("replication_trajectory_identical", "truthy"),
            Check("legs_clean", "truthy"),
            Check("p50_growth", "<=", 2.0),
            Check("incremental_decides_small", ">", 0),
            Check("incremental_decides_large", ">", 0),
            Check("router_passthrough_ok", "truthy"),
            Check("replication_replays_ok", "truthy"),
            Check("replication_errors", "==", 0),
        ),
        drift=DriftPolicy(
            exact=("trajectory_identical", "replication_trajectory_identical",
                   "legs_clean", "total_sites_large", "scale_target_met",
                   "router_passthrough_ok", "replication_replays_ok",
                   "replication_errors", "p50_growth_bound",
                   "incremental_decides_small", "incremental_decides_large",
                   "churn_fallbacks_large"),
            band={"p50_growth": 2.5, "steady_p50_small_ms": 4.0,
                  "steady_p50_large_ms": 4.0},
        ),
        description="trajectory_identical / replication_trajectory_identical "
                    "are E18's byte-identity contracts.",
    ),
    Scenario(
        scenario_id="E19",
        title="Sharded router data plane: shard-affine worker processes "
              "and the many-core scale-out proof",
        workload=WorkloadAxis(family="drifting", sizes="drifting", seed=19),
        traffic=TrafficAxis(kind="open-loop+diurnal", arrival="open-loop",
                            failure="kill9@midrun"),
        transport=TransportAxis(wire="v2", executor="process",
                                router_backends=2, router_workers="1..N"),
        bench="e19-dataplane",
        bench_json="BENCH_e19.json",
        params={"bench": {"relay_concurrency": 1, "relay_delay_ms": 40.0,
                          "relay_queue": 6, "overload": 1.2,
                          "deadline_ms": 600.0, "sites": 400, "servers": 8,
                          "k": 4, "connections": 16, "traj_epochs": 12,
                          "traj_k": 3, "traj_sites": 80, "traj_servers": 6,
                          "traj_seed": 36, "enc_sites": 2_000,
                          "enc_churn": 8, "enc_shards": 2, "enc_reps": 3,
                          "seed": 19}},
        tiers={
            "ci": {"bench": {"workers": 2, "min_ratio": 1.6,
                             "duration_s": 2.5, "shards": 4,
                             "enc_epochs": 80}},
            "full": {"bench": {"workers": 4, "min_ratio": 2.5,
                               "duration_s": 4.0, "shards": 8,
                               "enc_epochs": 150}},
        },
        acceptance=(
            Check("scaleout_ok", "truthy"),
            Check("scaling_ratio", ">=", 1.6),
            Check("p99_bounded", "truthy"),
            Check("scaling_clean", "truthy"),
            Check("relay_path_used", "truthy"),
            Check("traj_plain_identical", "truthy"),
            Check("traj_kill9_identical", "truthy"),
            Check("traj_migrate_identical", "truthy"),
            Check("kill9_deaths", ">=", 1),
            Check("migrations", ">=", 1),
            Check("encoder_not_slower", "truthy"),
            Check("encoder_trajectory_identical", "truthy"),
            Check("encoder_clean", "truthy"),
        ),
        drift=DriftPolicy(
            exact=("scaleout_ok", "p99_bounded", "scaling_clean",
                   "relay_path_used", "traj_plain_identical",
                   "traj_kill9_identical", "traj_migrate_identical",
                   "encoder_not_slower", "encoder_trajectory_identical",
                   "encoder_clean", "workers"),
            band={"scaling_ratio": 1.5},
        ),
        description="Per-worker relay capacity is pinned by construction "
                    "(permits / (delay + service)), so the 1-to-N goodput "
                    "ratio proves the architecture scales independent of "
                    "host cores; the three traj_* bits are E19's "
                    "byte-identity contracts through the sharded data "
                    "plane (plain, kill -9 failover, live migration).",
    ),
    # ------------------------------------------------------------------
    # Ablations.
    # ------------------------------------------------------------------
    Scenario(
        scenario_id="A1",
        title="Ablation: GREEDY reinsertion order",
        workload=WorkloadAxis(family="random", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="greedy"),
        table="A1",
        drift=_exact_table("family", "order", "mean ratio", "worst ratio"),
    ),
    Scenario(
        scenario_id="A2",
        title="Ablation: Section 3.2 knapsack backend (exact DP vs FPTAS)",
        workload=WorkloadAxis(family="random", costs="random"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="cost-partition", backend="both"),
        table="A2",
        acceptance=(Check("table.all:budget ok", "truthy"),),
        drift=_exact_table("backend", "mean ratio", "worst ratio",
                           "budget ok"),
    ),
    Scenario(
        scenario_id="A3",
        title="Ablation: M-PARTITION threshold scan (rescan vs incremental)",
        workload=WorkloadAxis(family="random", costs="unit"),
        traffic=TrafficAxis(kind="none", arrival="one-shot"),
        transport=TransportAxis(solver="m-partition"),
        table="A3",
        acceptance=(Check("table.all:same answer", "truthy"),),
        drift=_exact_table("n", "same answer"),
    ),
)

CATALOG: dict[str, Scenario] = {s.scenario_id: s for s in _SCENARIOS}


def scenario_ids() -> tuple[str, ...]:
    return tuple(CATALOG)


def get_scenario(scenario_id: str) -> Scenario:
    """Look up a scenario; unknown IDs fail listing the valid set."""
    key = scenario_id.upper()
    if key not in CATALOG:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; valid scenarios: "
            f"{', '.join(scenario_ids())}"
        )
    return CATALOG[key]
