"""Execute a catalog scenario and produce its schema-versioned record.

The runner is a pure interpreter over the catalog: resolve tier params,
regenerate the scenario's E-table (analysis registry) and/or acceptance
bench (:data:`~repro.scenarios.benches.BENCH_RUNNERS`), evaluate the
declared machine-readable checks, assemble the record, and optionally
persist it to the tracked ``benchmarks/records/<tier>/`` tree and/or
drift-compare it against the copy already there.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .catalog import get_scenario
from .drift import DriftReport, compare_records
from .records import (
    SCHEMA,
    SCHEMA_VERSION,
    default_records_root,
    load_record,
    record_path,
    to_jsonable,
    write_record,
)
from .spec import Scenario

__all__ = ["ScenarioResult", "run_scenario"]


@dataclass
class ScenarioResult:
    """What one scenario run produced and how it was judged."""

    scenario_id: str
    tier: str
    record: dict[str, Any]
    acceptance: list[dict[str, Any]] = field(default_factory=list)
    drift: DriftReport | None = None
    record_file: Path | None = None

    @property
    def acceptance_ok(self) -> bool:
        return all(entry["ok"] for entry in self.acceptance)

    @property
    def ok(self) -> bool:
        return self.acceptance_ok and (self.drift is None or self.drift.ok)

    def failure_summary(self) -> str:
        lines = []
        for entry in self.acceptance:
            if not entry["ok"]:
                lines.append(
                    f"{self.scenario_id} [{self.tier}] acceptance failed: "
                    f"{entry['check']} (observed {entry['observed']!r})"
                )
        if self.drift is not None and not self.drift.ok:
            lines.append(self.drift.render())
        return "\n".join(lines) or f"{self.scenario_id} [{self.tier}]: ok"


def _serialize_table(report) -> dict[str, Any]:
    return {
        "title": report.title,
        "columns": list(report.columns),
        "rows": [list(row) for row in report.rows],
        "notes": list(report.notes),
    }


def _evaluate_acceptance(scenario: Scenario, metrics, table, *,
                         table_ran: bool) -> list[dict[str, Any]]:
    results = []
    for check in scenario.acceptance:
        if check.metric.startswith("table.") and not table_ran:
            continue  # table checks only gate tiers that run the table
        ok, got = check.evaluate(metrics, table)
        results.append({
            "check": check.describe(),
            "metric": check.metric,
            "op": check.op,
            "value": check.value,
            "ok": bool(ok),
            "observed": got,
        })
    return results


def run_scenario(
    scenario_id: str,
    tier: str = "ci",
    *,
    overrides: dict | None = None,
    record: bool = False,
    check: bool = False,
    records_root: Path | None = None,
    write_bench_json: bool = True,
    log: Callable[[str], None] = print,
) -> ScenarioResult:
    """Run one catalog scenario at ``tier``.

    ``record=True`` writes the result to the tracked records tree;
    ``check=True`` drift-compares it against the record already there.
    ``write_bench_json`` refreshes the scenario's gitignored
    ``benchmarks/BENCH_*.json`` working copy (the old scripts' output
    path, kept for humans and back-compat tooling).
    """
    scenario = get_scenario(scenario_id)
    params = scenario.resolve(tier, overrides)
    root = Path(records_root) if records_root else default_records_root()

    table_dict = None
    table_ran = scenario.runs_table(tier)
    if table_ran:
        from ..analysis.ablations import ALL_ABLATIONS
        from ..analysis.experiments import ALL_EXPERIMENTS

        registry = {**ALL_EXPERIMENTS, **ALL_ABLATIONS}
        report = registry[scenario.table](**params["table"])
        table_dict = to_jsonable(_serialize_table(report))
        log(report.render())

    metrics: dict[str, Any] = {}
    detail: dict[str, Any] = {}
    if scenario.bench is not None:
        from .benches import BENCH_RUNNERS

        metrics, detail = BENCH_RUNNERS[scenario.bench](params["bench"], log)
        metrics = to_jsonable(metrics)
        detail = to_jsonable(detail)
    if table_dict is not None:
        metrics.setdefault("table_rows", len(table_dict["rows"]))

    acceptance = _evaluate_acceptance(
        scenario, metrics, table_dict, table_ran=table_ran
    )
    fresh = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario.scenario_id,
        "tier": tier,
        "title": scenario.title,
        "axes": scenario.axes_dict(),
        "params": params,
        "metrics": metrics,
        "table": table_dict,
        "acceptance": acceptance,
        "detail": detail,
    }
    fresh = to_jsonable(fresh)

    result = ScenarioResult(
        scenario_id=scenario.scenario_id, tier=tier, record=fresh,
        acceptance=fresh["acceptance"],
    )

    if write_bench_json and scenario.bench_json is not None:
        bench_path = root.parent / scenario.bench_json
        if bench_path.parent.is_dir():
            bench_path.write_text(
                json.dumps(fresh, indent=2, sort_keys=True) + "\n"
            )

    if check:
        recorded = load_record(record_path(root, tier, scenario.scenario_id))
        result.drift = compare_records(
            recorded, fresh, scenario.drift,
            scenario_id=scenario.scenario_id, tier=tier,
        )
        log(result.drift.render())
    if record:
        result.record_file = write_record(
            fresh, root, tier, scenario.scenario_id
        )
        log(f"{scenario.scenario_id} [{tier}]: recorded "
            f"{result.record_file}")

    for entry in result.acceptance:
        status = "PASS" if entry["ok"] else "FAIL"
        log(f"  [{status}] {entry['check']} (observed {entry['observed']!r})")
    return result
