"""Schema-versioned scenario record files.

Canonical records live in the *tracked* ``benchmarks/records/<tier>/``
tree (one JSON file per scenario per tier) — unlike the
``benchmarks/BENCH_*.json`` working copies, which stay gitignored
scratch output for humans.  Every record carries a schema header so
the drift comparator can refuse to compare across format changes
instead of producing nonsense diffs:

.. code-block:: json

    {
      "schema": "repro.scenarios.record",
      "schema_version": 1,
      "scenario": "E14",
      "tier": "ci",
      "axes": {"workload": {...}, "traffic": {...}, "transport": {...}},
      "metrics": {...},        // flat, drift-compared per policy
      "table": {...},          // rendered experiment table, if any
      "acceptance": [...],     // evaluated machine-readable checks
      "detail": {...}          // free-form, never drift-compared
    }
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "RecordError",
    "default_records_root",
    "load_record",
    "record_path",
    "to_jsonable",
    "write_record",
]

SCHEMA = "repro.scenarios.record"
SCHEMA_VERSION = 1


class RecordError(Exception):
    """A record file is missing or unreadable."""


def default_records_root() -> Path:
    """``benchmarks/records`` of this checkout.

    Resolved relative to the package (``src/repro/scenarios`` →
    repo root) so the reproduce CLI works from any cwd inside the
    repo; falls back to ``./benchmarks/records`` for installed-package
    use against a foreign checkout.
    """
    repo = Path(__file__).resolve().parents[3]
    candidate = repo / "benchmarks" / "records"
    if (repo / "benchmarks").is_dir():
        return candidate
    return Path.cwd() / "benchmarks" / "records"


def record_path(root: Path, tier: str, scenario_id: str) -> Path:
    return Path(root) / tier / f"{scenario_id}.json"


def to_jsonable(value: Any) -> Any:
    """Recursively convert a record payload to plain JSON types.

    numpy scalars become Python numbers, tuples become lists, NaN and
    infinities become ``None`` (strict-JSON friendly, and the drift
    comparator treats ``None == None``).
    """
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, bool):
        return value
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()  # numpy scalar
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return None
        return value
    if value is None or isinstance(value, (int, str)):
        return value
    return str(value)


def write_record(record: dict, root: Path, tier: str, scenario_id: str
                 ) -> Path:
    path = record_path(root, tier, scenario_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_jsonable(record), indent=2, sort_keys=True,
                   allow_nan=False) + "\n"
    )
    return path


def load_record(path: Path) -> dict:
    """Read a record file; raises :class:`RecordError` if absent or
    not JSON.  (Schema *version* checking is the drift comparator's
    job — it reports a distinct, actionable mismatch.)"""
    path = Path(path)
    if not path.is_file():
        raise RecordError(
            f"no record at {path}; regenerate it with "
            f"'python -m repro reproduce --scenario {path.stem} --record "
            f"--tier {path.parent.name}'"
        )
    try:
        record = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise RecordError(f"record {path} is not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise RecordError(f"record {path} is not a JSON object")
    return record
